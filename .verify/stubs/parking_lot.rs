//! Offline verification shim: parking_lot API over std::sync.
//! Never shipped — exists only so flex32/pisces-core can be compiled and
//! tested in a container with no crate registry access.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    g: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            g: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { g: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                g: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard present")
    }
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct Condvar {
    cv: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            cv: std::sync::Condvar::new(),
        }
    }
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.g.take().expect("guard present");
        let g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.g = Some(g);
    }
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.g.take().expect("guard present");
        let (g, r) = self
            .cv
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.g = Some(g);
        WaitTimeoutResult(r.timed_out())
    }
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }
    pub fn notify_one(&self) {
        self.cv.notify_one();
    }
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    g: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    g: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(t),
        }
    }
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            g: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            g: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}
