//! Offline verification shim: serde_json surface used by pisces-core.
//! to_string returns an empty string; from_str always errors.

use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize>(_value: &T) -> Result<String, Error> {
    Ok(String::new())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(Error("deserialization unavailable in stub".into()))
}

pub fn to_vec_pretty<T: serde::Serialize>(_value: &T) -> Result<Vec<u8>, Error> {
    Ok(Vec::new())
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_s: &'a [u8]) -> Result<T, Error> {
    Err(Error("deserialization unavailable in stub".into()))
}
