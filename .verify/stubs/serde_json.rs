//! Offline verification shim: a real (if small) JSON implementation.
//!
//! `bench-snapshot` reads and writes the repo's `BENCH_*.json` files
//! through `serde_json::{json!, Map, Value}`, so the offline stub must
//! actually parse and render JSON for `Value`. Arbitrary derived types
//! still serialize to an empty string and fail to deserialize, exactly
//! as the old stub did — only `Value` round-trips.
//!
//! Maps are `BTreeMap`-backed (alphabetical keys), matching real
//! `serde_json` without its `preserve_order` feature.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Insertion-ordered-enough map: real serde_json's default `Map` sorts
/// keys (BTreeMap), so the stub does too.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value>
where
    K: Ord,
{
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Self {
            inner: BTreeMap::new(),
        }
    }

    pub fn insert(&mut self, k: String, v: Value) -> Option<Value> {
        self.inner.insert(k, v)
    }

    pub fn get(&self, k: &str) -> Option<&Value> {
        self.inner.get(k)
    }

    pub fn get_mut(&mut self, k: &str) -> Option<&mut Value> {
        self.inner.get_mut(k)
    }

    pub fn contains_key(&self, k: &str) -> bool {
        self.inner.contains_key(k)
    }

    pub fn remove(&mut self, k: &str) -> Option<Value> {
        self.inner.remove(k)
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }

    pub fn entry(&mut self, k: impl Into<String>) -> &mut Value {
        self.inner.entry(k.into()).or_insert(Value::Null)
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// JSON number: integers keep their integer rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(n) => n,
        })
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            Number::F(n) => {
                if n.is_finite() {
                    if n == n.trunc() && n.abs() < 1e15 {
                        write!(f, "{n:.1}")
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, k: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(k))
    }

    fn render(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => render_string(s, out),
            Value::Array(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    v.render(out, pretty, indent + 1);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Value::Object(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    render_string(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.render(out, pretty, indent + 1);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

impl Value {
    fn compact(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, false, 0);
        s
    }

    fn pretty(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, true, 0);
        s
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::U(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::I(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::U(v as u64))
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Number(Number::I(v as i64))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::U(v as u64))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

static NULL: Value = Value::Null;

impl<S: AsRef<str>> std::ops::Index<S> for Value {
    type Output = Value;
    fn index(&self, k: S) -> &Value {
        self.get(k.as_ref()).unwrap_or(&NULL)
    }
}

impl<S: AsRef<str>> std::ops::IndexMut<S> for Value {
    fn index_mut(&mut self, k: S) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => m.entry(k.as_ref()),
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl serde::Serialize for Value {
    fn __stub_json(&self) -> Option<String> {
        Some(self.compact())
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn __stub_from_json(s: &str) -> Option<Self> {
        parse(s).ok()
    }
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($k:literal : $v:tt),+ $(,)? }) => {{
        let mut m = $crate::Map::new();
        $( m.insert($k.to_string(), $crate::json!($v)); )+
        $crate::Value::Object(m)
    }};
    ([ $($v:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($v)),* ])
    };
    ($e:expr) => { $crate::Value::from($e) };
}

// ---------------------------------------------------------------------
// Parser: recursive descent over bytes, enough for the repo's files.
// ---------------------------------------------------------------------

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                c as char, self.i
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                let mut m = Map::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    let k = match self.value()? {
                        Value::String(s) => s,
                        other => return Err(Error(format!("object key {other:?}"))),
                    };
                    self.expect(b':')?;
                    let v = self.value()?;
                    m.insert(k, v);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut a = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(a));
                }
                loop {
                    a.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(a));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'"') => {
                self.i += 1;
                let mut s = String::new();
                loop {
                    match self.b.get(self.i) {
                        None => return Err(Error("unterminated string".into())),
                        Some(b'"') => {
                            self.i += 1;
                            return Ok(Value::String(s));
                        }
                        Some(b'\\') => {
                            self.i += 1;
                            match self.b.get(self.i) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'/') => s.push('/'),
                                Some(b'n') => s.push('\n'),
                                Some(b'r') => s.push('\r'),
                                Some(b't') => s.push('\t'),
                                Some(b'b') => s.push('\u{8}'),
                                Some(b'f') => s.push('\u{c}'),
                                Some(b'u') => {
                                    let hex = self
                                        .b
                                        .get(self.i + 1..self.i + 5)
                                        .ok_or_else(|| Error("bad \\u escape".into()))?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex)
                                            .map_err(|e| Error(e.to_string()))?,
                                        16,
                                    )
                                    .map_err(|e| Error(e.to_string()))?;
                                    s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                    self.i += 4;
                                }
                                other => {
                                    return Err(Error(format!("bad escape {other:?}")))
                                }
                            }
                            self.i += 1;
                        }
                        Some(_) => {
                            // Copy a run of plain UTF-8 bytes verbatim.
                            let start = self.i;
                            while self
                                .b
                                .get(self.i)
                                .is_some_and(|&c| c != b'"' && c != b'\\')
                            {
                                self.i += 1;
                            }
                            s.push_str(
                                std::str::from_utf8(&self.b[start..self.i])
                                    .map_err(|e| Error(e.to_string()))?,
                            );
                        }
                    }
                }
            }
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                if c == b'-' {
                    self.i += 1;
                }
                let mut float = false;
                while let Some(&c) = self.b.get(self.i) {
                    match c {
                        b'0'..=b'9' => self.i += 1,
                        b'.' | b'e' | b'E' | b'+' | b'-' => {
                            float = true;
                            self.i += 1;
                        }
                        _ => break,
                    }
                }
                let txt = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|e| Error(e.to_string()))?;
                if float {
                    txt.parse::<f64>()
                        .map(|v| Value::Number(Number::F(v)))
                        .map_err(|e| Error(e.to_string()))
                } else if txt.starts_with('-') {
                    txt.parse::<i64>()
                        .map(|v| Value::Number(Number::I(v)))
                        .map_err(|e| Error(e.to_string()))
                } else {
                    txt.parse::<u64>()
                        .map(|v| Value::Number(Number::U(v)))
                        .map_err(|e| Error(e.to_string()))
                }
            }
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.i))),
        }
    }
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(Error(format!("trailing data at byte {}", p.i)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// serde_json entry points (generic surface kept from the old stub)
// ---------------------------------------------------------------------

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.__stub_json().unwrap_or_default())
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    match value.__stub_json() {
        Some(s) => Ok(parse(&s)?.pretty()),
        None => Ok(String::new()),
    }
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    T::__stub_from_json(s).ok_or_else(|| Error("deserialization unavailable in stub".into()))
}

pub fn to_vec_pretty<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string_pretty(value)?.into_bytes())
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(s: &'a [u8]) -> Result<T, Error> {
    match std::str::from_utf8(s) {
        Ok(txt) => T::__stub_from_json(txt)
            .ok_or_else(|| Error("deserialization unavailable in stub".into())),
        Err(e) => Err(Error(e.to_string())),
    }
}
