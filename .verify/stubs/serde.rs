//! Offline verification shim: serde traits with no behaviour.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
