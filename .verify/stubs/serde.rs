//! Offline verification shim: serde traits with no behaviour.
//!
//! The `__stub_*` hooks let `serde_json`'s stub round-trip its own
//! `Value` type (the bench-snapshot binary serializes real JSON
//! documents offline); derived impls keep the no-op defaults.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    /// Compact JSON rendering, if this type can self-serialize offline.
    fn __stub_json(&self) -> Option<String> {
        None
    }
}

pub trait Deserialize<'de>: Sized {
    /// Parse from JSON text, if this type can self-deserialize offline.
    fn __stub_from_json(_s: &str) -> Option<Self> {
        None
    }
}
