//! Offline verification shim: no-op Serialize/Deserialize derives.

extern crate proc_macro;
use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut toks = input.into_iter();
    while let Some(t) = toks.next() {
        if let TokenTree::Ident(id) = &t {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                for t in toks.by_ref() {
                    if let TokenTree::Ident(name) = t {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!("impl<'de> serde::Deserialize<'de> for {} {{}}", type_name(input))
        .parse()
        .unwrap()
}
