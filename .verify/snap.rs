//! Offline snapshot harness: replicates bench-snapshot's measurement
//! loops against pisces_core directly (the full pisces-bench lib pulls
//! in crates unavailable offline). Prints `key=value` lines; JSON is
//! composed by the caller. Compile with `--cfg seed` against the seed
//! checkout (which lacks chunked/guided scheduling).

use pisces_core::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot(config: MachineConfig) -> Arc<Pisces> {
    Pisces::boot(flex32::Flex32::new_shared(), config).expect("boot")
}

fn force_config(secondaries: u8, slots: u8) -> MachineConfig {
    let cluster = if secondaries == 0 {
        ClusterConfig::new(1, 3, slots)
    } else {
        ClusterConfig::new(1, 3, slots).with_secondaries(4..=(3 + secondaries))
    };
    MachineConfig::builder().clusters([cluster]).build()
}

fn with_task(
    p: &Arc<Pisces>,
    f: impl Fn(&TaskCtx) -> Result<Duration> + Send + Sync + 'static,
) -> Duration {
    let out = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
    let o2 = out.clone();
    let done = Arc::new(AtomicBool::new(false));
    let d2 = done.clone();
    p.register("snapshot_body", move |ctx: &TaskCtx| {
        *o2.lock() = f(ctx)?;
        d2.store(true, Ordering::Release);
        Ok(())
    });
    p.initiate_top_level(1, "snapshot_body", vec![])
        .expect("initiate");
    assert!(p.wait_quiescent(Duration::from_secs(120)));
    assert!(done.load(Ordering::Acquire), "snapshot body failed");
    let d = *out.lock();
    d
}

fn per_op(total: Duration, ops: u64) -> f64 {
    total.as_nanos() as f64 / ops.max(1) as f64
}

fn roundtrip_ns(p: &Arc<Pisces>, words: usize, warmup: u64, iters: u64) -> f64 {
    let d = with_task(p, move |ctx| {
        let payload = vec![0.0f64; words];
        for i in 0..warmup {
            ctx.send(To::Myself, "M", args![i as i64, payload.clone()])?;
            ctx.accept().of(1).signal("M").run()?;
        }
        let t0 = Instant::now();
        for i in 0..iters {
            ctx.send(To::Myself, "M", args![i as i64, payload.clone()])?;
            ctx.accept().of(1).signal("M").run()?;
        }
        Ok(t0.elapsed())
    });
    per_op(d, iters)
}

fn snap_messaging() {
    const WARMUP: u64 = 500;
    const ITERS: u64 = 4_000;
    for words in [0usize, 16, 256] {
        let p = boot(MachineConfig::simple(1, 4));
        println!(
            "messaging self_roundtrip_{}w_ns={:.1}",
            words,
            roundtrip_ns(&p, words, WARMUP, ITERS)
        );
        p.shutdown();
    }
    #[cfg(not(seed))]
    {
        let mut cfg = MachineConfig::simple(1, 4);
        cfg.trace = TraceSettings::all();
        let p = boot(cfg);
        let traced = roundtrip_ns(&p, 16, WARMUP, ITERS);
        p.shutdown();
        println!("messaging self_roundtrip_16w_traced_ns={traced:.1}");

        const EMITS: u64 = 200_000;
        let settings = TraceSettings {
            ring_capacity: 1 << 12,
            ..TraceSettings::all()
        };
        let tracer = Tracer::new(&settings);
        let id = TaskId::new(1, 0, 1);
        for i in 0..10_000u64 {
            tracer.emit(TraceEventKind::MsgSend, id, 3, i, "");
        }
        let t0 = Instant::now();
        for i in 0..EMITS {
            tracer.emit(TraceEventKind::MsgSend, id, 3, i, "");
        }
        let plain = per_op(t0.elapsed(), EMITS);
        let t0 = Instant::now();
        for i in 0..EMITS {
            tracer.emit_causal(
                TraceEventKind::MsgAccept,
                id,
                3,
                i,
                "",
                Some(i),
                Some(i.saturating_sub(1)),
            );
        }
        let causal = per_op(t0.elapsed(), EMITS);
        println!("messaging emit_plain_ns={plain:.1}");
        println!("messaging emit_causal_ns={causal:.1}");
        println!(
            "messaging causal_emit_overhead_pct={:.1}",
            (causal - plain) / plain * 100.0
        );

        // Telemetry armed vs inert: adjacent pairs on two live machines,
        // best armed/inert ratio over up to 5 pairs (<= 5% contract).
        let p_inert = boot(MachineConfig::simple(1, 4));
        let mut cfg = MachineConfig::simple(1, 4);
        cfg.telemetry.port = Some(0);
        cfg.telemetry.profile = true;
        let p_armed = boot(cfg);
        assert!(
            p_armed.telemetry_addr().is_some(),
            "telemetry endpoint not live"
        );
        let mut best_ratio = f64::INFINITY;
        let mut armed_ns = f64::INFINITY;
        for pass in 0..5 {
            let inert = roundtrip_ns(&p_inert, 16, WARMUP, ITERS);
            let armed = roundtrip_ns(&p_armed, 16, WARMUP, ITERS);
            if armed / inert < best_ratio {
                best_ratio = armed / inert;
                armed_ns = armed;
            }
            if pass >= 2 && best_ratio <= 1.05 {
                break;
            }
        }
        p_inert.shutdown();
        p_armed.shutdown();
        println!("messaging self_roundtrip_16w_telemetry_ns={armed_ns:.1}");
        println!(
            "messaging telemetry_armed_overhead_pct={:.1}",
            (best_ratio - 1.0) * 100.0
        );
    }
}

const LOOP_ITERS: i64 = 10_000;
const LOOPS: u64 = 20;

fn run_loops(
    p: &Arc<Pisces>,
    op: impl Fn(&pisces_core::force::ForceCtx<'_>) -> Result<()> + Send + Sync + 'static,
) -> Duration {
    let out = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
    let o2 = out.clone();
    let ok = Arc::new(AtomicBool::new(false));
    let k2 = ok.clone();
    p.register("snapshot_loops", move |ctx: &TaskCtx| {
        let t = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
        let t2 = t.clone();
        ctx.forcesplit(|f| {
            f.barrier()?;
            let t0 = Instant::now();
            for _ in 0..LOOPS {
                op(f)?;
            }
            f.barrier_with(|| {
                *t2.lock() = t0.elapsed();
                Ok(())
            })?;
            Ok(())
        })?;
        *o2.lock() = *t.lock();
        k2.store(true, Ordering::Release);
        Ok(())
    });
    p.initiate_top_level(1, "snapshot_loops", vec![])
        .expect("initiate");
    assert!(p.wait_quiescent(Duration::from_secs(120)));
    assert!(ok.load(Ordering::Acquire));
    let d = *out.lock();
    d
}

fn snap_loops() {
    let total_iters = LOOPS * LOOP_ITERS as u64;
    for members in [1u8, 4] {
        let mut disciplines: Vec<(
            String,
            Box<dyn Fn(&pisces_core::force::ForceCtx<'_>) -> Result<()> + Send + Sync>,
        )> = vec![
            (
                format!("presched_{members}m"),
                Box::new(|f| f.presched(1, LOOP_ITERS, |_| Ok(()))),
            ),
            (
                format!("selfsched_{members}m"),
                Box::new(|f| f.selfsched(1, LOOP_ITERS, |_| Ok(()))),
            ),
        ];
        #[cfg(not(seed))]
        {
            disciplines.push((
                format!("selfsched_chunk16_{members}m"),
                Box::new(|f| f.selfsched_chunked(1, LOOP_ITERS, 16, |_| Ok(()))),
            ));
            disciplines.push((
                format!("selfsched_guided_{members}m"),
                Box::new(|f| f.selfsched_guided(1, LOOP_ITERS, |_| Ok(()))),
            ));
        }
        for (name, op) in disciplines {
            let p = boot(force_config(members - 1, 2));
            let d = run_loops(&p, op);
            println!("loops {}_ns_per_iter={:.1}", name, per_op(d, total_iters));
            p.shutdown();
        }
    }
}

fn snap_sync() {
    const ROUNDS: u64 = 2_000;
    for members in [2u8, 4, 8] {
        let p = boot(force_config(members - 1, 2));
        let out = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
        let o2 = out.clone();
        p.register("snapshot_barrier", move |ctx: &TaskCtx| {
            let t = Arc::new(parking_lot::Mutex::new(Duration::ZERO));
            let t2 = t.clone();
            ctx.forcesplit(|f| {
                f.barrier()?;
                let t0 = Instant::now();
                for _ in 0..ROUNDS {
                    f.barrier()?;
                }
                f.barrier_with(|| {
                    *t2.lock() = t0.elapsed();
                    Ok(())
                })?;
                Ok(())
            })?;
            *o2.lock() = *t.lock();
            Ok(())
        });
        p.initiate_top_level(1, "snapshot_barrier", vec![])
            .expect("initiate");
        assert!(p.wait_quiescent(Duration::from_secs(120)));
        println!(
            "sync barrier_crossing_{}m_ns={:.1}",
            members,
            per_op(*out.lock(), ROUNDS)
        );
        p.shutdown();
    }
}

#[cfg(not(seed))]
fn snap_faults() {
    const WARMUP: u64 = 500;
    const ITERS: u64 = 4_000;
    fn roundtrips(p: &Arc<Pisces>) -> Duration {
        with_task(p, |ctx| {
            for i in 0..WARMUP {
                ctx.send(To::Myself, "M", args![i as i64])?;
                ctx.accept().of(1).signal("M").run()?;
            }
            let t0 = Instant::now();
            for i in 0..ITERS {
                ctx.send(To::Myself, "M", args![i as i64])?;
                ctx.accept().of(1).signal("M").run()?;
            }
            Ok(t0.elapsed())
        })
    }
    let p = boot(MachineConfig::simple(1, 4));
    let healthy = per_op(roundtrips(&p), ITERS);
    p.shutdown();
    let p = boot(MachineConfig::simple(1, 4));
    p.arm_faults(
        flex32::fault::FaultPlan::new(0xFA117)
            .fail_pe(2, u64::MAX)
            .drop_message(u64::MAX)
            .fail_alloc(u64::MAX),
    );
    let armed = per_op(roundtrips(&p), ITERS);
    p.shutdown();
    println!("faults healthy_roundtrip_ns={healthy:.1}");
    println!("faults armed_inert_roundtrip_ns={armed:.1}");
    println!(
        "faults armed_overhead_pct={:.1}",
        (armed - healthy) / healthy * 100.0
    );
}

#[cfg(not(seed))]
fn windows_move_ns(elementwise: bool, iters: u64) -> f64 {
    const N: usize = 256;
    let p = boot(MachineConfig::simple(1, 4));
    let d = with_task(&p, move |ctx| {
        let a: Vec<f64> = (0..N * N).map(|k| k as f64).collect();
        let src = ctx.register_array(&a, N, N)?;
        let dst = ctx.register_array(&vec![0.0; N * N], N, N)?;
        let t0 = Instant::now();
        for _ in 0..iters {
            if elementwise {
                for r in 0..N {
                    for c in 0..N {
                        let s = src.shrink(r..r + 1, c..c + 1).map_err(PiscesError::from)?;
                        let t = dst.shrink(r..r + 1, c..c + 1).map_err(PiscesError::from)?;
                        let v = ctx.window_get(&s)?;
                        ctx.window_put(&t, &v)?;
                    }
                }
            } else {
                ctx.window_move(&src, &dst)?;
            }
        }
        Ok(t0.elapsed())
    });
    p.shutdown();
    per_op(d, iters)
}

#[cfg(not(seed))]
fn snap_windows() {
    let words = (256 * 256) as f64;
    let ew = windows_move_ns(true, 2);
    let b = windows_move_ns(false, 64);
    println!("windows move_256x256_elementwise_ns={ew:.1}");
    println!("windows move_256x256_batched_ns={b:.1}");
    println!("windows elementwise_words_per_s={:.1}", words / ew * 1e9);
    println!("windows batched_words_per_s={:.1}", words / b * 1e9);
    println!("windows batched_speedup_vs_elementwise={:.2}", ew / b);
}

fn main() {
    snap_messaging();
    snap_loops();
    snap_sync();
    #[cfg(not(seed))]
    snap_faults();
    #[cfg(not(seed))]
    snap_windows();
}
