set -e
cd /root/repo
O=.verify/out
# stubs
rustc --edition 2021 -O --crate-type lib --crate-name parking_lot .verify/stubs/parking_lot.rs --out-dir $O
rustc --edition 2021 --crate-type proc-macro --crate-name serde_derive .verify/stubs/serde_derive.rs --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name serde .verify/stubs/serde.rs --extern serde_derive=$O/libserde_derive.so -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name serde_json .verify/stubs/serde_json.rs --extern serde=$O/libserde.rlib -L dependency=$O --out-dir $O
# libs (substrate first: every backend and the core build against it)
rustc --edition 2021 -O --crate-type lib --crate-name pisces_substrate crates/substrate/src/lib.rs \
  --extern parking_lot=$O/libparking_lot.rlib -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name flex32 crates/flex32/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern parking_lot=$O/libparking_lot.rlib -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name pisces3_hypercube crates/hypercube/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern flex32=$O/libflex32.rlib --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name pisces_core crates/core/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern flex32=$O/libflex32.rlib --extern pisces3_hypercube=$O/libpisces3_hypercube.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  --extern serde=$O/libserde.rlib --extern serde_json=$O/libserde_json.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name pisces_exec crates/exec/src/lib.rs \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib --extern serde_json=$O/libserde_json.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name pisces_config crates/config/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern serde=$O/libserde.rlib --extern serde_json=$O/libserde_json.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name pisces_fortran crates/fortran/src/lib.rs \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-type lib --crate-name pisces_server crates/server/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_config=$O/libpisces_config.rlib --extern pisces_exec=$O/libpisces_exec.rlib \
  --extern pisces_fortran=$O/libpisces_fortran.rlib --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-name piscesd crates/server/src/bin/piscesd.rs \
  --extern pisces_server=$O/libpisces_server.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_config=$O/libpisces_config.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/piscesd
rustc --edition 2021 -O --crate-type lib --crate-name pisces_chaos crates/chaos/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_exec=$O/libpisces_exec.rlib \
  --extern pisces_server=$O/libpisces_server.rlib \
  --extern pisces3_hypercube=$O/libpisces3_hypercube.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-name pisces_chaos_bin crates/chaos/src/main.rs \
  --extern pisces_chaos=$O/libpisces_chaos.rlib \
  --extern pisces_core=$O/libpisces_core.rlib \
  -L dependency=$O -o $O/pisces-chaos
rustc --edition 2021 -O --crate-type lib --crate-name pisces src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern flex32=$O/libflex32.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_config=$O/libpisces_config.rlib --extern pisces_exec=$O/libpisces_exec.rlib \
  --extern pisces_fortran=$O/libpisces_fortran.rlib --extern pisces_server=$O/libpisces_server.rlib \
  --extern pisces3_hypercube=$O/libpisces3_hypercube.rlib \
  --extern parking_lot=$O/libparking_lot.rlib --extern serde_json=$O/libserde_json.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-name pisces_main src/main.rs \
  --extern pisces=$O/libpisces.rlib --extern serde_json=$O/libserde_json.rlib \
  --extern parking_lot=$O/libparking_lot.rlib -L dependency=$O -o $O/pisces
rustc --edition 2021 -O --crate-type lib --crate-name pisces_bench crates/bench/src/lib.rs \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O --out-dir $O
rustc --edition 2021 -O --crate-name bench_snapshot crates/bench/src/bin/bench-snapshot.rs \
  --extern pisces_bench=$O/libpisces_bench.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_server=$O/libpisces_server.rlib \
  --extern pisces_substrate=$O/libpisces_substrate.rlib --extern parking_lot=$O/libparking_lot.rlib \
  --extern serde_json=$O/libserde_json.rlib \
  -L dependency=$O -o $O/bench-snapshot
# unit tests
rustc --edition 2021 -O --test --crate-name pisces_substrate crates/substrate/src/lib.rs \
  --extern parking_lot=$O/libparking_lot.rlib -L dependency=$O -o $O/substrate_tests
rustc --edition 2021 -O --test --crate-name flex32 crates/flex32/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern parking_lot=$O/libparking_lot.rlib -L dependency=$O -o $O/flex32_tests
rustc --edition 2021 -O --test --crate-name pisces_core crates/core/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern flex32=$O/libflex32.rlib --extern pisces3_hypercube=$O/libpisces3_hypercube.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  --extern serde=$O/libserde.rlib --extern serde_json=$O/libserde_json.rlib \
  -L dependency=$O -o $O/core_tests
rustc --edition 2021 -O --test --crate-name pisces3_hypercube crates/hypercube/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern flex32=$O/libflex32.rlib --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/hypercube_tests
rustc --edition 2021 -O --test --crate-name pisces_exec crates/exec/src/lib.rs \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib --extern serde_json=$O/libserde_json.rlib \
  -L dependency=$O -o $O/exec_tests
rustc --edition 2021 -O --test --crate-name pisces_server crates/server/src/lib.rs \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_config=$O/libpisces_config.rlib --extern pisces_exec=$O/libpisces_exec.rlib \
  --extern pisces_fortran=$O/libpisces_fortran.rlib --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/server_tests
# integration tests (proptest-based ones skipped: no proptest offline)
for t in barrier forces runtime accept_semantics failure_injection windows backend_equivalence substrate_parity; do
  rustc --edition 2021 -O --test --crate-name $t crates/core/tests/$t.rs \
    --extern pisces_core=$O/libpisces_core.rlib \
    --extern pisces_substrate=$O/libpisces_substrate.rlib \
    --extern parking_lot=$O/libparking_lot.rlib --extern serde_json=$O/libserde_json.rlib \
    -L dependency=$O -o $O/it_$t
done
rustc --edition 2021 -O --test --crate-name determinism crates/chaos/tests/determinism.rs \
  --extern pisces_chaos=$O/libpisces_chaos.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_chaos_determinism
rustc --edition 2021 -O --test --crate-name watchdog crates/exec/tests/watchdog.rs \
  --extern pisces_exec=$O/libpisces_exec.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_watchdog
rustc --edition 2021 -O --test --crate-name causality crates/chaos/tests/causality.rs \
  --extern pisces_chaos=$O/libpisces_chaos.rlib --extern pisces_exec=$O/libpisces_exec.rlib \
  --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_causality
rustc --edition 2021 -O --test --crate-name service_e2e crates/server/tests/service_e2e.rs \
  --extern pisces_server=$O/libpisces_server.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_config=$O/libpisces_config.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_service_e2e
rustc --edition 2021 -O --test --crate-name fortran_programs crates/fortran/tests/fortran_programs.rs \
  --extern pisces_fortran=$O/libpisces_fortran.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_fortran
rustc --edition 2021 -O --test --crate-name language_extensions crates/fortran/tests/language_extensions.rs \
  --extern pisces_fortran=$O/libpisces_fortran.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_langext
rustc --edition 2021 -O --test --crate-name full_environment tests/full_environment.rs \
  --extern pisces=$O/libpisces.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_config=$O/libpisces_config.rlib --extern pisces_exec=$O/libpisces_exec.rlib \
  --extern pisces_fortran=$O/libpisces_fortran.rlib --extern pisces_server=$O/libpisces_server.rlib \
  --extern pisces_substrate=$O/libpisces_substrate.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_fullenv
rustc --edition 2021 -O --test --crate-name observability_e2e tests/observability_e2e.rs \
  --extern pisces=$O/libpisces.rlib --extern pisces_core=$O/libpisces_core.rlib \
  --extern pisces_server=$O/libpisces_server.rlib \
  --extern parking_lot=$O/libparking_lot.rlib \
  -L dependency=$O -o $O/it_observability
echo BUILD-OK
