//! Integration tests of the `pisces` command-line binary — the
//! reproduction of the paper's `pisces` command (Section 11).

use std::io::Write;
use std::process::{Command, Stdio};

fn pisces_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pisces"))
}

fn write_program(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pisces-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, source).unwrap();
    path
}

const PI_PROGRAM: &str = "\
TASK MAIN
  SHARED COMMON /ACC/ PISUM
  LOCK GUARD
  REAL LOCAL, X
  INTEGER I, N
  N = 20000
  FORCESPLIT
    LOCAL = 0.0
    PRESCHED DO I = 1, N
      X = (I - 0.5) / N
      LOCAL = LOCAL + 4.0 / (1.0 + X * X)
    END DO
    CRITICAL GUARD
      PISUM = PISUM + LOCAL
    END CRITICAL
    BARRIER
      TO USER SEND PI(PISUM / N)
    END BARRIER
  END FORCESPLIT
END TASK
";

#[test]
fn runs_a_program_and_reports() {
    let path = write_program("pi.pf", PI_PROGRAM);
    let out = pisces_bin()
        .arg(&path)
        .args(["--clusters", "1", "--secondaries", "4-7", "--report"])
        .output()
        .expect("run pisces");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("PI(3.141592653"), "{stdout}");
    assert!(stdout.contains("storage report"), "{stdout}");
    assert!(stdout.contains("PE loading"), "{stdout}");
    assert!(stdout.contains("forcesplits 1"), "{stdout}");
}

#[test]
fn preprocess_flag_prints_fortran77() {
    let path = write_program("pi2.pf", PI_PROGRAM);
    let out = pisces_bin()
        .arg(&path)
        .arg("--preprocess")
        .output()
        .expect("run pisces");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("SUBROUTINE PSCTMAIN"), "{stdout}");
    assert!(stdout.contains("CALL PSCFSP"), "{stdout}");
    assert!(stdout.contains("PSCNMEM()"), "{stdout}");
}

#[test]
fn task_arguments_reach_the_program() {
    let path = write_program(
        "echoarg.pf",
        "TASK MAIN(N, LABEL)\nTO USER SEND GOT(LABEL, N * 2)\nEND TASK\n",
    );
    let out = pisces_bin()
        .arg(&path)
        .args(["--clusters", "1", "--arg", "21", "--arg", "hello"])
        .output()
        .expect("run pisces");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("GOT(hello, 42)"), "{stdout}");
}

#[test]
fn parse_errors_are_reported_with_lines() {
    let path = write_program("broken.pf", "TASK MAIN\nX = \nEND TASK\n");
    let out = pisces_bin().arg(&path).output().expect("run pisces");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn unknown_main_task_lists_alternatives() {
    let path = write_program("nomain.pf", "TASK WORKER\nX = 1\nEND TASK\n");
    let out = pisces_bin().arg(&path).output().expect("run pisces");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no tasktype MAIN"), "{stderr}");
    assert!(stderr.contains("WORKER"), "{stderr}");
}

#[test]
fn interactive_menu_drives_a_run() {
    let path = write_program(
        "camper.pf",
        "TASK MAIN\n\
         ACCEPT 1 OF\n\
         STOP$\n\
         DELAY 10000 THEN\n\
         X = 1\n\
         END ACCEPT\n\
         TO USER SEND BYE\n\
         END TASK\n",
    );
    let mut child = pisces_bin()
        .arg(&path)
        .args(["--clusters", "1", "--interactive"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pisces");
    let mut stdin = child.stdin.take().unwrap();
    // Look at the tasks, send the release message, terminate.
    std::thread::sleep(std::time::Duration::from_millis(400));
    writeln!(stdin, "5").unwrap();
    writeln!(stdin, "3 c1.s2#1 STOP$").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));
    writeln!(stdin, "wait 10").unwrap();
    writeln!(stdin, "0").unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RUNNING TASKS"), "{stdout}");
    assert!(stdout.contains("MAIN"), "{stdout}");
    assert!(stdout.contains("BYE"), "{stdout}");
    assert!(stdout.contains("run terminated"), "{stdout}");
}
