//! End-to-end observability demo — the acceptance path for job spans,
//! per-tenant SLOs, and the `pisces top` dashboard, all against one
//! live two-tenant service under an armed slow-PE plan:
//!
//! 1. every finished job's report carries a complete
//!    submit→admitted→queued→scheduled→running→done span chain;
//! 2. the live OpenMetrics scrape shows a nonzero
//!    `pisces_slo_burn_rate` and a submit-latency histogram exemplar
//!    naming a real job whose `job-<id>.jsonl` artifact exists;
//! 3. `pisces top --once` renders a frame against the live daemon
//!    without error.

use pisces::pisces_core::prelude::*;
use pisces::pisces_server::daemon::{serve, Listener};
use pisces::pisces_server::protocol::{ProgramRef, Request, Response};
use pisces::pisces_server::service::{JobOutcome, JobService, ServiceConfig};
use pisces::pisces_server::{Client, SloSpec, TenantWeights};
use std::io::{Read as _, Write as _};
use std::time::Duration;

const SRC: &str = "TASK MAIN\n\
                   INTEGER I\n\
                   REAL X\n\
                   X = 0.0\n\
                   DO I = 1, 3000\n\
                   X = X + I\n\
                   END DO\n\
                   PRINT 'OK', 1\n\
                   END TASK\n";

/// The `pisces` binary: cargo's path when built by cargo, the offline
/// harness output otherwise.
fn pisces_bin() -> std::path::PathBuf {
    match option_env!("CARGO_BIN_EXE_pisces") {
        Some(p) => p.into(),
        None => ".verify/out/pisces".into(),
    }
}

/// Minimal HTTP GET against the machine's telemetry endpoint.
fn scrape(addr: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).expect("telemetry endpoint reachable");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    match buf.find("\r\n\r\n") {
        Some(i) => buf[i + 4..].to_string(),
        None => buf,
    }
}

#[test]
fn spans_slos_and_top_dashboard_end_to_end() {
    let dir = std::env::temp_dir().join(format!("pisces-obs-e2e-{}", std::process::id()));
    let trace_dir = dir.join("trace");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&trace_dir).unwrap();

    let mut machine = MachineConfig::simple(1, 8);
    machine.telemetry.port = Some(0); // ephemeral live scrape endpoint
    let cfg = ServiceConfig {
        machine,
        weights: TenantWeights::parse("acme=2,batch=1").unwrap(),
        // A 1ms submit target no queued job can meet, on windows the
        // run itself spans — queue pressure must light the burn rate.
        slo: SloSpec::parse("submit_p99=1ms,error_rate=10%,short=1s,long=5s").unwrap(),
        job_timeout: Duration::from_secs(60),
        drain_timeout: Duration::from_secs(60),
        trace_dir: Some(trace_dir.clone()),
        fault_plan: Some(FaultPlan::new(7).slow_pe(3, 500, 4)),
        ..ServiceConfig::default()
    };
    let svc = JobService::start(cfg).expect("service boots");
    let telemetry = svc
        .machine()
        .telemetry_addr()
        .expect("telemetry endpoint armed")
        .to_string();

    // Two tenants, six jobs, all queued up front so later ones wait.
    let mut waiters = Vec::new();
    let mut ids = Vec::new();
    for (tenant, n) in [("acme", 4), ("batch", 2)] {
        for _ in 0..n {
            let (id, rx) = svc
                .submit(tenant, &ProgramRef::Inline(SRC.to_string()), "MAIN", &[])
                .expect("submission admitted");
            ids.push(id);
            waiters.push(std::thread::spawn(move || {
                matches!(rx.recv(), Ok(JobOutcome::Done(r)) if r.ok && r.job_id == id)
            }));
        }
    }
    assert!(
        waiters.into_iter().all(|h| h.join().unwrap_or(false)),
        "all six jobs must finish ok"
    );

    // (1) Every finished job's report has its complete span chain.
    for id in &ids {
        let report = trace_dir.join(format!("job-{id}.report.txt"));
        let text = std::fs::read_to_string(&report)
            .unwrap_or_else(|e| panic!("missing {}: {e}", report.display()));
        assert!(text.contains("SPANS"), "job {id} report lacks SPANS:\n{text}");
        assert!(
            text.contains("submit→admitted→queued→scheduled→running→done"),
            "job {id} span chain incomplete:\n{text}"
        );
    }

    // (2) The live scrape: nonzero burn rate, exemplar naming a real job.
    let body = scrape(&telemetry);
    let burn_nonzero = body.lines().any(|l| {
        l.starts_with("pisces_slo_burn_rate{")
            && l.split_whitespace()
                .last()
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v > 0.0)
    });
    assert!(burn_nonzero, "no nonzero pisces_slo_burn_rate sample:\n{body}");
    let exemplar_job = body
        .lines()
        .find_map(|l| {
            let (_, rest) = l.split_once("# {job_id=\"")?;
            rest.split('"').next().map(str::to_string)
        })
        .unwrap_or_else(|| panic!("no submit-latency exemplar in scrape:\n{body}"));
    let artifact = trace_dir.join(format!("job-{exemplar_job}.jsonl"));
    assert!(
        artifact.exists(),
        "exemplar names job {exemplar_job} but {} does not exist",
        artifact.display()
    );
    assert!(
        body.contains("pisces_slo_breaches_total"),
        "breach counter family missing:\n{body}"
    );
    assert!(
        body.contains("pisces_build_info{"),
        "build info gauge missing:\n{body}"
    );

    // (3) `pisces top --once` against the live daemon.
    let listener = Listener::bind("127.0.0.1:0").expect("daemon socket binds");
    let addr = listener.local_addr();
    let svc2 = svc.clone();
    let server = std::thread::spawn(move || serve(svc2, listener, None));

    let top = pisces_bin();
    if top.exists() {
        let out = std::process::Command::new(&top)
            .args(["top", "--once", "--addr", &addr])
            .output()
            .expect("pisces top runs");
        assert!(
            out.status.success(),
            "pisces top --once failed: {}\n{}",
            String::from_utf8_lossy(&out.stderr),
            String::from_utf8_lossy(&out.stdout),
        );
        let frame = String::from_utf8_lossy(&out.stdout);
        assert!(frame.contains("pisces top —"), "no header:\n{frame}");
        assert!(frame.contains("acme"), "no tenant row:\n{frame}");
        assert!(
            frame.contains("submit_p99"),
            "no burn-rate column from the scrape:\n{frame}"
        );
    } else {
        eprintln!("pisces binary not found at {} — skipping the top subprocess check", top.display());
    }

    // Drain over the wire: stops the serve loop and the machine.
    let mut client = Client::connect(&addr).expect("client connects");
    match client.request(&Request::Drain).expect("drain request") {
        Response::DrainDone { finished, unserved } => {
            assert_eq!(finished, 6);
            assert_eq!(unserved, 0);
        }
        other => panic!("unexpected drain response: {other:?}"),
    }
    server.join().expect("serve loop exits after drain");
    let _ = std::fs::remove_dir_all(&dir);
}
