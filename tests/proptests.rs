//! Property-based tests over the core data structures and invariants.

use pisces::pisces_core::prelude::*;
use pisces::pisces_core::value::{decode_values, encode_values};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Value encoding
// ----------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite reals: NaN breaks PartialEq roundtrip comparison, and
        // messages never carry NaN in these programs.
        prop::num::f64::NORMAL.prop_map(Value::Real),
        any::<bool>().prop_map(Value::Logical),
        "[ -~]{0,40}".prop_map(Value::Str),
        (1u8..=18, 0u8..=20, any::<u32>())
            .prop_map(|(c, s, u)| Value::TaskId(TaskId::new(c, s, u))),
        prop::collection::vec(any::<i64>(), 0..32).prop_map(Value::IntArray),
        prop::collection::vec(prop::num::f64::NORMAL, 0..32).prop_map(Value::RealArray),
        window_strategy().prop_map(Value::Window),
    ]
}

fn window_strategy() -> impl Strategy<Value = Window> {
    (1usize..30, 1usize..30).prop_flat_map(|(rows, cols)| {
        (
            0usize..rows,
            0usize..cols,
            Just(rows),
            Just(cols),
            any::<u32>(),
        )
            .prop_flat_map(move |(r0, c0, rows, cols, seq)| {
                (r0 + 1..=rows, c0 + 1..=cols).prop_map(move |(r1, c1)| {
                    Window::new(
                        ArrayId {
                            owner: TaskId::new(1, 2, 3),
                            seq,
                        },
                        (rows, cols),
                        r0..r1,
                        c0..c1,
                    )
                    .expect("bounds valid by construction")
                })
            })
    })
}

proptest! {
    /// Any argument list survives the packet encoding round-trip.
    #[test]
    fn values_roundtrip_through_packets(vals in prop::collection::vec(value_strategy(), 0..8)) {
        let words = encode_values(&vals);
        let back = decode_values(&words).unwrap();
        prop_assert_eq!(back, vals);
    }

    /// Packet length always matches the declared size accounting.
    #[test]
    fn packet_words_accounting_is_exact(vals in prop::collection::vec(value_strategy(), 0..8)) {
        let words = encode_values(&vals);
        let expected: usize = 1 + vals.iter().map(|v| v.packet_words()).sum::<usize>();
        prop_assert_eq!(words.len(), expected);
    }

    /// Truncating a packet anywhere never panics, only errors.
    #[test]
    fn truncated_packets_error_cleanly(
        vals in prop::collection::vec(value_strategy(), 1..6),
        cut in 0usize..64,
    ) {
        let mut words = encode_values(&vals);
        let keep = cut % words.len();
        words.truncate(keep);
        // Either a clean decode of a prefix count or an error — no panic.
        let _ = decode_values(&words);
    }

    /// TaskId packing is bijective over the whole domain.
    #[test]
    fn taskid_pack_unpack(c in any::<u8>(), s in any::<u8>(), u in any::<u32>()) {
        let id = TaskId::new(c, s, u);
        prop_assert_eq!(TaskId::unpack(id.pack()), id);
    }
}

// ----------------------------------------------------------------------
// Window algebra
// ----------------------------------------------------------------------

proptest! {
    /// A shrunk window never sees anything its parent could not see.
    #[test]
    fn shrink_is_contained(w in window_strategy(), r0 in 0usize..40, c0 in 0usize..40, h in 1usize..40, k in 1usize..40) {
        let rows = w.rows();
        let cols = w.cols();
        let r0 = rows.start + r0 % rows.len();
        let c0 = cols.start + c0 % cols.len();
        let r1 = (r0 + h).min(rows.end);
        let c1 = (c0 + k).min(cols.end);
        let shrunk = w.shrink(r0..r1, c0..c1).expect("target inside window");
        prop_assert!(shrunk.rows().start >= rows.start && shrunk.rows().end <= rows.end);
        prop_assert!(shrunk.cols().start >= cols.start && shrunk.cols().end <= cols.end);
        prop_assert!(shrunk.len() <= w.len());
        // And shrinking never grows back: a second shrink to the parent's
        // full range fails unless the first shrink was trivial.
        if shrunk.rows() != rows || shrunk.cols() != cols {
            prop_assert!(shrunk.shrink(rows, cols).is_err());
        }
    }

    /// split_rows tiles the window exactly: bands are disjoint, ordered,
    /// and cover every row.
    #[test]
    fn split_rows_tiles_exactly(w in window_strategy(), n in 1usize..10) {
        let bands = w.split_rows(n);
        prop_assert!(!bands.is_empty());
        let mut cursor = w.rows().start;
        for b in &bands {
            prop_assert_eq!(b.rows().start, cursor);
            prop_assert_eq!(b.cols(), w.cols());
            cursor = b.rows().end;
        }
        prop_assert_eq!(cursor, w.rows().end);
        // Heights differ by at most one.
        let hs: Vec<usize> = bands.iter().map(|b| b.row_count()).collect();
        let (mn, mx) = (hs.iter().min().unwrap(), hs.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }

    /// Window packing round-trips.
    #[test]
    fn window_pack_unpack(w in window_strategy()) {
        prop_assert_eq!(Window::unpack(&w.pack()).unwrap(), w);
    }
}

// ----------------------------------------------------------------------
// Configuration validation
// ----------------------------------------------------------------------

fn cluster_strategy() -> impl Strategy<Value = ClusterConfig> {
    (
        1u8..=18,
        3u8..=20,
        prop::collection::btree_set(3u8..=20, 0..6),
        1u8..=16,
        any::<bool>(),
    )
        .prop_map(|(number, primary, secondaries, slots, term)| {
            let mut c = ClusterConfig::new(number, primary, slots)
                .with_secondaries(secondaries.into_iter().filter(|&pe| pe != primary));
            if term {
                c = c.with_terminal();
            }
            c
        })
}

proptest! {
    /// Well-formed random configurations validate, and the
    /// multiprogramming bound equals the paper's sum-of-slots rule.
    #[test]
    fn generated_configs_validate(mut clusters in prop::collection::vec(cluster_strategy(), 1..6)) {
        // Make numbers and primaries unique (the generator may collide).
        let mut seen_nums = std::collections::BTreeSet::new();
        let mut seen_pes = std::collections::BTreeSet::new();
        clusters.retain(|c| seen_nums.insert(c.number) && seen_pes.insert(c.primary_pe));
        prop_assume!(!clusters.is_empty());
        let config = MachineConfig::builder().clusters(clusters.clone()).build();
        config.validate().unwrap();
        for pe in 3u8..=20 {
            let expected: usize = clusters
                .iter()
                .map(|c| {
                    let mut n = 0;
                    if c.primary_pe == pe { n += c.slots as usize; }
                    if c.secondary_pes.contains(&pe) { n += c.slots as usize; }
                    n
                })
                .sum();
            prop_assert_eq!(config.max_multiprogramming(pe), expected);
        }
    }

    /// Any configuration that validates can actually be booted, and boot
    /// leaves shared memory consistent after shutdown.
    #[test]
    fn validated_configs_boot(mut clusters in prop::collection::vec(cluster_strategy(), 1..4)) {
        let mut seen_nums = std::collections::BTreeSet::new();
        let mut seen_pes = std::collections::BTreeSet::new();
        clusters.retain(|c| seen_nums.insert(c.number) && seen_pes.insert(c.primary_pe));
        prop_assume!(!clusters.is_empty());
        let p = Pisces::boot(MachineConfig::builder().clusters(clusters).build()).unwrap();
        let report = p.storage_report();
        // System tables exist but stay tiny (Section 13).
        prop_assert!(report.shm.tag_bytes(ShmTag::SystemTable) > 0);
        prop_assert!(report.system_table_fraction() < 0.01);
        p.shutdown();
        prop_assert_eq!(p.substrate().shmem().report().in_use, 0);
        p.substrate().shmem().check_invariants().unwrap();
    }
}

// ----------------------------------------------------------------------
// Force loop disciplines
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary bounds/steps and force sizes, PRESCHED and SELFSCHED
    /// both execute exactly the sequential iteration set, once each.
    #[test]
    fn loop_disciplines_cover_iteration_space(
        lo in -20i64..20,
        span in 0i64..40,
        step in prop_oneof![1i64..=5, (-5i64..=-1)],
        secondaries in 0u8..6,
    ) {
        let hi = if step > 0 { lo + span } else { lo - span };
        // The sequential reference set.
        let mut expect = Vec::new();
        let mut v = lo;
        while (step > 0 && v <= hi) || (step < 0 && v >= hi) {
            expect.push(v);
            v += step;
        }
        let cluster = if secondaries == 0 {
            ClusterConfig::new(1, 3, 2)
        } else {
            ClusterConfig::new(1, 3, 2).with_secondaries(4..=(3 + secondaries))
        };
        let p = Pisces::boot(MachineConfig::builder().clusters([cluster]).build()).unwrap();
        let seen_pre = std::sync::Arc::new(parking_lot_mutex_vec());
        let seen_self = std::sync::Arc::new(parking_lot_mutex_vec());
        let (sp, ss) = (seen_pre.clone(), seen_self.clone());
        p.register("loops", move |ctx: &TaskCtx| {
            ctx.forcesplit(|f| {
                f.presched_step(lo, hi, step, |i| {
                    sp.lock().unwrap().push(i);
                    Ok(())
                })?;
                f.barrier()?;
                f.selfsched_step(lo, hi, step, |i| {
                    ss.lock().unwrap().push(i);
                    Ok(())
                })?;
                Ok(())
            })
        });
        p.initiate_top_level(1, "loops", vec![]).unwrap();
        prop_assert!(p.wait_quiescent(std::time::Duration::from_secs(30)));
        p.shutdown();
        let mut pre = seen_pre.lock().unwrap().clone();
        let mut slf = seen_self.lock().unwrap().clone();
        pre.sort_unstable();
        slf.sort_unstable();
        let mut sorted_expect = expect.clone();
        sorted_expect.sort_unstable();
        prop_assert_eq!(pre, sorted_expect.clone());
        prop_assert_eq!(slf, sorted_expect);
    }
}

fn parking_lot_mutex_vec() -> std::sync::Mutex<Vec<i64>> {
    std::sync::Mutex::new(Vec::new())
}
