//! The shipped sample programs in `programs/` must parse, preprocess,
//! and run correctly through the `pisces` CLI — they are the repo's
//! user-facing face of Pisces Fortran.

use std::path::PathBuf;
use std::process::Command;

fn program(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("programs")
        .join(name)
}

fn run(name: &str, extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pisces"))
        .arg(program(name))
        .args(extra)
        .output()
        .expect("run pisces");
    assert!(
        out.status.success(),
        "{name} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn pi_program_converges() {
    let stdout = run("pi.pf", &["--clusters", "1", "--secondaries", "4-9"]);
    let line = stdout
        .lines()
        .find(|l| l.contains("PI("))
        .unwrap_or_else(|| panic!("no PI line in {stdout}"));
    let val: f64 = line
        .split("PI(")
        .nth(1)
        .unwrap()
        .trim_end_matches(')')
        .parse()
        .unwrap();
    assert!((val - std::f64::consts::PI).abs() < 1e-7, "{val}");
}

#[test]
fn ring_program_completes_laps() {
    let stdout = run("ring.pf", &["--clusters", "4", "--timeout", "60"]);
    assert!(
        stdout.contains("LAPSDONE("),
        "the token finished its laps: {stdout}"
    );
}

#[test]
fn primes_program_counts_correctly() {
    let stdout = run("primes.pf", &["--clusters", "1", "--secondaries", "4-7"]);
    // π(2000) = 303.
    assert!(
        stdout.contains("PRIMES(303)"),
        "prime count below 2000 is 303: {stdout}"
    );
}

#[test]
fn all_sample_programs_preprocess() {
    for entry in std::fs::read_dir(program("..").join("programs")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "pf") {
            let out = Command::new(env!("CARGO_BIN_EXE_pisces"))
                .arg(&path)
                .arg("--preprocess")
                .output()
                .expect("preprocess");
            assert!(
                out.status.success(),
                "{} does not preprocess: {}",
                path.display(),
                String::from_utf8_lossy(&out.stderr)
            );
            let f77 = String::from_utf8_lossy(&out.stdout);
            assert!(f77.contains("TRANSLATED BY THE PISCES 2 PREPROCESSOR"));
        }
    }
}

#[test]
fn heat_program_diffuses() {
    let stdout = run("heat.pf", &["--clusters", "4", "--timeout", "120"]);
    let line = stdout
        .lines()
        .find(|l| l.contains("PROFILE("))
        .unwrap_or_else(|| panic!("no PROFILE line in {stdout}"));
    let nums: Vec<f64> = line
        .split("PROFILE(")
        .nth(1)
        .unwrap()
        .trim_end_matches(')')
        .split(", ")
        .map(|v| v.parse().unwrap())
        .collect();
    // Monotone decay away from the hot end, bounded by the boundary.
    assert!(nums[0] > nums[1] && nums[1] >= nums[2], "{nums:?}");
    assert!(nums[0] > 50.0 && nums[0] < 100.0, "{nums:?}");
}
