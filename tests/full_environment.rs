//! Whole-environment integration: the complete 1987 workflow from the
//! paper's Section 11, driven end to end across every crate —
//! preprocessing/parsing the program, building a configuration through
//! the menus, building and downloading the load file, booting, running,
//! controlling the run through the execution environment, and analysing
//! the trace off-line.

use pisces::pisces_config::{ConfigLibrary, ConfigMenu, LoadFile, ProgramImage};
use pisces::pisces_core::prelude::*;
use pisces::pisces_exec::{figure1, ExecMenu, TraceAnalysis};
use pisces::pisces_fortran::FortranProgram;
use std::time::Duration;

const PROGRAM: &str = "\
TASK MAIN
  INTEGER NDONE
  NDONE = 0
  ON CLUSTER 2 INITIATE RIPPLE(3)
  ACCEPT 1 OF
  FINISHED
  END ACCEPT
  TO USER SEND ALLDONE(NDONE)
END TASK

TASK RIPPLE(DEPTH)
  SIGNAL FINISHED
  IF (DEPTH .GT. 1) THEN
    ON OTHER INITIATE RIPPLE(DEPTH - 1)
    ACCEPT 1 OF
    FINISHED
    END ACCEPT
  ENDIF
  TO PARENT SEND FINISHED(DEPTH)
END TASK

HANDLER FINISHED(D)
  NDONE = NDONE + 1
END HANDLER
";

#[test]
fn the_whole_1987_workflow() {
    let sub = SubstrateSpec::default().build();

    // 1. "Program development is done on a Unix PE": parse the Pisces
    //    Fortran program; keep the preprocessor output as the artefact
    //    the 1987 f77 compiler would receive.
    let program = FortranProgram::parse(PROGRAM).unwrap();
    let f77 = program.preprocess();
    sub.fs().write("src/ripple.f", f77.as_bytes()).unwrap();
    assert!(f77.contains("SUBROUTINE PSCTMAIN"));

    // 2. "The command `pisces` brings up the configuration environment":
    //    build a 3-cluster mapping through the menus and save it.
    let mut menu = ConfigMenu::new(sub.clone());
    for line in [
        "clusters 1-3",
        "primary 1 3",
        "primary 2 4",
        "primary 3 5",
        "slots 1 4",
        "slots 2 4",
        "slots 3 4",
        "terminal 1",
        "trace on all",
        "save ripple-run",
    ] {
        menu.execute(line).unwrap();
    }
    let config = ConfigLibrary::new(sub.clone()).load("ripple-run").unwrap();

    // 3. "A menu also drives the creation of an appropriate MMOS loadfile":
    //    build it from the program image and check the Section 13 bound.
    let image = ProgramImage::with_tasktypes(program.tasktypes());
    let loadfile = LoadFile::build(&config, &image).unwrap();
    loadfile.save(&sub, "loads/ripple.load").unwrap();
    assert!(
        loadfile.local_fraction() < 0.025 + 0.01,
        "image fraction {:.4}",
        loadfile.local_fraction()
    );

    // 4. Boot ("the loadfile is downloaded to the appropriate MMOS PEs"),
    //    register the user code, download its local-memory share.
    let p = Pisces::boot_on(sub.clone(), config).unwrap();
    loadfile.download_user_code(&sub).unwrap();
    program.register_with(&p);

    // 5. "Control transfers to the PISCES execution environment": start
    //    the top-level task from the menu and watch it.
    let exec = ExecMenu::new(p.clone());
    exec.execute("1 1 MAIN").unwrap();
    assert_eq!(exec.execute("wait 30").unwrap(), "quiescent");

    // The terminal got the final report (3 ripples deep).
    std::thread::sleep(Duration::from_millis(150));
    // Cluster 1's primary was pinned at PE 3 through the menu above, so
    // the terminal console lives there on any substrate.
    let console = p
        .substrate()
        .pe(PeId::new(3).unwrap())
        .console
        .output();
    assert!(
        console.iter().any(|l| l.contains("ALLDONE(1)")),
        "terminal: {console:?}"
    );

    // Displays work against the finished run.
    let fig = figure1::render(&p);
    assert!(fig.contains("CLUSTER 3"));
    let loading = exec.execute("8").unwrap();
    assert!(loading.contains("PE5"));

    // 6. Off-line analysis of the trace, exactly as Section 12 describes:
    //    write the JSONL trace to a file, read it back, analyse.
    sub.fs()
        .write("traces/ripple.jsonl", p.tracer().to_jsonl().as_bytes())
        .unwrap();
    let data = String::from_utf8(sub.fs().read("traces/ripple.jsonl").unwrap()).unwrap();
    let analysis = TraceAnalysis::from_jsonl(&data).unwrap();
    // MAIN + three RIPPLEs, all with complete lifetimes.
    let lifetimes: Vec<_> = analysis
        .tasks
        .values()
        .filter(|t| t.tasktype == "MAIN" || t.tasktype == "RIPPLE")
        .collect();
    assert_eq!(lifetimes.len(), 4);
    assert!(lifetimes.iter().all(|t| t.lifetime_ticks().is_some()));
    // Each of the three RIPPLEs sent one FINISHED, all matched.
    assert_eq!(analysis.sends_by_type.get("FINISHED"), Some(&3));
    assert_eq!(
        analysis
            .matched
            .iter()
            .filter(|m| m.mtype == "FINISHED")
            .count(),
        3,
        "every FINISHED send matched to its accept"
    );

    // 7. Section 13's storage claim holds for this run.
    let storage = p.storage_report();
    assert!(
        storage.system_table_fraction() < 0.003,
        "system tables {:.5} of shared memory",
        storage.system_table_fraction()
    );

    exec.execute("0").unwrap();
    p.substrate().shmem().check_invariants().unwrap();
}

#[test]
fn rust_and_fortran_tasks_interoperate() {
    // Tasktypes registered from Rust and from Pisces Fortran coexist on
    // one machine and exchange messages.
    let p = Pisces::boot(MachineConfig::simple(2, 4)).unwrap();

    FortranProgram::parse(
        "TASK FDOUBLE(N)\n\
         TO PARENT SEND DOUBLED(2 * N)\n\
         END TASK\n",
    )
    .unwrap()
    .register_with(&p);

    p.register("rust_main", |ctx: &TaskCtx| {
        ctx.initiate(Where::Other, "FDOUBLE", args![21i64])?;
        let mut got = 0;
        ctx.accept()
            .of(1)
            .handle("DOUBLED", |m| {
                got = m.args[0].as_int()?;
                Ok(())
            })
            .run()?;
        assert_eq!(got, 42);
        Ok(())
    });
    p.initiate_top_level(1, "rust_main", vec![]).unwrap();
    assert!(p.wait_quiescent(Duration::from_secs(30)));
    assert_eq!(p.stats().snapshot().tasks_completed, 2);
    p.shutdown();
}

#[test]
fn section9_mapping_limits_force_sizes_per_cluster() {
    // Boot the paper's Section 9 example and verify each cluster's
    // FORCESPLIT yields exactly the configured force size.
    let p = Pisces::boot(MachineConfig::section9_example()).unwrap();
    p.register("probe", |ctx: &TaskCtx| {
        let seen = std::sync::atomic::AtomicUsize::new(0);
        ctx.forcesplit(|f| {
            if f.is_primary() {
                seen.store(f.size(), std::sync::atomic::Ordering::Relaxed);
            }
            Ok(())
        })?;
        ctx.send(
            To::Parent,
            "SIZE",
            args![
                ctx.cluster() as i64,
                seen.load(std::sync::atomic::Ordering::Relaxed) as i64
            ],
        )
    });
    p.register("main", |ctx: &TaskCtx| {
        for c in 1..=4 {
            ctx.initiate(Where::Cluster(c), "probe", vec![])?;
        }
        let mut sizes = std::collections::BTreeMap::new();
        ctx.accept()
            .of(4)
            .handle("SIZE", |m| {
                sizes.insert(m.args[0].as_int()?, m.args[1].as_int()?);
                Ok(())
            })
            .run()?;
        // Paper: cluster 1 → no splitting; cluster 2 → PEs 16-20 (+1);
        // clusters 3,4 → PEs 7-15 (+1).
        assert_eq!(sizes[&1], 1);
        assert_eq!(sizes[&2], 6);
        assert_eq!(sizes[&3], 10);
        assert_eq!(sizes[&4], 10);
        Ok(())
    });
    p.initiate_top_level(1, "main", vec![]).unwrap();
    assert!(
        p.wait_quiescent(Duration::from_secs(60)),
        "{}",
        p.dump_state()
    );
    p.shutdown();
}
