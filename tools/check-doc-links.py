#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans every tracked *.md file for inline links/images and verifies that
relative targets (after stripping #fragments) exist on disk. External
(scheme://) and mailto: links are skipped. Exits non-zero listing every
dangling link, so CI fails when a doc is moved without updating its
references.
"""

import os
import re
import subprocess
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP = ("http://", "https://", "mailto:")


def tracked_markdown():
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return sorted(set(out.split()))


def main():
    bad = []
    for md in tracked_markdown():
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for target in LINK.findall(line):
                    if target.startswith(SKIP) or target.startswith("#"):
                        continue
                    path = target.split("#", 1)[0]
                    if not path:
                        continue
                    resolved = os.path.normpath(os.path.join(base, path))
                    if not os.path.exists(resolved):
                        bad.append(f"{md}:{lineno}: dangling link -> {target}")
    if bad:
        print("\n".join(bad))
        print(f"\n{len(bad)} dangling doc link(s)", file=sys.stderr)
        return 1
    print(f"doc links OK across {len(tracked_markdown())} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
