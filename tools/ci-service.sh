#!/usr/bin/env bash
# End-to-end smoke for the job service, runnable in CI or offline.
#
# Starts `piscesd`, pushes a two-tenant burst over TCP (one tenant
# greedy, one light but weighted 3x), and asserts:
#   * ping answers and an unknown program is rejected with a reason
#     (client exit code 3, distinct from job-failed 1 / transport 4);
#   * every admitted job completes (exit 0), none lost;
#   * the light tenant is not starved behind the greedy flood — its job
#     clears the queue in a fraction of the full drain time;
#   * a graceful drain refuses nothing it admitted, flushes labelled
#     OpenMetrics, and the daemon exits on its own;
#   * SLO smoke: a second daemon armed with a deterministic slow-PE
#     plan and a 1ms submit objective must light a nonzero burn rate,
#     fire the alert (ALERT$ lands in a job's trace artifacts), and
#     flush the new SLO metric families in the final snapshot.
#
# Binaries default to the cargo release layout; override for offline
# runs: PISCESD=.verify/out/piscesd PISCES=.verify/out/pisces ADDR=...
set -euo pipefail
cd "$(dirname "$0")/.."

PISCESD=${PISCESD:-target/release/piscesd}
PISCES=${PISCES:-target/release/pisces}
ADDR=${ADDR:-127.0.0.1:7071}
GREEDY_JOBS=${GREEDY_JOBS:-24}

WORK=$(mktemp -d)
SERVER_PID=
SLO_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
    [ -n "$SLO_PID" ] && kill "$SLO_PID" 2>/dev/null
    rm -rf "$WORK"
    return 0
}
trap cleanup EXIT

cat > "$WORK/busy.pf" <<'EOF'
TASK MAIN
INTEGER I
REAL X
X = 0.0
DO I = 1, 50000
X = X + I
END DO
PRINT 'BUSY', 1
END TASK
EOF
cat > "$WORK/quick.pf" <<'EOF'
TASK MAIN
PRINT 'QUICK', 1
END TASK
EOF

"$PISCESD" --listen "$ADDR" --clusters 1 --slots 8 --max-queue 128 \
    --tenants light=3,greedy=1 --metrics-out "$WORK/final.prom" \
    > "$WORK/piscesd.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    grep -q "listening" "$WORK/piscesd.log" 2>/dev/null && break
    sleep 0.2
done
grep -q "listening" "$WORK/piscesd.log" \
    || { echo "FAIL: piscesd did not start"; cat "$WORK/piscesd.log"; exit 1; }

"$PISCES" submit --addr "$ADDR" --ping

# Admission control: unknown program -> exit 3 with a reason on stderr.
rc=0
"$PISCES" submit --addr "$ADDR" no-such-program 2> "$WORK/reject.err" || rc=$?
[ "$rc" -eq 3 ] || { echo "FAIL: expected rejection exit 3, got $rc"; cat "$WORK/reject.err"; exit 1; }
grep -qi "no program" "$WORK/reject.err" \
    || { echo "FAIL: rejection carried no reason:"; cat "$WORK/reject.err"; exit 1; }

# Burst: the greedy tenant floods busy jobs; the light tenant submits
# one quick job after the flood is queued.
t0=$(date +%s%N)
pids=()
for _ in $(seq 1 "$GREEDY_JOBS"); do
    "$PISCES" submit --addr "$ADDR" --tenant greedy --quiet --file "$WORK/busy.pf" \
        > /dev/null 2>> "$WORK/greedy.err" &
    pids+=("$!")
done
sleep 0.5   # let the flood reach the queue
l0=$(date +%s%N)
"$PISCES" submit --addr "$ADDR" --tenant light --quiet --file "$WORK/quick.pf" > "$WORK/light.out"
light_ms=$(( ($(date +%s%N) - l0) / 1000000 ))
fail=0
for p in "${pids[@]}"; do wait "$p" || fail=1; done
total_ms=$(( ($(date +%s%N) - t0) / 1000000 ))
[ "$fail" -eq 0 ] || { echo "FAIL: a greedy job failed"; cat "$WORK/greedy.err"; tail "$WORK/piscesd.log"; exit 1; }
grep -q "QUICK 1" "$WORK/light.out" \
    || { echo "FAIL: light job lost its output"; cat "$WORK/light.out"; exit 1; }
echo "light job served in ${light_ms} ms; full greedy burst drained in ${total_ms} ms"
# Fairness: weighted 3:1, the light job must not wait out the whole
# greedy backlog (strict FIFO would put it dead last).
[ $((light_ms * 2)) -lt "$total_ms" ] \
    || { echo "FAIL: light tenant starved (${light_ms} ms vs ${total_ms} ms burst)"; exit 1; }

# Graceful drain: daemon finishes, flushes metrics, exits by itself.
"$PISCES" submit --addr "$ADDR" --drain
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: piscesd still running after drain"; tail "$WORK/piscesd.log"; exit 1
fi
SERVER_PID=
grep -q "drained, exiting" "$WORK/piscesd.log" \
    || { echo "FAIL: no clean drain banner"; tail "$WORK/piscesd.log"; exit 1; }

# The flushed snapshot is valid OpenMetrics with per-tenant job labels.
python3 tools/check-openmetrics.py "$WORK/final.prom"
expected=$((GREEDY_JOBS + 1))
grep -q "^pisces_jobs_finished_total $expected$" "$WORK/final.prom" \
    || { echo "FAIL: finished-jobs counter wrong (want $expected):"; grep "^pisces_jobs" "$WORK/final.prom"; exit 1; }
grep -q "^pisces_tenant_jobs_finished_total{tenant=\"light\"} 1$" "$WORK/final.prom" \
    || { echo "FAIL: per-tenant labelled counter missing:"; grep "tenant=" "$WORK/final.prom"; exit 1; }
grep -q "^pisces_tenant_jobs_finished_total{tenant=\"greedy\"} $GREEDY_JOBS$" "$WORK/final.prom" \
    || { echo "FAIL: greedy tenant counter wrong:"; grep "tenant=" "$WORK/final.prom"; exit 1; }

# ---- SLO smoke -------------------------------------------------------
# A 1ms submit target no queued job can meet, on windows the burst
# itself spans, plus a deterministic slow-PE fault (PE 3, 4x slower
# from tick 500): queue pressure must light the burn rate, fire the
# alert, and land an ALERT$ record in a job's trace artifacts.
SLO_ADDR=${SLO_ADDR:-127.0.0.1:7072}
SLO_JOBS=${SLO_JOBS:-8}
mkdir -p "$WORK/trace"
"$PISCESD" --listen "$SLO_ADDR" --clusters 1 --slots 8 --max-queue 128 \
    --tenants light=3,greedy=1 \
    --slo submit_p99=1ms,error_rate=50%,short=1s,long=5s \
    --slow-pe 3:500:4 --trace-dir "$WORK/trace" \
    --metrics-out "$WORK/slo.prom" \
    > "$WORK/piscesd-slo.log" 2>&1 &
SLO_PID=$!
for _ in $(seq 1 50); do
    grep -q "listening" "$WORK/piscesd-slo.log" 2>/dev/null && break
    sleep 0.2
done
grep -q "listening" "$WORK/piscesd-slo.log" \
    || { echo "FAIL: SLO piscesd did not start"; cat "$WORK/piscesd-slo.log"; exit 1; }

# Queue the whole burst up front so later jobs wait out the earlier
# ones — the queue wait, not the job itself, is what blows the SLO.
pids=()
for _ in $(seq 1 "$SLO_JOBS"); do
    "$PISCES" submit --addr "$SLO_ADDR" --tenant greedy --quiet --file "$WORK/busy.pf" \
        > /dev/null 2>> "$WORK/slo.err" &
    pids+=("$!")
done
fail=0
for p in "${pids[@]}"; do wait "$p" || fail=1; done
[ "$fail" -eq 0 ] || { echo "FAIL: an SLO-smoke job failed"; cat "$WORK/slo.err"; tail "$WORK/piscesd-slo.log"; exit 1; }

"$PISCES" submit --addr "$SLO_ADDR" --drain
for _ in $(seq 1 100); do
    kill -0 "$SLO_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$SLO_PID" 2>/dev/null; then
    echo "FAIL: SLO piscesd still running after drain"; tail "$WORK/piscesd-slo.log"; exit 1
fi
SLO_PID=

# The snapshot is valid OpenMetrics (exemplars included) and declares
# every new SLO/build-info family.
python3 tools/check-openmetrics.py "$WORK/slo.prom" \
    --require pisces_slo_burn_rate --require pisces_slo_breaches \
    --require pisces_submit_latency_ms --require pisces_build_info
# The 1ms target under queue pressure must burn the error budget...
grep '^pisces_slo_burn_rate{tenant="greedy",slo="submit_p99"' "$WORK/slo.prom" \
    | awk '$NF > 0 { found = 1 } END { exit !found }' \
    || { echo "FAIL: submit_p99 burn rate never went nonzero:"; grep "^pisces_slo" "$WORK/slo.prom"; exit 1; }
# ...fire at least one alert...
grep '^pisces_slo_breaches_total{tenant="greedy",slo="submit_p99"}' "$WORK/slo.prom" \
    | awk '$NF > 0 { found = 1 } END { exit !found }' \
    || { echo "FAIL: no submit_p99 breach recorded:"; grep "^pisces_slo" "$WORK/slo.prom"; exit 1; }
# ...and the fired alert must land in a job's trace artifacts.
grep -Frq 'ALERT$' "$WORK/trace" \
    || { echo "FAIL: no ALERT\$ record in any job trace"; ls "$WORK/trace"; exit 1; }
echo "SLO smoke: burn rate lit, alert fired and traced"

echo "ci-service: OK (${expected} jobs, 2 tenants, fairness + rejection + clean drain + SLO smoke)"
