#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace_event JSON file.

Checks the export produced by `pisces report <trace.jsonl> --perfetto out.json`
against the trace_event format contract:

  * the document parses and has a `traceEvents` list,
  * every event carries the keys its phase requires (`ph`, `pid`, `tid`,
    `ts` for timed phases, `name`, `dur` for complete events),
  * flow events (`ph: "s"` / `ph: "f"`) pair up: every flow id has exactly
    one start and one finish, finishes bind to the enclosing slice
    (`bp: "e"`), and the finish does not precede the start in time,
  * pids/tids are integers and timestamps are non-negative numbers.

Exit 0 when valid; 1 with a complaint list otherwise.

Usage: tools/check-perfetto.py out.json
"""

import json
import sys

TIMED_PHASES = {"X", "i", "s", "f", "b", "e"}


def check(path):
    problems = []
    try:
        doc = json.loads(open(path, encoding="utf-8").read())
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse {path}: {e}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")

    flows = {}  # id -> {"s": [...], "f": [...]}
    for n, ev in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not ph:
            problems.append(f"{where}: missing ph")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} missing or not an integer")
        if ph in TIMED_PHASES:
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts missing or negative for ph={ph!r}")
        if ph != "M" and not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"{where}: complete event without dur")
        if ph in ("s", "f"):
            fid = ev.get("id")
            if fid is None:
                problems.append(f"{where}: flow event without id")
                continue
            flows.setdefault(fid, {"s": [], "f": []})[ph].append(ev)
            if ph == "f" and ev.get("bp") != "e":
                problems.append(f"{where}: flow finish without bp=e (won't bind to slice)")

    for fid, pair in sorted(flows.items(), key=lambda kv: str(kv[0])):
        ns, nf = len(pair["s"]), len(pair["f"])
        if ns != 1 or nf != 1:
            problems.append(f"flow id {fid!r}: {ns} start(s), {nf} finish(es) — expected 1/1")
            continue
        start, fin = pair["s"][0], pair["f"][0]
        if isinstance(start.get("ts"), (int, float)) and isinstance(fin.get("ts"), (int, float)):
            if fin["ts"] < start["ts"]:
                problems.append(f"flow id {fid!r}: finish at ts={fin['ts']} precedes start at ts={start['ts']}")

    return problems


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = check(sys.argv[1])
    if problems:
        print(f"{sys.argv[1]}: INVALID ({len(problems)} problem(s))")
        for p in problems:
            print(f"  - {p}")
        return 1
    with open(sys.argv[1], encoding="utf-8") as f:
        n = len(json.load(f)["traceEvents"])
    print(f"{sys.argv[1]}: OK ({n} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
