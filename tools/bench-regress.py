#!/usr/bin/env python3
"""Performance regression gate over the committed BENCH_*.json baselines.

Compares a freshly captured bench-snapshot run against the baselines at the
repo root and fails (exit 1) when any *time-per-op* metric (name ending in
`_ns` or `_ns_per_iter`) worsens by more than the threshold (default 15%).
Other metrics — percentages, throughputs, speedups — are printed for
information but never gate.

A commit can opt out by putting `[bench-skip]` anywhere in its message
(e.g. for known-slow refactors whose follow-up recovers the cost); the gate
then prints the table and exits 0.

Usage:
  tools/bench-regress.py --current-dir /tmp/bench-ci            # JSON mode
  tools/bench-regress.py --current-txt snap-output.txt          # key=value mode

JSON mode expects the directory written by
`cargo run --release -p pisces-bench --bin bench-snapshot -- --out DIR`;
key=value mode expects `suite key=value` lines from the offline snapshot
harness. The baseline for each suite is the newest labelled run in the
committed BENCH_<suite>.json (ties broken by file order, last wins).
"""

import argparse
import json
import pathlib
import subprocess
import sys

GATED_SUFFIXES = ("_ns", "_ns_per_iter")

# Run labels that are standing datasets rather than before/after pairs.
# `backends` holds the in-queue backend × payload × producer matrix
# (per-backend metric names like `mpsc_roundtrip_16w_4p_ns`); `service`
# holds the job-service serving-path numbers (submit→done latency and
# jobs/sec, in BENCH_service.json); `substrate` holds the bus-vs-cube
# matrix (per-substrate metric names like `hypercube_xpe_roundtrip_ns`,
# in BENCH_substrate.json); `slo` holds the armed-vs-inert span/SLO
# overhead pair (in BENCH_slo.json, with its 5% budget asserted inside
# bench-snapshot itself). Each is compared against its own committed
# run of the same name, never against `pre`/`post` labels — the
# namespaces are disjoint.
SPECIAL_RUNS = ("backends", "service", "slo", "substrate")


def newest_run(doc):
    """Pick (label, metrics) of the newest ordinary run; ties → last
    listed. Special standing runs (see SPECIAL_RUNS) are excluded."""
    best = None
    for label, run in doc.get("runs", {}).items():
        if label in SPECIAL_RUNS:
            continue
        at = run.get("captured_at_unix", 0)
        if best is None or at >= best[0]:
            best = (at, label, run.get("metrics", {}))
    return (best[1], best[2]) if best else (None, {})


def special_runs(doc):
    """{name: metrics} for the standing runs present in `doc`."""
    runs = doc.get("runs", {})
    return {
        name: runs[name].get("metrics", {})
        for name in SPECIAL_RUNS
        if name in runs
    }


def load_json_dir(d):
    """{suite: {"labelled": (label, metrics), "special": {name: metrics}}}
    from BENCH_*.json files in `d`."""
    out = {}
    for path in sorted(pathlib.Path(d).glob("BENCH_*.json")):
        doc = json.loads(path.read_text())
        suite = doc.get("suite", path.stem.replace("BENCH_", ""))
        out[suite] = {"labelled": newest_run(doc), "special": special_runs(doc)}
    return out


def load_txt(path):
    """{suite: {"labelled": (None, metrics), "special": {}}} from
    `suite key=value` lines. The offline harness may report backend
    matrix cells as `suite.backends key=value`."""
    out = {}
    for line in pathlib.Path(path).read_text().splitlines():
        parts = line.strip().split()
        if len(parts) != 2 or "=" not in parts[1]:
            continue
        suite, kv = parts
        key, _, value = kv.partition("=")
        try:
            v = float(value)
        except ValueError:
            continue
        suite, _, special = suite.partition(".")
        slot = out.setdefault(suite, {"labelled": (None, {}), "special": {}})
        if special:
            slot["special"].setdefault(special, {})[key] = v
        else:
            slot["labelled"][1][key] = v
    return out


def commit_message(explicit):
    if explicit is not None:
        return explicit
    try:
        return subprocess.run(
            ["git", "log", "-1", "--pretty=%B"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return ""


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=None, help="dir with committed BENCH_*.json (default: repo root)")
    ap.add_argument("--current-dir", help="dir with freshly captured BENCH_*.json")
    ap.add_argument("--current-txt", help="file of `suite key=value` lines (offline harness)")
    ap.add_argument("--threshold", type=float, default=15.0, help="regression threshold, percent (default 15)")
    ap.add_argument("--skip-token", default="[bench-skip]")
    ap.add_argument("--commit-message", default=None, help="override the git commit message scan")
    args = ap.parse_args()

    if bool(args.current_dir) == bool(args.current_txt):
        ap.error("exactly one of --current-dir / --current-txt is required")

    root = pathlib.Path(args.baseline_dir) if args.baseline_dir else pathlib.Path(__file__).resolve().parent.parent
    baseline = load_json_dir(root)
    current = load_json_dir(args.current_dir) if args.current_dir else load_txt(args.current_txt)
    if not baseline:
        print(f"error: no BENCH_*.json baselines in {root}", file=sys.stderr)
        return 2
    if not current:
        print("error: no current metrics found", file=sys.stderr)
        return 2

    regressions = []

    def compare(name, base_label, base, cur_label, cur):
        header = f"suite: {name} (baseline run: {base_label or '?'}"
        header += f", current run: {cur_label})" if cur_label else ")"
        print(header)
        print(f"  {'metric':<36} {'baseline':>12} {'current':>12} {'delta':>9}  status")
        for key in sorted(base):
            if key not in cur:
                print(f"  {key:<36} {base[key]:>12.1f} {'—':>12} {'—':>9}  missing (not gated)")
                continue
            b, c = float(base[key]), float(cur[key])
            delta = (c - b) / b * 100.0 if b else 0.0
            gated = key.endswith(GATED_SUFFIXES)
            if not gated:
                status = "info"
            elif delta > args.threshold:
                status = "REGRESSION"
                regressions.append((name, key, b, c, delta))
            elif delta < -args.threshold:
                status = "improved"
            else:
                status = "ok"
            print(f"  {key:<36} {b:>12.1f} {c:>12.1f} {delta:>+8.1f}%  {status}")
        for key in sorted(set(cur) - set(base)):
            print(f"  {key:<36} {'—':>12} {float(cur[key]):>12.1f} {'—':>9}  new (not gated)")
        print()

    for suite in sorted(baseline):
        base_label, base = baseline[suite]["labelled"]
        cur_suite = current.get(suite, {"labelled": (None, {}), "special": {}})
        cur_label, cur = cur_suite["labelled"]
        if cur:
            compare(suite, base_label, base, cur_label, cur)
        elif base:
            # Suites whose only data is a standing run (e.g. `service`)
            # have no labelled baseline — nothing ordinary to miss.
            print(f"warning: suite {suite!r} missing from current capture — not gated", file=sys.stderr)
        # Standing runs (e.g. the backend matrix) gate against their own
        # committed counterpart, using the same per-backend metric names.
        for name, base_special in sorted(baseline[suite]["special"].items()):
            cur_special = cur_suite["special"].get(name, {})
            if not cur_special:
                print(f"warning: standing run {suite}.{name} missing from current capture — not gated", file=sys.stderr)
                continue
            compare(f"{suite}.{name}", name, base_special, name, cur_special)

    if not regressions:
        print(f"bench-regress: no time-per-op metric worsened by more than {args.threshold:.0f}%")
        return 0

    print(f"bench-regress: {len(regressions)} metric(s) regressed beyond {args.threshold:.0f}%:")
    for suite, key, b, c, delta in regressions:
        print(f"  {suite}/{key}: {b:.1f} -> {c:.1f} ({delta:+.1f}%)")
    if args.skip_token in commit_message(args.commit_message):
        print(f"bench-regress: {args.skip_token} found in commit message — gate skipped")
        return 0
    print(f"(override with {args.skip_token} in the commit message)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
