#!/usr/bin/env python3
"""Validate pisces telemetry exposition output.

Default mode checks an OpenMetrics text document — the live endpoint's
body, a flight recorder's `metrics.prom`, or the file written by
`pisces report <trace.jsonl> --metrics out.prom` — against the exposition
format contract:

  * every sample line belongs to a metric family declared with `# TYPE`
    before its first sample, and every family carries a `# HELP` line,
  * counter samples use the `_total` suffix (the family is declared
    without it) and counter values are non-negative,
  * histogram `_bucket` series are cumulative (monotone non-decreasing in
    `le` order), end with an `le="+Inf"` bucket, and that bucket equals
    the family's `_count`,
  * the document ends with `# EOF` and contains it exactly once.

Exemplars (`name_bucket{le="x"} 3 # {job_id="7"} 900`) are accepted on
`_bucket` and `_total` samples and validated: the exemplar must carry a
brace-delimited label set and a numeric value. `--require FAMILY`
(repeatable) additionally fails the document unless FAMILY is declared
with `# TYPE` — CI uses it to pin the SLO and build-info families.

With `--folded` the file is instead checked as collapsed-stack flamegraph
input (`pisces report --flamegraph out.folded`): every line must be
`frame;frame;... <count>` with non-empty frames and a positive integer
count, and the file must contain at least one stack.

Exit 0 when valid; 1 with a complaint list otherwise.

Usage: tools/check-openmetrics.py out.prom [--require FAMILY]...
       tools/check-openmetrics.py --folded out.folded
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+[^\s]+)?$"
)

HISTOGRAM_SUFFIXES = ("_bucket", "_count", "_sum")

# `value # {label="x",...} exemplar-value [timestamp]` — OpenMetrics
# exemplar syntax, allowed on _bucket and _total samples.
EXEMPLAR_RE = re.compile(
    r"\s#\s\{(?P<labels>[^}]*)\}\s+(?P<value>[^\s]+)(?:\s+[^\s]+)?$"
)
EXEMPLAR_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')


def family_of(sample_name, types):
    """Map a sample name back to its declared family."""
    if sample_name in types:
        return sample_name
    if sample_name.endswith("_total") and sample_name[: -len("_total")] in types:
        return sample_name[: -len("_total")]
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
            return sample_name[: -len(suffix)]
    return None


def le_value(labels):
    m = re.search(r'le="([^"]*)"', labels or "")
    if m is None:
        return None
    return float("inf") if m.group(1) == "+Inf" else float(m.group(1))


def check_metrics(path, require=()):
    problems = []
    try:
        text = open(path, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {path}: {e}"]

    types = {}  # family -> type
    helps = set()
    buckets = {}  # family -> [(le, value)] in document order
    counts = {}  # family -> _count value
    saw_eof = 0
    after_eof = False

    for n, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if after_eof:
            problems.append(f"line {n}: content after # EOF")
            after_eof = False  # complain once
            continue
        if line == "# EOF":
            saw_eof += 1
            after_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                problems.append(f"line {n}: malformed TYPE line: {line!r}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                problems.append(f"line {n}: HELP line without text: {line!r}")
                continue
            helps.add(parts[2])
            continue
        if line.startswith("#"):
            # Free-form comment (e.g. the flight recorder's reason line).
            continue

        exemplar = EXEMPLAR_RE.search(line)
        if exemplar is not None:
            line = line[: exemplar.start()]
        m = SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {n}: unparseable sample line: {line!r}")
            continue
        name, labels, raw = m.group("name"), m.group("labels"), m.group("value")
        if exemplar is not None:
            if not (name.endswith("_bucket") or name.endswith("_total")):
                problems.append(
                    f"line {n}: exemplar on {name!r} (only _bucket/_total may carry one)"
                )
            try:
                float(exemplar.group("value"))
            except ValueError:
                problems.append(
                    f"line {n}: {name}: non-numeric exemplar value "
                    f"{exemplar.group('value')!r}"
                )
            for pair in filter(None, exemplar.group("labels").split(",")):
                if EXEMPLAR_LABEL_RE.match(pair.strip()) is None:
                    problems.append(
                        f"line {n}: {name}: malformed exemplar label {pair!r}"
                    )
        family = family_of(name, types)
        if family is None:
            problems.append(f"line {n}: sample {name!r} has no preceding # TYPE")
            continue
        try:
            value = float(raw)
        except ValueError:
            problems.append(f"line {n}: {name}: non-numeric value {raw!r}")
            continue
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                problems.append(f"line {n}: counter sample {name!r} lacks _total suffix")
            if value < 0:
                problems.append(f"line {n}: counter {name} is negative ({value})")
        if kind == "histogram":
            if name == family + "_bucket":
                le = le_value(labels)
                if le is None:
                    problems.append(f"line {n}: {name} without an le label")
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif name == family + "_count":
                counts[family] = value

    for family, series in sorted(buckets.items()):
        les = [le for le, _ in series]
        vals = [v for _, v in series]
        if les != sorted(les):
            problems.append(f"{family}: bucket le values out of order")
        if any(b < a for a, b in zip(vals, vals[1:])):
            problems.append(f"{family}: cumulative bucket counts decrease")
        if not les or les[-1] != float("inf"):
            problems.append(f'{family}: bucket series does not end with le="+Inf"')
        elif family in counts and vals[-1] != counts[family]:
            problems.append(
                f"{family}: +Inf bucket {vals[-1]} != _count {counts[family]}"
            )

    for family in sorted(types):
        if family not in helps:
            problems.append(f"{family}: declared without a # HELP line")
    if saw_eof == 0:
        problems.append("document does not end with # EOF")
    elif saw_eof > 1:
        problems.append(f"# EOF appears {saw_eof} times")
    if not types:
        problems.append("no metric families declared")
    for family in require:
        if family not in types:
            problems.append(f"required family {family!r} is not declared")
    return problems


def check_folded(path):
    problems = []
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as e:
        return [f"cannot read {path}: {e}"]
    stacks = 0
    for n, line in enumerate(lines, 1):
        if not line.strip():
            continue
        stack, _, raw = line.rpartition(" ")
        if not stack:
            problems.append(f"line {n}: no stack before the count: {line!r}")
            continue
        if not raw.isdigit() or int(raw) <= 0:
            problems.append(f"line {n}: count {raw!r} is not a positive integer")
            continue
        if any(not frame for frame in stack.split(";")):
            problems.append(f"line {n}: empty frame in stack {stack!r}")
            continue
        stacks += 1
    if stacks == 0:
        problems.append("no stacks found (empty profile)")
    return problems


def main():
    args = sys.argv[1:]
    folded = "--folded" in args
    args = [a for a in args if a != "--folded"]
    require = []
    while "--require" in args:
        i = args.index("--require")
        if i + 1 >= len(args):
            print("--require needs a family name", file=sys.stderr)
            return 2
        require.append(args[i + 1])
        del args[i : i + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = check_folded(args[0]) if folded else check_metrics(args[0], require)
    if problems:
        print(f"{args[0]}: INVALID ({len(problems)} problem(s))")
        for p in problems:
            print(f"  - {p}")
        return 1
    if folded:
        n = sum(1 for l in open(args[0], encoding="utf-8") if l.strip())
        print(f"{args[0]}: OK ({n} folded stacks)")
    else:
        n = sum(
            1
            for l in open(args[0], encoding="utf-8")
            if l.startswith("# TYPE ")
        )
        print(f"{args[0]}: OK ({n} metric families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
