//! The `pisces` command.
//!
//! "When the user has created and successfully compiled his Pisces Fortran
//! tasktype definitions…, then the command `pisces` brings up the PISCES
//! configuration environment" (paper, Section 11). This binary is that
//! command for the reproduction: it takes a Pisces Fortran source file,
//! optionally shows the preprocessor's Fortran 77, builds a configuration
//! (from flags or a saved-configuration JSON), boots the virtual machine,
//! runs the program, and can drop into the execution environment's
//! run-control menu.
//!
//! ```text
//! pisces program.pf                         # run tasktype MAIN on 2 clusters
//! pisces program.pf --preprocess            # show the Fortran 77 translation
//! pisces program.pf --clusters 4 --slots 8 --secondaries 7-15
//! pisces program.pf --trace all --report
//! pisces program.pf --trace all --trace-file run.jsonl
//! pisces report run.jsonl                   # off-line timing analysis (§12)
//! pisces program.pf --interactive           # the 10-option menu on stdin
//! pisces submit pi --addr 127.0.0.1:7070    # run a job on a piscesd server
//! ```

use pisces::pisces_core::prelude::*;
use pisces::pisces_exec::ExecMenu;
use pisces::pisces_fortran::FortranProgram;
use std::io::{BufRead, Write as _};
use std::time::Duration;

mod top;

struct Options {
    source: String,
    preprocess: bool,
    clusters: u8,
    slots: u8,
    secondaries: Vec<u16>,
    config_json: Option<String>,
    trace: Vec<String>,
    trace_file: Option<String>,
    main_task: String,
    task_args: Vec<String>,
    report: bool,
    interactive: bool,
    timeout_secs: u64,
    telemetry_port: Option<u16>,
    flight_dir: Option<String>,
    msg_backend: Option<MsgBackend>,
    substrate: Option<SubstrateSpec>,
    pin_pes: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pisces <program.pf> [options]\n\
         \x20      pisces report <trace.jsonl> [width] [--perfetto <out.json>]\n\
         \x20                    [--metrics <out.prom>] [--flamegraph <out.folded>] [--strict]\n\
         \x20      pisces submit <name | --file prog.pf> [--addr <a>] [--tenant <t>]\n\
         \x20                    [--main <TASK>] [--arg <v>]... | --status | --drain | --ping\n\
         \x20      pisces top [--addr <a>] [--interval <s>] [--once]\n\
         \n\
         options:\n\
           --preprocess          print the Fortran 77 translation and exit\n\
           --clusters <n>        number of clusters (default 2)\n\
           --slots <n>           user slots per cluster (default 4)\n\
           --secondaries <a-b>   force PEs for every cluster (e.g. 7-15)\n\
           --config <file.json>  boot from a saved configuration instead\n\
           --trace <all|EVENT>   enable tracing (repeatable)\n\
           --trace-file <path>   stream trace records to a JSONL file\n\
           --main <TASK>         top-level tasktype (default MAIN)\n\
           --arg <value>         argument for the top-level task (repeatable)\n\
           --report              print storage and PE-loading reports after the run\n\
           --interactive         drop into the run-control menu (reads stdin)\n\
           --timeout <secs>      quiescence timeout (default 60)\n\
           --telemetry-port <n>  serve live OpenMetrics on 127.0.0.1:<n> (0 = ephemeral)\n\
           --flight-dir <path>   arm the flight recorder; dumps land in <path>\n\
           --msg-backend <b>     in-queue backend: mutex (default), mpsc, or spsc\n\
           --substrate <s>       machine substrate: flex32[:pes] (default) or hypercube[:dim]\n\
           --pin-pes             pin simulated-PE threads to fixed cores\n\
         \n\
         report options:\n\
           --perfetto <out>      also write Chrome trace-event JSON for Perfetto\n\
           --metrics <out>       also write an OpenMetrics snapshot of the trace\n\
           --flamegraph <out>    also write collapsed stacks (flamegraph.pl input)\n\
           --strict              exit nonzero if any trace line was malformed"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut o = Options {
        source: String::new(),
        preprocess: false,
        clusters: 2,
        slots: 4,
        secondaries: Vec::new(),
        config_json: None,
        trace: Vec::new(),
        trace_file: None,
        main_task: "MAIN".into(),
        task_args: Vec::new(),
        report: false,
        interactive: false,
        timeout_secs: 60,
        telemetry_port: None,
        flight_dir: None,
        msg_backend: None,
        substrate: None,
        pin_pes: false,
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--preprocess" => o.preprocess = true,
            "--clusters" => {
                o.clusters = need(&mut args, "--clusters")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--slots" => {
                o.slots = need(&mut args, "--slots")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--secondaries" => {
                let spec = need(&mut args, "--secondaries");
                let (lo, hi) = spec
                    .split_once('-')
                    .unwrap_or((spec.as_str(), spec.as_str()));
                let lo: u16 = lo.parse().unwrap_or_else(|_| usage());
                let hi: u16 = hi.parse().unwrap_or_else(|_| usage());
                o.secondaries = (lo..=hi).collect();
            }
            "--config" => o.config_json = Some(need(&mut args, "--config")),
            "--trace" => o.trace.push(need(&mut args, "--trace")),
            "--trace-file" => o.trace_file = Some(need(&mut args, "--trace-file")),
            "--main" => o.main_task = need(&mut args, "--main").to_ascii_uppercase(),
            "--arg" => o.task_args.push(need(&mut args, "--arg")),
            "--report" => o.report = true,
            "--interactive" => o.interactive = true,
            "--timeout" => {
                o.timeout_secs = need(&mut args, "--timeout")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--telemetry-port" => {
                o.telemetry_port = Some(
                    need(&mut args, "--telemetry-port")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--flight-dir" => o.flight_dir = Some(need(&mut args, "--flight-dir")),
            "--msg-backend" => {
                o.msg_backend = Some(
                    need(&mut args, "--msg-backend")
                        .parse()
                        .unwrap_or_else(|e: String| {
                            eprintln!("{e}");
                            usage()
                        }),
                )
            }
            "--substrate" => {
                o.substrate = Some(
                    need(&mut args, "--substrate")
                        .parse()
                        .unwrap_or_else(|e: PiscesError| {
                            eprintln!("pisces: {e}");
                            usage()
                        }),
                )
            }
            "--pin-pes" => o.pin_pes = true,
            "-h" | "--help" => usage(),
            other if o.source.is_empty() && !other.starts_with('-') => o.source = a,
            _ => usage(),
        }
    }
    if o.source.is_empty() {
        usage();
    }
    o
}

fn build_config(o: &Options) -> Result<MachineConfig> {
    if let Some(path) = &o.config_json {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PiscesError::BadConfiguration(format!("{path}: {e}")))?;
        let mut config: MachineConfig = serde_json::from_str(&text)
            .map_err(|e| PiscesError::BadConfiguration(format!("{path}: {e}")))?;
        // Telemetry flags override whatever the saved configuration says.
        if o.telemetry_port.is_some() {
            config.telemetry.port = o.telemetry_port;
        }
        if o.flight_dir.is_some() {
            config.telemetry.flight_dir = o.flight_dir.clone();
        }
        if let Some(b) = o.msg_backend {
            config.msg_backend = b;
        }
        if let Some(spec) = o.substrate {
            config.substrate = spec;
        }
        if o.pin_pes {
            config.pin_pes = true;
        }
        config.validate()?;
        return Ok(config);
    }
    let mut config = MachineConfig::simple(o.clusters, o.slots);
    if let Some(spec) = o.substrate {
        config.substrate = spec;
    }
    for c in &mut config.clusters {
        config_secondaries(c, &o.secondaries);
    }
    for t in &o.trace {
        if t.eq_ignore_ascii_case("all") {
            config.trace = TraceSettings::all();
        } else {
            for k in TraceEventKind::ALL {
                if k.label().eq_ignore_ascii_case(t) {
                    config.trace.enabled.push(k);
                }
            }
        }
    }
    if o.trace_file.is_some() {
        config.trace.file = o.trace_file.clone();
    }
    if o.telemetry_port.is_some() {
        config.telemetry.port = o.telemetry_port;
    }
    if o.flight_dir.is_some() {
        config.telemetry.flight_dir = o.flight_dir.clone();
    }
    if let Some(b) = o.msg_backend {
        config.msg_backend = b;
    }
    if o.pin_pes {
        config.pin_pes = true;
    }
    config.validate()?;
    Ok(config)
}

/// `pisces report <trace.jsonl> [width] [--perfetto <out.json>]
/// [--metrics <out.prom>] [--flamegraph <out.folded>] [--strict]`: the
/// Section 12 off-line timing analysis — per-PE utilization timelines,
/// latency histograms, the happens-before critical path, and the
/// event-level trace report. With `--perfetto` the trace is also written
/// as Chrome trace-event JSON loadable in Perfetto / `chrome://tracing`;
/// `--metrics` emits the same OpenMetrics exposition the live telemetry
/// endpoint serves, and `--flamegraph` emits collapsed stacks for
/// flamegraph tooling.
///
/// Malformed trace lines (a crashed run's torn tail, a truncated copy)
/// are skipped with a count on stderr; `--strict` turns any skip into a
/// nonzero exit after the report is still produced.
fn run_report(args: &[String]) -> ! {
    let mut path: Option<&String> = None;
    let mut width: usize = 72;
    let mut perfetto: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut flamegraph: Option<String> = None;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--perfetto" | "--metrics" | "--flamegraph" => {
                let Some(out) = it.next() else {
                    eprintln!("{a} needs an output path");
                    usage()
                };
                match a.as_str() {
                    "--perfetto" => perfetto = Some(out.clone()),
                    "--metrics" => metrics = Some(out.clone()),
                    _ => flamegraph = Some(out.clone()),
                }
            }
            "--strict" => strict = true,
            s => {
                if path.is_none() {
                    path = Some(a);
                } else if let Ok(w) = s.parse() {
                    width = w;
                } else {
                    usage()
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("pisces report: needs a trace file (JSONL)");
        usage()
    };
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pisces report: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let (r, skipped) = pisces::pisces_exec::Report::from_jsonl_lossy(&data);
    if skipped > 0 {
        eprintln!("pisces report: skipped {skipped} malformed line(s) in {path}");
    }
    print!("{}", r.render(width));
    let mut write_out = |out: &str, body: String, what: &str| {
        if let Err(e) = std::fs::write(out, body) {
            eprintln!("pisces report: cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("{what} written to {out}");
    };
    if let Some(out) = perfetto {
        write_out(&out, r.to_perfetto(), "perfetto trace");
    }
    if let Some(out) = metrics {
        write_out(&out, r.to_openmetrics(), "openmetrics snapshot");
    }
    if let Some(out) = flamegraph {
        write_out(&out, r.to_folded(), "collapsed stacks");
    }
    std::process::exit(if strict && skipped > 0 { 1 } else { 0 })
}

/// `pisces submit ...` — client for a running `piscesd`.
///
/// Exit codes tell scripts apart what happened:
/// 0 job ran and succeeded · 1 job ran and failed · 2 usage ·
/// 3 rejected by admission control · 4 transport error.
fn run_submit(args: &[String]) -> ! {
    use pisces::pisces_server::protocol::{ProgramRef, Request, Response};
    use pisces::pisces_server::{Client, ClientError};

    let mut addr = "127.0.0.1:7070".to_string();
    let mut tenant = "anonymous".to_string();
    let mut main_task = "MAIN".to_string();
    let mut task_args: Vec<String> = Vec::new();
    let mut name: Option<String> = None;
    let mut file: Option<String> = None;
    let mut action = "submit";
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let need = |it: &mut std::slice::Iter<String>| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{a} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--addr" => addr = need(&mut it),
            "--tenant" => tenant = need(&mut it),
            "--main" => main_task = need(&mut it),
            "--arg" => task_args.push(need(&mut it)),
            "--file" => file = Some(need(&mut it)),
            "--drain" => action = "drain",
            "--status" => action = "status",
            "--ping" => action = "ping",
            "--quiet" => quiet = true,
            s if !s.starts_with('-') && name.is_none() => name = Some(s.to_string()),
            _ => usage(),
        }
    }
    let request = match action {
        "drain" => Request::Drain,
        "status" => Request::Status,
        "ping" => Request::Ping,
        _ => {
            let program = match (&name, &file) {
                (Some(n), None) => ProgramRef::Named(n.clone()),
                (None, Some(path)) => match std::fs::read_to_string(path) {
                    Ok(src) => ProgramRef::Inline(src),
                    Err(e) => {
                        eprintln!("pisces submit: cannot read {path}: {e}");
                        std::process::exit(2);
                    }
                },
                _ => {
                    eprintln!("pisces submit: needs a program name or --file (not both)");
                    usage()
                }
            };
            Request::Submit {
                tenant,
                program,
                main: main_task,
                args: task_args,
            }
        }
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pisces submit: {e}");
            std::process::exit(4);
        }
    };
    let response = match client.request(&request) {
        Ok(r) => r,
        Err(e @ ClientError::Transport(_)) => {
            eprintln!("pisces submit: {e}");
            std::process::exit(4);
        }
        Err(e) => {
            eprintln!("pisces submit: {e}");
            std::process::exit(4);
        }
    };
    match response {
        Response::Pong => {
            println!("pong");
            std::process::exit(0);
        }
        Response::Status(s) => {
            println!(
                "draining {} · queued {} · submitted {} · finished {} ({} failed) · rejected {} · reboots {}",
                s.draining, s.queued, s.submitted, s.finished, s.failed, s.rejected, s.reboots
            );
            if let Some((tenant, job)) = &s.running {
                println!("running: job {job} (tenant {tenant})");
            }
            if let Some(addr) = &s.telemetry {
                println!("telemetry: {addr}");
            }
            for t in &s.tenants {
                let waits = if t.waits_ms.is_empty() {
                    "-".to_string()
                } else {
                    t.waits_ms
                        .iter()
                        .map(|w| format!("{w}ms"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                println!(
                    "tenant {:<12} weight {} queued {} finished {} p50 {}ms p99 {}ms waiting [{}]",
                    t.tenant, t.weight, t.queued, t.finished, t.submit_p50_ms, t.submit_p99_ms, waits
                );
            }
            if !s.programs.is_empty() {
                println!("programs: {}", s.programs.join(", "));
            }
            std::process::exit(0);
        }
        Response::DrainDone { finished, unserved } => {
            println!("drained: {finished} jobs finished, {unserved} unserved");
            std::process::exit(0);
        }
        Response::Rejected { kind, reason } => {
            eprintln!("pisces submit: rejected ({kind}): {reason}");
            std::process::exit(3);
        }
        Response::Error { message } => {
            eprintln!("pisces submit: server error: {message}");
            std::process::exit(4);
        }
        Response::Done(r) => {
            for line in &r.output {
                println!("{line}");
            }
            if !quiet {
                eprintln!(
                    "job {} (tenant {}): {} · queued {} ms · ran {} ms · {} ticks",
                    r.job_id,
                    r.tenant,
                    if r.ok { "ok" } else { "FAILED" },
                    r.queued_ms,
                    r.run_ms,
                    r.span_ticks
                );
                if let Some(e) = &r.error {
                    eprintln!("  error: {e}");
                }
                for (k, v) in &r.stats {
                    eprintln!("  {k}: {v}");
                }
            }
            std::process::exit(if r.ok { 0 } else { 1 });
        }
    }
}

fn config_secondaries(c: &mut ClusterConfig, secondaries: &[u16]) {
    c.secondary_pes = secondaries
        .iter()
        .copied()
        .filter(|&pe| pe != c.primary_pe)
        .collect();
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("report") {
        run_report(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("submit") {
        run_submit(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("top") {
        top::run_top(&argv[1..]);
    }
    let o = parse_args();
    let source = match std::fs::read_to_string(&o.source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pisces: cannot read {}: {e}", o.source);
            std::process::exit(1);
        }
    };
    let program = match FortranProgram::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pisces: {}: {e}", o.source);
            std::process::exit(1);
        }
    };
    if o.preprocess {
        print!("{}", program.preprocess());
        return;
    }

    let config = match build_config(&o) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pisces: {e}");
            std::process::exit(1);
        }
    };
    let sub = config.substrate.build();
    for pe in sub.topology().pe_ids() {
        sub.pe(pe).console.set_echo(true);
    }
    let p = match Pisces::boot_on(sub, config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pisces: boot failed: {e}");
            std::process::exit(1);
        }
    };
    if o.trace.iter().any(|t| t.eq_ignore_ascii_case("all")) {
        p.tracer().set_to_screen(true);
    }
    program.register_with(&p);

    if !program.tasktypes().contains(&o.main_task) {
        eprintln!(
            "pisces: no tasktype {} (program defines: {})",
            o.main_task,
            program.tasktypes().join(", ")
        );
        std::process::exit(1);
    }

    let task_args: Vec<Value> = o
        .task_args
        .iter()
        .map(|s| pisces::pisces_exec::menu::parse_value(s))
        .collect();
    if let Err(e) = p.initiate_top_level(1, &o.main_task, task_args) {
        eprintln!("pisces: initiate failed: {e}");
        std::process::exit(1);
    }

    if o.interactive {
        let menu = ExecMenu::new(p.clone());
        println!("{}", menu.help());
        let stdin = std::io::stdin();
        loop {
            print!("pisces> ");
            let _ = std::io::stdout().flush();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            match menu.execute(line.trim()) {
                Ok(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                    if line.trim() == "0" || line.trim() == "terminate" {
                        return;
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
    }

    if !p.wait_quiescent(Duration::from_secs(o.timeout_secs)) {
        eprintln!("pisces: run did not finish within {}s", o.timeout_secs);
        eprintln!("{}", p.dump_state());
        p.shutdown();
        std::process::exit(1);
    }
    // Let controllers flush terminal output.
    std::thread::sleep(Duration::from_millis(100));

    if o.report {
        println!("\n--- storage report (paper §13) ---");
        let r = p.storage_report();
        println!(
            "shared memory in use {} B / high water {} B of {} B",
            r.shm.in_use, r.shm.high_water, r.shm.capacity
        );
        for tag in pisces::pisces_substrate::shmem::ShmTag::ALL {
            println!("  {:<14} {:>8} B", tag.label(), r.shm.tag_bytes(tag));
        }
        println!("\n--- PE loading ---");
        for l in p.pe_loading() {
            println!(
                "  PE{:<3} ticks {:>10}  cpu acq {:>8}  contended {:>6}",
                l.pe, l.ticks, l.cpu_acquisitions, l.cpu_contended
            );
        }
        let s = p.stats().snapshot();
        println!(
            "\ntasks {} | messages {} (accepted {}) | forcesplits {} | window ops {}",
            s.tasks_completed,
            s.messages_sent,
            s.messages_accepted,
            s.forcesplits,
            s.window_reads + s.window_writes
        );
        println!("\n--- latency histograms ---");
        print!("{}", p.metrics().report());
    }
    p.shutdown();
}
