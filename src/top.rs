//! `pisces top` — a live operator dashboard for a running `piscesd`.
//!
//! Polls the daemon's status frame over the job-submission socket and,
//! when the machine's telemetry endpoint is armed, scrapes the
//! OpenMetrics exposition for SLO burn rates and per-PE load. One
//! screenful per refresh:
//!
//! ```text
//! pisces top --addr 127.0.0.1:7070              # refresh every 2 s
//! pisces top --addr 127.0.0.1:7070 --interval 5
//! pisces top --addr 127.0.0.1:7070 --once       # one frame, no clear
//! ```
//!
//! `--once` prints a single frame without touching the terminal modes,
//! which is what the end-to-end tests (and scripts) use.

use pisces::pisces_server::protocol::{Request, Response, StatusReply};
use pisces::pisces_server::Client;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::time::Duration;

/// One parsed OpenMetrics sample: family name, label set, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse an OpenMetrics exposition into samples. Comment and `# TYPE`
/// lines are skipped; exemplar suffixes (`# {...} v`) are ignored —
/// the dashboard only needs the sample values.
fn parse_openmetrics(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Strip an exemplar suffix: `name{...} 3 # {job_id="7"} 900`.
        let line = match line.find(" # ") {
            Some(i) => &line[..i],
            None => line,
        };
        let (head, rest) = match line.find('{') {
            Some(i) => {
                let name = &line[..i];
                let Some(close) = line[i..].find('}') else {
                    continue;
                };
                (name, (&line[i + 1..i + close], &line[i + close + 1..]))
            }
            None => match line.split_once(' ') {
                Some((name, v)) => (name, ("", v)),
                None => continue,
            },
        };
        let (label_str, value_str) = rest;
        let Ok(value) = value_str.trim().split_whitespace().next().unwrap_or("").parse() else {
            continue;
        };
        let mut labels = Vec::new();
        for pair in label_str.split(',').filter(|p| !p.is_empty()) {
            if let Some((k, v)) = pair.split_once('=') {
                labels.push((k.trim().to_string(), v.trim().trim_matches('"').to_string()));
            }
        }
        out.push(Sample {
            name: head.to_string(),
            labels,
            value,
        });
    }
    out
}

/// Scrape `addr` (host:port) with a minimal HTTP/1.0 GET and return the
/// response body. The machine's telemetry server answers any request
/// with the full exposition.
fn scrape(addr: &str) -> std::io::Result<String> {
    let mut s = std::net::TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(2)))?;
    s.write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)?;
    Ok(match buf.find("\r\n\r\n") {
        Some(i) => buf[i + 4..].to_string(),
        None => buf,
    })
}

/// One rendered dashboard frame.
fn render_frame(addr: &str, status: &StatusReply, metrics: Option<&[Sample]>) -> String {
    let mut out = String::new();
    let telemetry = status.telemetry.as_deref().unwrap_or("off");
    out.push_str(&format!("pisces top — {addr} · telemetry {telemetry}\n"));
    out.push_str(&format!(
        "jobs: queued {} · submitted {} · finished {} ({} failed) · rejected {} · reboots {} · draining {}\n",
        status.queued,
        status.submitted,
        status.finished,
        status.failed,
        status.rejected,
        status.reboots,
        if status.draining { "yes" } else { "no" },
    ));
    match &status.running {
        Some((tenant, job)) => {
            out.push_str(&format!("running: job {job} (tenant {tenant})\n"))
        }
        None => out.push_str("running: idle\n"),
    }

    // Burn rates keyed (tenant, slo) -> (short, long), from the scrape.
    let mut burns: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();
    let mut breaches: BTreeMap<String, f64> = BTreeMap::new();
    if let Some(samples) = metrics {
        for s in samples {
            if s.name == "pisces_slo_burn_rate" {
                if let (Some(tenant), Some(slo), Some(window)) =
                    (s.label("tenant"), s.label("slo"), s.label("window"))
                {
                    let e = burns
                        .entry((tenant.to_string(), slo.to_string()))
                        .or_insert((0.0, 0.0));
                    match window {
                        "short" => e.0 = s.value,
                        _ => e.1 = s.value,
                    }
                }
            } else if s.name == "pisces_slo_breaches_total" {
                if let Some(tenant) = s.label("tenant") {
                    *breaches.entry(tenant.to_string()).or_insert(0.0) += s.value;
                }
            }
        }
    }

    out.push_str(&format!(
        "\n{:<12} {:>6} {:>6} {:>7} {:>7} {:<16} {}\n",
        "TENANT", "WEIGHT", "QUEUED", "P50ms", "P99ms", "WAITS(ms)", "BURN short/long"
    ));
    for t in &status.tenants {
        let waits = if t.waits_ms.is_empty() {
            "-".to_string()
        } else {
            t.waits_ms
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut burn_col = String::new();
        for ((tenant, slo), (short, long)) in &burns {
            if tenant == &t.tenant {
                let mark = if *short > 1.0 && *long > 1.0 { " !" } else { "" };
                burn_col.push_str(&format!("{slo} {short:.2}/{long:.2}{mark}  "));
            }
        }
        if let Some(n) = breaches.get(&t.tenant) {
            if *n > 0.0 {
                burn_col.push_str(&format!("[{n:.0} breach(es)]"));
            }
        }
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>7} {:>7} {:<16} {}\n",
            t.tenant,
            t.weight,
            t.queued,
            t.submit_p50_ms,
            t.submit_p99_ms,
            waits,
            burn_col.trim_end(),
        ));
    }

    // Per-PE load bars: each PE's share of total machine ticks.
    if let Some(samples) = metrics {
        let pes: Vec<(&Sample, f64)> = samples
            .iter()
            .filter(|s| s.name == "pisces_pe_ticks")
            .map(|s| (s, s.value))
            .collect();
        let total: f64 = pes.iter().map(|(_, v)| v).sum();
        if total > 0.0 {
            out.push_str("\nPE load (share of machine ticks)\n");
            for (s, ticks) in &pes {
                let share = ticks / total;
                let width = 28usize;
                let fill = ((share * width as f64).round() as usize).min(width);
                out.push_str(&format!(
                    "  PE{:<3} [{}{}] {:>3.0}%\n",
                    s.label("pe").unwrap_or("?"),
                    "#".repeat(fill),
                    "-".repeat(width - fill),
                    share * 100.0,
                ));
            }
        }
    } else {
        out.push_str("\n(telemetry endpoint off — run piscesd with --telemetry-port for burn rates and PE load)\n");
    }
    out
}

/// Entry point for `pisces top ...`; never returns.
pub fn run_top(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut interval_secs = 2u64;
    let mut once = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--addr needs a value");
                    std::process::exit(2);
                })
            }
            "--interval" => {
                interval_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--interval needs a number of seconds");
                        std::process::exit(2);
                    })
            }
            "--once" => once = true,
            _ => {
                eprintln!("usage: pisces top [--addr <a>] [--interval <s>] [--once]");
                std::process::exit(2);
            }
        }
    }
    loop {
        let status = match fetch_status(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pisces top: {e}");
                std::process::exit(4);
            }
        };
        let samples = status
            .telemetry
            .as_deref()
            .and_then(|t| scrape(t).ok())
            .map(|body| parse_openmetrics(&body));
        let frame = render_frame(&addr, &status, samples.as_deref());
        if once {
            print!("{frame}");
            std::process::exit(0);
        }
        // Clear screen + home, then the frame — classic top(1) refresh.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs(interval_secs.max(1)));
    }
}

fn fetch_status(addr: &str) -> Result<StatusReply, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    match client.request(&Request::Status) {
        Ok(Response::Status(s)) => Ok(s),
        Ok(other) => Err(format!("unexpected response to status: {other:?}")),
        Err(e) => Err(e.to_string()),
    }
}
