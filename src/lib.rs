//! # pisces — the PISCES 2 parallel programming environment, whole.
//!
//! Umbrella crate re-exporting every piece of the reproduction of
//! Pratt's *The PISCES 2 Parallel Programming Environment* (ICPP 1987):
//!
//! * [`pisces_substrate`] — the substrate layer: the [`Substrate`
//!   trait](pisces_substrate::Substrate) every simulated machine
//!   implements, plus the shared PE/clock/memory building blocks;
//! * [`flex32`] — the simulated FLEX/32 multicomputer (the historical
//!   "actual machine", and the default substrate);
//! * [`pisces_core`] — the PISCES 2 virtual machine and run-time library;
//! * [`pisces_config`] — the configuration environment (mappings, saved
//!   configurations, MMOS load files);
//! * [`pisces_exec`] — the execution environment (run-control menu,
//!   Figure-1 renderer, off-line trace analysis);
//! * [`pisces_fortran`] — Pisces Fortran (preprocessor and interpreter);
//! * [`pisces_server`] — the machine as a persistent multi-tenant
//!   service (`piscesd` daemon, wire protocol, `pisces submit` client);
//! * [`pisces3_hypercube`] — the PISCES 3 preview substrate (hypercube
//!   with parallel I/O, the paper's stated next step).
//!
//! The `examples/` directory of this package holds the runnable
//! demonstrations; `tests/` holds the cross-crate integration and
//! property tests. Start with `examples/quickstart.rs` or the README.

pub use flex32;
pub use pisces_substrate;
pub use pisces3_hypercube;
pub use pisces_config;
pub use pisces_core;
pub use pisces_exec;
pub use pisces_fortran;
pub use pisces_server;

/// The paper this repository reproduces.
pub const PAPER: &str =
    "Terrence W. Pratt, The PISCES 2 Parallel Programming Environment, ICPP 1987";

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compose() {
        // One expression touching every crate through the umbrella.
        let sub: std::sync::Arc<dyn pisces_substrate::Substrate> = flex32::Flex32::new_shared();
        let p = pisces_core::Pisces::boot_on(sub, pisces_core::MachineConfig::simple(1, 2))
            .expect("boot");
        assert!(pisces_exec::figure1::render(&p).contains("CLUSTER 1"));
        assert!(pisces_fortran::FortranProgram::parse("TASK T\nX = 1\nEND TASK\n").is_ok());
        p.shutdown();
        assert!(super::PAPER.contains("1987"));
    }
}
