//! Property tests of the hypercube routing and striped I/O.

use pisces3_hypercube::{Hypercube, StripedFile};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    /// E-cube routes are valid paths: consecutive nodes differ in exactly
    /// one bit, length = Hamming distance + 1, endpoints correct, and the
    /// dimensions are corrected in ascending order (the deadlock-freedom
    /// property).
    #[test]
    fn ecube_routes_are_valid(dim in 1u32..=8, a in 0usize..256, b in 0usize..256) {
        let cube = Hypercube::new(dim);
        let n = cube.len();
        let (a, b) = (a % n, b % n);
        let path = cube.route(a, b);
        prop_assert_eq!(path[0], a);
        prop_assert_eq!(*path.last().unwrap(), b);
        prop_assert_eq!(path.len() as u32, cube.distance(a, b) + 1);
        let mut last_dim = None;
        for w in path.windows(2) {
            let diff = w[0] ^ w[1];
            prop_assert_eq!(diff.count_ones(), 1, "one link per hop");
            let d = diff.trailing_zeros();
            if let Some(prev) = last_dim {
                prop_assert!(d > prev, "dimension order ascending");
            }
            last_dim = Some(d);
        }
    }

    /// Send latency equals hops × (HOP + WORD·len) for any endpoints.
    #[test]
    fn latency_formula_holds(dim in 1u32..=6, a in 0usize..64, b in 0usize..64, len in 0usize..64) {
        let cube = Hypercube::new(dim);
        let n = cube.len();
        let (a, b) = (a % n, b % n);
        let lat = cube.send(a, b, "T", vec![0; len]);
        let hops = cube.distance(a, b) as u64;
        let expect = if hops == 0 {
            pisces3_hypercube::HOP_TICKS
        } else {
            hops * (pisces3_hypercube::HOP_TICKS + pisces3_hypercube::WORD_TICKS * len as u64)
        };
        prop_assert_eq!(lat, expect);
        // And the packet actually arrives.
        prop_assert!(cube.recv(b, Some("T"), Duration::from_secs(1)).is_some());
    }

    /// Striped files round-trip arbitrary sparse writes, any stripe
    /// count and block size.
    #[test]
    fn striped_file_roundtrip(
        stripes in 1usize..=8,
        block in 1usize..=64,
        writes in prop::collection::vec((0usize..2000, prop::collection::vec(any::<u64>(), 1..50)), 1..8),
    ) {
        let cube = Hypercube::new(4);
        let io: Vec<usize> = (0..stripes).map(|k| (k + 1) % 16).collect();
        let file = StripedFile::new(io, block);
        // Reference image of the file.
        let mut image = Vec::new();
        for (off, data) in &writes {
            if image.len() < off + data.len() {
                image.resize(off + data.len(), 0);
            }
            image[*off..off + data.len()].copy_from_slice(data);
            file.write(&cube, 0, *off, data);
        }
        prop_assert_eq!(file.len_words(), image.len());
        let (back, _) = file.read(&cube, 0, 0, image.len());
        prop_assert_eq!(back, image);
    }
}
