//! The cube: nodes, links, e-cube routing, message delivery.

use pisces_substrate::clock::TickClock;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A node number, `0..2^dim`.
pub type NodeId = usize;

/// A message in flight or at rest in a node's in-queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Originating node.
    pub from: NodeId,
    /// Message type tag (the Pisces message-type name).
    pub mtype: String,
    /// Payload words.
    pub words: Vec<u64>,
}

#[derive(Debug, Default)]
struct NodeQueue {
    q: Mutex<VecDeque<Packet>>,
    cv: Condvar,
}

/// One hypercube node: queue, clock, local-memory accounting.
#[derive(Debug)]
pub struct Node {
    /// The node's tick clock (unsynchronized across nodes, as on real
    /// cubes — and as on the FLEX).
    pub clock: TickClock,
    inq: NodeQueue,
    /// Local memory used, bytes (each node of an iPSC/1 had 512 KB).
    pub local_used: AtomicU64,
}

/// Per-link traffic counters, indexed `[node][dimension]`.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Packets that traversed the link.
    pub packets: AtomicU64,
    /// Payload words that traversed the link.
    pub words: AtomicU64,
}

/// The simulated hypercube.
pub struct Hypercube {
    dim: u32,
    nodes: Vec<Node>,
    links: Vec<Vec<LinkStats>>, // [node][dimension]
}

impl std::fmt::Debug for Hypercube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypercube")
            .field("dim", &self.dim)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl Hypercube {
    /// A cube of dimension `dim` (2^dim nodes); `dim` up to 10 (1024
    /// nodes, the NCube/ten's size).
    pub fn new(dim: u32) -> Self {
        assert!(dim <= 10, "cubes beyond 1024 nodes are out of scope");
        let n = 1usize << dim;
        Self {
            dim,
            nodes: (0..n)
                .map(|_| Node {
                    clock: TickClock::new(),
                    inq: NodeQueue::default(),
                    local_used: AtomicU64::new(0),
                })
                .collect(),
            links: (0..n)
                .map(|_| (0..dim).map(|_| LinkStats::default()).collect())
                .collect(),
        }
    }

    /// Cube dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A cube always has at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Hop distance between two nodes (Hamming distance).
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        ((a ^ b) as u64).count_ones()
    }

    /// The e-cube (dimension-ordered) route from `a` to `b`, inclusive of
    /// both endpoints. Deterministic and deadlock-free — the routing the
    /// iPSC used.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut path = vec![a];
        let mut cur = a;
        for k in 0..self.dim {
            let bit = 1usize << k;
            if (cur ^ b) & bit != 0 {
                cur ^= bit;
                path.push(cur);
            }
        }
        debug_assert_eq!(*path.last().unwrap(), b);
        path
    }

    /// Send a packet from `from` to `to`: charges store-and-forward costs
    /// along the e-cube route (every intermediate node spends
    /// `HOP_TICKS + WORD_TICKS·words` of its clock, matching a CPU-routed
    /// first-generation cube), bumps link counters, and enqueues at the
    /// destination. Returns the total virtual latency in ticks.
    pub fn send(&self, from: NodeId, to: NodeId, mtype: &str, words: Vec<u64>) -> u64 {
        self.send_inner(from, to, mtype, words, 1)
            .expect("copies=1 always delivers")
    }

    /// [`Hypercube::send`] under an armed fault injector: the plan may
    /// drop the packet on the link (returns `None` — the sender still paid
    /// the route cost up to the drop point), duplicate it (two copies
    /// enqueue at the destination), or delay it (extra latency charged to
    /// the sender's clock). With `inj == None` this is exactly `send`.
    pub fn send_with_faults(
        &self,
        inj: Option<&pisces_substrate::fault::FaultInjector>,
        from: NodeId,
        to: NodeId,
        mtype: &str,
        words: Vec<u64>,
    ) -> Option<u64> {
        use pisces_substrate::fault::MessageFault;
        match inj.and_then(|i| i.message_action()) {
            Some(MessageFault::Drop) => {
                // The packet dies partway: the sender forwarded it into
                // the first link before it vanished.
                let per_hop = crate::HOP_TICKS + crate::WORD_TICKS * words.len() as u64;
                self.nodes[from].clock.advance(per_hop);
                None
            }
            Some(MessageFault::Duplicate) => self.send_inner(from, to, mtype, words, 2),
            Some(MessageFault::Delay(extra)) => {
                self.send_inner(from, to, mtype, words, 1).map(|lat| {
                    self.nodes[from].clock.advance(extra);
                    lat + extra
                })
            }
            None => self.send_inner(from, to, mtype, words, 1),
        }
    }

    fn send_inner(
        &self,
        from: NodeId,
        to: NodeId,
        mtype: &str,
        words: Vec<u64>,
        copies: usize,
    ) -> Option<u64> {
        let path = self.route(from, to);
        let per_hop = crate::HOP_TICKS + crate::WORD_TICKS * words.len() as u64;
        let mut latency = 0;
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let dim_bit = (a ^ b).trailing_zeros() as usize;
            let stats = &self.links[a.min(b)][dim_bit];
            stats.packets.fetch_add(1, Ordering::Relaxed);
            stats.words.fetch_add(words.len() as u64, Ordering::Relaxed);
            // The forwarding node does the work.
            self.nodes[a].clock.advance(per_hop);
            latency += per_hop;
        }
        if path.len() == 1 {
            // Self-send still costs a kernel entry.
            self.nodes[from].clock.advance(crate::HOP_TICKS);
            latency = crate::HOP_TICKS;
        }
        let node = &self.nodes[to];
        {
            let mut q = node.inq.q.lock();
            for _ in 0..copies {
                q.push_back(Packet {
                    from,
                    mtype: mtype.to_string(),
                    words: words.clone(),
                });
            }
        }
        node.inq.cv.notify_all();
        Some(latency)
    }

    /// Receive the next packet at `node` matching `want` (None = any),
    /// blocking up to `timeout`. Charges the receive cost to the node.
    pub fn recv(&self, node: NodeId, want: Option<&str>, timeout: Duration) -> Option<Packet> {
        let deadline = Instant::now() + timeout;
        let nq = &self.nodes[node].inq;
        let mut q = nq.q.lock();
        loop {
            if let Some(pos) = q.iter().position(|p| want.is_none_or(|w| p.mtype == w)) {
                let p = q.remove(pos).expect("position valid");
                self.nodes[node]
                    .clock
                    .advance(crate::HOP_TICKS / 2 + crate::WORD_TICKS * p.words.len() as u64);
                return Some(p);
            }
            if nq.cv.wait_until(&mut q, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Count a `words`-word packet across every link of the e-cube route
    /// from `from` to `to`, without enqueuing anything. Used by the
    /// [`crate::machine::HypercubeMachine`] substrate adapter, where
    /// delivery itself is the PISCES runtime's business and the cube only
    /// accounts for the physical transport. Returns the hop count.
    pub fn count_route(&self, from: NodeId, to: NodeId, words: usize) -> u32 {
        let path = self.route(from, to);
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let dim_bit = (a ^ b).trailing_zeros() as usize;
            let stats = &self.links[a.min(b)][dim_bit];
            stats.packets.fetch_add(1, Ordering::Relaxed);
            stats.words.fetch_add(words as u64, Ordering::Relaxed);
        }
        (path.len() - 1) as u32
    }

    /// Snapshot of every link's counters as `(node, dimension, packets,
    /// words)`, ascending by node then dimension. The link connects
    /// `node` to `node ^ (1 << dimension)`; only the lower-numbered
    /// endpoint appears as `node`.
    pub fn link_snapshot(&self) -> Vec<(NodeId, usize, u64, u64)> {
        let mut out = Vec::new();
        for (node, dims) in self.links.iter().enumerate() {
            for (dim, stats) in dims.iter().enumerate() {
                let packets = stats.packets.load(Ordering::Relaxed);
                let words = stats.words.load(Ordering::Relaxed);
                if node & (1 << dim) == 0 {
                    out.push((node, dim, packets, words));
                }
            }
        }
        out
    }

    /// Messages waiting at a node.
    pub fn queued(&self, node: NodeId) -> usize {
        self.nodes[node].inq.q.lock().len()
    }

    /// Total packets that crossed any link (traffic snapshot).
    pub fn total_link_packets(&self) -> u64 {
        self.links
            .iter()
            .flatten()
            .map(|l| l.packets.load(Ordering::Relaxed))
            .sum()
    }

    /// Words that crossed the link between `a` and its neighbour across
    /// `dimension`.
    pub fn link_words(&self, a: NodeId, dimension: usize) -> u64 {
        self.links[a][dimension].words.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_sizes() {
        assert_eq!(Hypercube::new(0).len(), 1);
        assert_eq!(Hypercube::new(5).len(), 32);
        assert_eq!(Hypercube::new(10).len(), 1024);
    }

    #[test]
    fn distance_is_hamming() {
        let c = Hypercube::new(4);
        assert_eq!(c.distance(0b0000, 0b1111), 4);
        assert_eq!(c.distance(0b1010, 0b1010), 0);
        assert_eq!(c.distance(0b0001, 0b0010), 2);
    }

    #[test]
    fn ecube_route_is_dimension_ordered() {
        let c = Hypercube::new(4);
        assert_eq!(
            c.route(0b0000, 0b1011),
            vec![0b0000, 0b0001, 0b0011, 0b1011]
        );
        assert_eq!(c.route(5, 5), vec![5]);
        // Route length is always distance + 1.
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(c.route(a, b).len() as u32, c.distance(a, b) + 1);
            }
        }
    }

    #[test]
    fn send_recv_roundtrip() {
        let c = Hypercube::new(3);
        let lat = c.send(0, 7, "DATA", vec![1, 2, 3]);
        assert_eq!(lat, 3 * (crate::HOP_TICKS + 3 * crate::WORD_TICKS));
        let p = c.recv(7, Some("DATA"), Duration::from_secs(1)).unwrap();
        assert_eq!(p.from, 0);
        assert_eq!(p.words, vec![1, 2, 3]);
        assert_eq!(c.queued(7), 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let c = Hypercube::new(6);
        let near = c.send(0, 1, "X", vec![0; 8]);
        let far = c.send(0, 63, "X", vec![0; 8]);
        assert_eq!(far, 6 * near, "6 hops vs 1 hop");
    }

    #[test]
    fn intermediate_nodes_pay_for_forwarding() {
        let c = Hypercube::new(3);
        c.send(0b000, 0b011, "X", vec![0; 4]);
        // Route 000 → 001 → 011: nodes 0 and 1 forwarded, node 3 only
        // receives (its clock moves at recv time).
        assert!(c.node(0).clock.now() > 0);
        assert!(c.node(1).clock.now() > 0);
        assert_eq!(c.node(3).clock.now(), 0);
        assert_eq!(c.node(2).clock.now(), 0, "not on the e-cube route");
    }

    #[test]
    fn recv_filters_by_type_and_times_out() {
        let c = Hypercube::new(2);
        c.send(1, 2, "A", vec![]);
        c.send(3, 2, "B", vec![]);
        let b = c.recv(2, Some("B"), Duration::from_millis(100)).unwrap();
        assert_eq!(b.from, 3);
        assert!(c.recv(2, Some("C"), Duration::from_millis(30)).is_none());
        assert_eq!(c.queued(2), 1, "A still waiting");
    }

    #[test]
    fn link_traffic_is_counted() {
        let c = Hypercube::new(3);
        c.send(0, 1, "X", vec![0; 10]);
        c.send(0, 1, "X", vec![0; 10]);
        assert_eq!(c.link_words(0, 0), 20);
        assert_eq!(c.total_link_packets(), 2);
    }

    #[test]
    fn fault_plan_drops_and_duplicates_packets() {
        use pisces_substrate::fault::{FaultInjector, FaultPlan};
        let c = Hypercube::new(3);
        let inj = FaultInjector::new(FaultPlan::new(7).drop_message(1).duplicate_message(2));
        // Packet #1 dies on the link; the sender still paid for the hop.
        assert!(c.send_with_faults(Some(&inj), 0, 5, "A", vec![1]).is_none());
        assert_eq!(c.queued(5), 0);
        assert!(c.node(0).clock.now() > 0);
        // Packet #2 arrives twice.
        assert!(c.send_with_faults(Some(&inj), 0, 5, "B", vec![2]).is_some());
        assert_eq!(c.queued(5), 2);
        // Packet #3 is untouched.
        assert!(c.send_with_faults(Some(&inj), 0, 5, "C", vec![3]).is_some());
        assert_eq!(c.queued(5), 3);
    }

    #[test]
    fn delay_fault_charges_extra_latency() {
        use pisces_substrate::fault::{FaultInjector, FaultPlan};
        let c = Hypercube::new(3);
        let clean = c.send(0, 7, "X", vec![0; 4]);
        let inj = FaultInjector::new(FaultPlan::new(1).delay_message(1, 500));
        let slow = c
            .send_with_faults(Some(&inj), 0, 7, "X", vec![0; 4])
            .unwrap();
        assert_eq!(slow, clean + 500);
        assert_eq!(c.queued(7), 2);
    }

    #[test]
    fn no_injector_matches_plain_send() {
        let c = Hypercube::new(4);
        let a = c.send(2, 9, "X", vec![1, 2]);
        let b = c.send_with_faults(None, 2, 9, "X", vec![1, 2]).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.queued(9), 2);
    }

    #[test]
    fn concurrent_senders_deliver_everything() {
        let c = std::sync::Arc::new(Hypercube::new(4));
        let mut handles = Vec::new();
        for s in 0..8usize {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..50u64 {
                    c.send(s, 15, "N", vec![s as u64, k]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while c.recv(15, Some("N"), Duration::from_millis(100)).is_some() {
            got += 1;
        }
        assert_eq!(got, 400);
    }
}
