//! Parallel I/O — the PISCES 3 emphasis.
//!
//! A subset of cube nodes are **I/O nodes** with attached disks. A
//! [`StripedFile`] is divided into fixed-size blocks dealt round-robin
//! across the I/O nodes. A read or write of a window of the file
//! therefore engages every stripe *concurrently*: in virtual time the
//! cost is the **maximum** over I/O nodes of (disk transfer for its
//! blocks + link transfer to the requester), rather than the sum a
//! single-disk file pays. The `hypercube_io` experiment measures exactly
//! that crossover.
//!
//! The stripes store word data in per-node disk images; the compute node
//! addresses the file by word range, the same "window on an array on
//! secondary storage" abstraction PISCES 2's file controller gives
//! (Section 8), now served by many controllers at once.

use crate::cube::{Hypercube, NodeId};
use crate::{DISK_BLOCK_TICKS, DISK_WORD_TICKS, HOP_TICKS, WORD_TICKS};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A file striped in `block_words`-sized blocks across I/O nodes.
pub struct StripedFile {
    io_nodes: Vec<NodeId>,
    block_words: usize,
    /// Per-I/O-node disk image: block index → block data.
    disks: Vec<RwLock<BTreeMap<usize, Vec<u64>>>>,
    len_words: RwLock<usize>,
}

impl StripedFile {
    /// An empty file striped across `io_nodes` (at least one).
    pub fn new(io_nodes: Vec<NodeId>, block_words: usize) -> Self {
        assert!(!io_nodes.is_empty(), "a file needs at least one I/O node");
        assert!(block_words > 0);
        let n = io_nodes.len();
        Self {
            io_nodes,
            block_words,
            disks: (0..n).map(|_| RwLock::new(BTreeMap::new())).collect(),
            len_words: RwLock::new(0),
        }
    }

    /// The I/O nodes serving this file.
    pub fn io_nodes(&self) -> &[NodeId] {
        &self.io_nodes
    }

    /// Current length in words.
    pub fn len_words(&self) -> usize {
        *self.len_words.read()
    }

    /// A zero-length file holds no words.
    pub fn is_empty(&self) -> bool {
        self.len_words() == 0
    }

    /// Which stripe (index into `io_nodes`) owns a block.
    fn stripe_of(&self, block: usize) -> usize {
        block % self.io_nodes.len()
    }

    /// Write `data` at word offset `offset` from `requester`, extending
    /// the file as needed. Returns the virtual completion time in ticks:
    /// the max over engaged I/O nodes of their (routing + disk) work —
    /// the stripes run in parallel.
    pub fn write(&self, cube: &Hypercube, requester: NodeId, offset: usize, data: &[u64]) -> u64 {
        let mut per_node_ticks: BTreeMap<usize, u64> = BTreeMap::new();
        for (k, &w) in data.iter().enumerate() {
            let word = offset + k;
            let block = word / self.block_words;
            let stripe = self.stripe_of(block);
            let mut disk = self.disks[stripe].write();
            let entry = disk
                .entry(block)
                .or_insert_with(|| vec![0; self.block_words]);
            entry[word % self.block_words] = w;
            *per_node_ticks.entry(stripe).or_insert(0) += DISK_WORD_TICKS;
        }
        {
            let mut len = self.len_words.write();
            *len = (*len).max(offset + data.len());
        }
        // Each engaged I/O node pays its disk time + one block-burst of
        // link traffic from the requester; they proceed concurrently.
        let mut completion = 0;
        for (stripe, disk_ticks) in per_node_ticks {
            let io = self.io_nodes[stripe];
            let hops = cube.distance(requester, io).max(1) as u64;
            let words = (data.len() / self.io_nodes.len().max(1)) as u64 + 1;
            let link = hops * (HOP_TICKS + WORD_TICKS * words);
            let total = disk_ticks + DISK_BLOCK_TICKS + link;
            cube.node(io).clock.advance(disk_ticks + DISK_BLOCK_TICKS);
            completion = completion.max(total);
        }
        cube.node(requester).clock.advance(completion);
        completion
    }

    /// Read `words` words at `offset` into a vector from `requester`.
    /// Returns `(data, completion ticks)`; unwritten words read as zero.
    pub fn read(
        &self,
        cube: &Hypercube,
        requester: NodeId,
        offset: usize,
        words: usize,
    ) -> (Vec<u64>, u64) {
        let mut out = vec![0u64; words];
        let mut per_node_ticks: BTreeMap<usize, u64> = BTreeMap::new();
        for (k, slot) in out.iter_mut().enumerate() {
            let word = offset + k;
            let block = word / self.block_words;
            let stripe = self.stripe_of(block);
            if let Some(b) = self.disks[stripe].read().get(&block) {
                *slot = b[word % self.block_words];
            }
            *per_node_ticks.entry(stripe).or_insert(0) += DISK_WORD_TICKS;
        }
        let mut completion = 0;
        for (stripe, disk_ticks) in per_node_ticks {
            let io = self.io_nodes[stripe];
            let hops = cube.distance(requester, io).max(1) as u64;
            let node_words = (words / self.io_nodes.len().max(1)) as u64 + 1;
            let link = hops * (HOP_TICKS + WORD_TICKS * node_words);
            let total = disk_ticks + DISK_BLOCK_TICKS + link;
            cube.node(io).clock.advance(disk_ticks + DISK_BLOCK_TICKS);
            completion = completion.max(total);
        }
        cube.node(requester).clock.advance(completion);
        (out, completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Hypercube {
        Hypercube::new(4)
    }

    #[test]
    fn roundtrip_across_stripes() {
        let c = cube();
        let f = StripedFile::new(vec![1, 2, 4, 8], 16);
        let data: Vec<u64> = (0..200).collect();
        f.write(&c, 0, 0, &data);
        assert_eq!(f.len_words(), 200);
        let (back, _) = f.read(&c, 0, 0, 200);
        assert_eq!(back, data);
    }

    #[test]
    fn partial_and_offset_access() {
        let c = cube();
        let f = StripedFile::new(vec![3, 5], 8);
        f.write(&c, 0, 10, &[7, 8, 9]);
        let (back, _) = f.read(&c, 0, 8, 7);
        assert_eq!(back, vec![0, 0, 7, 8, 9, 0, 0]);
        assert_eq!(f.len_words(), 13);
    }

    #[test]
    fn blocks_deal_round_robin() {
        let c = cube();
        let f = StripedFile::new(vec![1, 2, 4], 4);
        // 12 words = blocks 0,1,2 → stripes 0,1,2.
        f.write(&c, 0, 0, &(0..12).collect::<Vec<_>>());
        assert_eq!(f.disks[0].read().len(), 1);
        assert_eq!(f.disks[1].read().len(), 1);
        assert_eq!(f.disks[2].read().len(), 1);
        assert!(f.disks[0].read().contains_key(&0));
        assert!(f.disks[1].read().contains_key(&1));
        assert!(f.disks[2].read().contains_key(&2));
    }

    #[test]
    fn striping_beats_single_disk_in_virtual_time() {
        // The PISCES 3 claim in one assertion: the same large read
        // completes faster from 8 stripes than from 1.
        let words = 8 * 1024;
        let data: Vec<u64> = (0..words as u64).collect();

        let c1 = cube();
        let single = StripedFile::new(vec![1], 64);
        single.write(&c1, 0, 0, &data);
        let (_, t_single) = single.read(&c1, 0, 0, words);

        let c8 = cube();
        let striped = StripedFile::new(vec![1, 2, 4, 8, 3, 5, 9, 6], 64);
        striped.write(&c8, 0, 0, &data);
        let (_, t_striped) = striped.read(&c8, 0, 0, words);

        assert!(
            t_striped * 4 < t_single,
            "8 stripes should be ≳4× faster: single {t_single}, striped {t_striped}"
        );
    }

    #[test]
    fn io_nodes_pay_disk_time() {
        let c = cube();
        let f = StripedFile::new(vec![6], 8);
        f.write(&c, 0, 0, &[1; 32]);
        assert!(c.node(6).clock.now() >= 32 * DISK_WORD_TICKS);
        assert!(c.node(0).clock.now() > 0, "requester waits for completion");
    }
}

/// A fixed-record keyed store over a striped file — the other half of
/// the PISCES 3 brief, "data base access". Records are `record_words`
/// wide and addressed by a `u64` key hashed to a bucket region; a full
/// scan engages every stripe in parallel (the database analogue of the
/// striped read).
pub struct RecordStore {
    file: StripedFile,
    record_words: usize,
    buckets: usize,
    slots_per_bucket: usize,
}

/// Errors from the record store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The hash bucket for this key is full (open addressing exhausted).
    BucketFull(u64),
    /// A value wider than `record_words - 2` was supplied.
    ValueTooWide {
        /// Words supplied.
        got: usize,
        /// Words available per record (after key + tag).
        max: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BucketFull(k) => write!(f, "bucket full for key {k}"),
            StoreError::ValueTooWide { got, max } => {
                write!(f, "value of {got} words exceeds record payload {max}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

const TAG_EMPTY: u64 = 0;
const TAG_LIVE: u64 = 1;

impl RecordStore {
    /// A store striped across `io_nodes`: `buckets` hash buckets of
    /// `slots_per_bucket` records, each record `2 + value_words` wide
    /// (tag word + key word + payload).
    pub fn new(
        io_nodes: Vec<NodeId>,
        buckets: usize,
        slots_per_bucket: usize,
        value_words: usize,
    ) -> Self {
        assert!(buckets > 0 && slots_per_bucket > 0 && value_words > 0);
        let record_words = 2 + value_words;
        // Block size = one bucket, so a bucket lives on one stripe and
        // one probe is one disk access.
        let file = StripedFile::new(io_nodes, record_words * slots_per_bucket);
        Self {
            file,
            record_words,
            buckets,
            slots_per_bucket,
        }
    }

    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.buckets
    }

    fn slot_offset(&self, bucket: usize, slot: usize) -> usize {
        (bucket * self.slots_per_bucket + slot) * self.record_words
    }

    /// Insert or update a record. Returns the virtual completion ticks.
    pub fn put(
        &self,
        cube: &Hypercube,
        requester: NodeId,
        key: u64,
        value: &[u64],
    ) -> Result<u64, StoreError> {
        let max = self.record_words - 2;
        if value.len() > max {
            return Err(StoreError::ValueTooWide {
                got: value.len(),
                max,
            });
        }
        let bucket = self.bucket_of(key);
        let mut ticks = 0;
        for slot in 0..self.slots_per_bucket {
            let off = self.slot_offset(bucket, slot);
            let (hdr, t) = self.file.read(cube, requester, off, 2);
            ticks += t;
            if hdr[0] == TAG_EMPTY || (hdr[0] == TAG_LIVE && hdr[1] == key) {
                let mut rec = vec![TAG_LIVE, key];
                rec.extend_from_slice(value);
                rec.resize(self.record_words, 0);
                ticks += self.file.write(cube, requester, off, &rec);
                return Ok(ticks);
            }
        }
        Err(StoreError::BucketFull(key))
    }

    /// Look up a record; `None` if absent. Returns the payload and the
    /// virtual ticks spent.
    pub fn get(&self, cube: &Hypercube, requester: NodeId, key: u64) -> (Option<Vec<u64>>, u64) {
        let bucket = self.bucket_of(key);
        let mut ticks = 0;
        for slot in 0..self.slots_per_bucket {
            let off = self.slot_offset(bucket, slot);
            let (rec, t) = self.file.read(cube, requester, off, self.record_words);
            ticks += t;
            if rec[0] == TAG_LIVE && rec[1] == key {
                return (Some(rec[2..].to_vec()), ticks);
            }
            if rec[0] == TAG_EMPTY {
                break;
            }
        }
        (None, ticks)
    }

    /// Scan every live record, applying `f(key, payload)`. The scan reads
    /// the whole store through the striped file, so in virtual time the
    /// stripes are walked concurrently — the parallel table scan of the
    /// PISCES 3 brief. Returns (records visited, ticks).
    pub fn scan(
        &self,
        cube: &Hypercube,
        requester: NodeId,
        mut f: impl FnMut(u64, &[u64]),
    ) -> (usize, u64) {
        let total_words = self.buckets * self.slots_per_bucket * self.record_words;
        let (image, ticks) = self.file.read(cube, requester, 0, total_words);
        let mut live = 0;
        for rec in image.chunks_exact(self.record_words) {
            if rec[0] == TAG_LIVE {
                live += 1;
                f(rec[1], &rec[2..]);
            }
        }
        (live, ticks)
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;

    fn cube() -> Hypercube {
        Hypercube::new(4)
    }

    fn store(stripes: usize) -> RecordStore {
        let io: Vec<usize> = (0..stripes).map(|k| 2 * k + 1).collect();
        RecordStore::new(io, 64, 4, 6)
    }

    #[test]
    fn put_get_roundtrip() {
        let c = cube();
        let s = store(4);
        s.put(&c, 0, 42, &[1, 2, 3]).unwrap();
        s.put(&c, 0, 43, &[9]).unwrap();
        let (v, _) = s.get(&c, 0, 42);
        assert_eq!(v.unwrap()[..3], [1, 2, 3]);
        let (v, _) = s.get(&c, 0, 43);
        assert_eq!(v.unwrap()[0], 9);
        assert_eq!(s.get(&c, 0, 999).0, None);
    }

    #[test]
    fn update_in_place() {
        let c = cube();
        let s = store(2);
        s.put(&c, 0, 7, &[1]).unwrap();
        s.put(&c, 0, 7, &[2]).unwrap();
        let (v, _) = s.get(&c, 0, 7);
        assert_eq!(v.unwrap()[0], 2);
        let (n, _) = s.scan(&c, 0, |_, _| {});
        assert_eq!(n, 1, "update does not duplicate");
    }

    #[test]
    fn value_too_wide_rejected() {
        let c = cube();
        let s = store(2);
        assert_eq!(
            s.put(&c, 0, 1, &[0; 7]).unwrap_err(),
            StoreError::ValueTooWide { got: 7, max: 6 }
        );
    }

    #[test]
    fn bucket_overflow_reported() {
        let c = cube();
        // One bucket, two slots: the third colliding key must fail.
        let s = RecordStore::new(vec![1], 1, 2, 2);
        s.put(&c, 0, 1, &[0]).unwrap();
        s.put(&c, 0, 2, &[0]).unwrap();
        assert!(matches!(
            s.put(&c, 0, 3, &[0]),
            Err(StoreError::BucketFull(3))
        ));
    }

    #[test]
    fn scan_visits_all_and_parallelizes() {
        let n_records = 100u64;
        let mut seen_single = std::collections::BTreeSet::new();
        let mut seen_striped = std::collections::BTreeSet::new();

        let c1 = cube();
        let single = store(1);
        for k in 0..n_records {
            single.put(&c1, 0, k, &[k * 10]).unwrap();
        }
        let (live1, t_single) = single.scan(&c1, 0, |k, v| {
            assert_eq!(v[0], k * 10);
            seen_single.insert(k);
        });

        let c8 = cube();
        let striped = store(8);
        for k in 0..n_records {
            striped.put(&c8, 0, k, &[k * 10]).unwrap();
        }
        let (live8, t_striped) = striped.scan(&c8, 0, |k, _| {
            seen_striped.insert(k);
        });

        assert_eq!(live1 as u64, n_records);
        assert_eq!(live8 as u64, n_records);
        assert_eq!(seen_single, seen_striped);
        assert!(
            t_striped * 3 < t_single,
            "8-stripe scan much faster: {t_striped} vs {t_single}"
        );
    }
}
