//! # pisces3-hypercube — the PISCES 3 preview substrate
//!
//! "A PISCES 3 environment is planned for a hypercube machine such as the
//! Intel iPSC or the NCube/ten. The PISCES 3 system will emphasize
//! parallel I/O and data base access." (paper, Section 1)
//!
//! This crate is that planned next step, built to the same standard as
//! the `flex32` substrate: a software model of an iPSC/NCube-class
//! hypercube —
//!
//! * 2^d nodes, each with local memory only (no shared memory at all —
//!   the architectural opposite of the FLEX/32, which is exactly why the
//!   paper's portable-virtual-machine argument needs it);
//! * bidirectional links along the cube edges, messages routed e-cube
//!   (dimension-ordered) with store-and-forward hop costs charged to
//!   every intermediate node, as on the iPSC/1;
//! * per-node tick clocks (reusing the `pisces-substrate` clock model) and link
//!   traffic counters;
//! * **parallel I/O**: a subset of nodes are I/O nodes with attached
//!   disks; [`pio`] stripes files across them in blocks and serves reads
//!   and writes from all stripes concurrently — the PISCES 3 emphasis.
//!
//! Since the substrate refactor this crate is a first-class PISCES
//! backend: [`machine::HypercubeMachine`] implements
//! [`pisces_substrate::Substrate`], so the full virtual machine of the
//! paper (clusters, slots, forces, windows) runs on a cube unmodified —
//! with every message additionally paying the e-cube store-and-forward
//! route cost and showing up in per-link traffic counters. The raw
//! [`cube`] model and [`pio`] striping remain available directly.

pub mod cube;
pub mod machine;
pub mod pio;

pub use cube::{Hypercube, NodeId, Packet};
pub use machine::HypercubeMachine;
pub use pio::StripedFile;

/// Per-hop fixed routing cost in ticks (kernel entry + link setup on
/// each store-and-forward node).
pub const HOP_TICKS: u64 = 50;

/// Per-64-bit-word transfer cost per hop, in ticks.
pub const WORD_TICKS: u64 = 2;

/// Disk block transfer cost per 64-bit word, in ticks (disks are an
/// order of magnitude slower than links — the reason striping pays).
pub const DISK_WORD_TICKS: u64 = 20;

/// Fixed disk access cost per block, in ticks (seek + controller).
pub const DISK_BLOCK_TICKS: u64 = 400;
