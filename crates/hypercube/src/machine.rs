//! The hypercube as a PISCES substrate.
//!
//! [`HypercubeMachine`] makes a 2^d-node cube a first-class backend for
//! the PISCES virtual machine: it embeds the machine-neutral
//! [`MachineCore`] (PEs, clocks, arena, pool, faults) plus a [`Hypercube`]
//! for the machine's *shape* — e-cube routing, per-link traffic counters,
//! and store-and-forward hop costs.
//!
//! PE numbering: PISCES PEs are 1-based, cube nodes 0-based; PE *n* is
//! node *n − 1*. Every node is a task PE (`first_task_pe == 1`) — a cube
//! has no Unix front-end processors; host services live off-cube, which
//! the model represents by letting PE 1 own the file system like any
//! other PE.
//!
//! Cost model: the PISCES runtime charges its uniform send/accept costs
//! on every substrate; [`Substrate::charge_link`] adds the cube's
//! transport surcharge on top. A `words`-word message from PE *a* to PE
//! *b* crosses `hamming(a−1, b−1)` links, and **every forwarding node**
//! (the sender and each intermediate node, store-and-forward as on the
//! iPSC/1) pays `HOP_TICKS + WORD_TICKS·words` of its own clock. Charges
//! go through [`MachineCore::tick`] so slow-PE fault factors and
//! tick-triggered fault plans apply to routed traffic exactly as they do
//! to compute.
//!
//! The shared-memory arena is retained as the model of aggregate kernel
//! message/window buffer space (see [`pisces_substrate::Topology`]);
//! its capacity scales with the node count.

use crate::cube::Hypercube;
use pisces_substrate::pe::PeId;
use pisces_substrate::{
    LinkCost, LinkRecord, LinkTraffic, MachineCore, Substrate, Topology,
};
use std::sync::Arc;

/// Local memory per node: 512 KB, the iPSC/1 figure.
pub const NODE_LOCAL_MEM_BYTES: usize = 512 * 1024;

/// Per-node share of the kernel buffer arena.
pub const NODE_ARENA_BYTES: usize = 128 * 1024;

/// A 2^d-node hypercube implementing [`Substrate`].
#[derive(Debug)]
pub struct HypercubeMachine {
    core: MachineCore,
    cube: Hypercube,
}

impl HypercubeMachine {
    /// A cube of dimension `dim` (2^dim nodes, `dim ≤ 10`).
    pub fn new(dim: u32) -> Self {
        Self {
            core: MachineCore::new(Self::topology_for(dim)),
            cube: Hypercube::new(dim),
        }
    }

    /// The shape of a dimension-`dim` cube, without building it
    /// (configuration validation runs against this).
    pub fn topology_for(dim: u32) -> Topology {
        assert!(dim >= 1 && dim <= 10, "cube dimension must be 1..=10");
        let n = 1usize << dim;
        Topology {
            name: "hypercube",
            num_pes: n as u16,
            first_task_pe: 1,
            local_mem_bytes: NODE_LOCAL_MEM_BYTES,
            shared_mem_bytes: NODE_ARENA_BYTES * n,
        }
    }

    /// A shared handle to a fresh cube of dimension `dim`.
    pub fn new_shared(dim: u32) -> Arc<Self> {
        Arc::new(Self::new(dim))
    }

    /// Cube dimension.
    pub fn dim(&self) -> u32 {
        self.cube.dim()
    }

    /// The underlying cube model (routing, raw link counters).
    pub fn cube(&self) -> &Hypercube {
        &self.cube
    }
}

impl Substrate for HypercubeMachine {
    fn machine(&self) -> &MachineCore {
        &self.core
    }

    fn link_cost(&self, src: PeId, dst: PeId) -> LinkCost {
        let a = (src.number() - 1) as usize;
        let b = (dst.number() - 1) as usize;
        LinkCost {
            hops: self.cube.distance(a, b),
            hop_ticks: crate::HOP_TICKS,
            word_ticks: crate::WORD_TICKS,
        }
    }

    fn charge_link(&self, src: PeId, dst: PeId, words: usize) -> u32 {
        let a = (src.number() - 1) as usize;
        let b = (dst.number() - 1) as usize;
        if a == b {
            return 0;
        }
        let per_hop = crate::HOP_TICKS + crate::WORD_TICKS * words as u64;
        let path = self.cube.route(a, b);
        // Every forwarding node — sender plus intermediates, not the
        // destination — does the store-and-forward work on its own clock.
        for &node in &path[..path.len() - 1] {
            let pe = self
                .core
                .pe_n((node + 1) as u16)
                .expect("route stays on the cube");
            self.core.tick(pe.id(), per_hop);
        }
        self.cube.count_route(a, b, words)
    }

    fn link_stats(&self) -> Option<LinkTraffic> {
        let mut links = Vec::new();
        for (node, dim, packets, words) in self.cube.link_snapshot() {
            if packets == 0 && words == 0 {
                continue;
            }
            links.push(LinkRecord {
                src: (node + 1) as u16,
                dst: ((node ^ (1 << dim)) + 1) as u16,
                packets,
                words,
            });
        }
        links.sort_by_key(|l| (l.src, l.dst));
        Some(LinkTraffic { links })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim7_machine_has_128_task_pes() {
        let m = HypercubeMachine::new(7);
        assert_eq!(m.pes().len(), 128);
        assert_eq!(m.topology().task_pes(), 128, "every node hosts tasks");
        assert_eq!(m.topology().first_task_pe, 1);
        assert_eq!(m.name(), "hypercube");
    }

    #[test]
    fn charge_link_bills_every_forwarding_node() {
        let m = HypercubeMachine::new(3);
        // PE 1 = node 0, PE 4 = node 3: route 000 → 001 → 011, so nodes
        // 0 and 1 forward; node 3 pays nothing here.
        let src = m.pe_n(1).unwrap().id();
        let dst = m.pe_n(4).unwrap().id();
        let hops = m.charge_link(src, dst, 4);
        assert_eq!(hops, 2);
        let per_hop = crate::HOP_TICKS + 4 * crate::WORD_TICKS;
        assert_eq!(m.pe_n(1).unwrap().clock.now(), per_hop);
        assert_eq!(m.pe_n(2).unwrap().clock.now(), per_hop);
        assert_eq!(m.pe_n(4).unwrap().clock.now(), 0);
        assert_eq!(m.pe_n(3).unwrap().clock.now(), 0, "not on the route");
    }

    #[test]
    fn self_send_is_free_of_hops() {
        let m = HypercubeMachine::new(3);
        let pe = m.pe_n(5).unwrap().id();
        assert_eq!(m.charge_link(pe, pe, 100), 0);
        assert_eq!(m.pe(pe).clock.now(), 0);
    }

    #[test]
    fn link_cost_reports_hamming_distance() {
        let m = HypercubeMachine::new(4);
        let a = m.pe_n(1).unwrap().id(); // node 0b0000
        let b = m.pe_n(16).unwrap().id(); // node 0b1111
        let c = m.link_cost(a, b);
        assert_eq!(c.hops, 4);
        assert_eq!(c.hop_ticks, crate::HOP_TICKS);
        assert_eq!(c.word_ticks, crate::WORD_TICKS);
        assert_eq!(c.ticks_for(8), 4 * (crate::HOP_TICKS + 8 * crate::WORD_TICKS));
    }

    #[test]
    fn link_stats_expose_per_link_traffic() {
        let m = HypercubeMachine::new(3);
        let src = m.pe_n(1).unwrap().id();
        let dst = m.pe_n(2).unwrap().id(); // one hop across dimension 0
        m.charge_link(src, dst, 10);
        m.charge_link(src, dst, 10);
        let stats = m.link_stats().unwrap();
        assert_eq!(stats.links.len(), 1);
        let l = &stats.links[0];
        assert_eq!((l.src, l.dst), (1, 2));
        assert_eq!(l.packets, 2);
        assert_eq!(l.words, 20);
        assert_eq!(stats.total_packets(), 2);
    }

    #[test]
    fn slow_fault_applies_to_forwarding_charges() {
        use pisces_substrate::FaultPlan;
        let m = HypercubeMachine::new(2);
        // Slow PE 1 (node 0) by 2× from tick 0 on.
        m.arm_faults(FaultPlan::new(1).slow_pe(1, 0, 2));
        let src = m.pe_n(1).unwrap().id();
        m.tick(src, 1); // fire the trigger
        let before = m.pe(src).clock.now();
        let dst = m.pe_n(2).unwrap().id();
        m.charge_link(src, dst, 0);
        let charged = m.pe(src).clock.now() - before;
        assert_eq!(charged, 2 * crate::HOP_TICKS, "hop cost is fault-scaled");
    }

    #[test]
    fn trait_object_boots_a_256_node_cube() {
        let m: Arc<dyn Substrate> = HypercubeMachine::new_shared(8);
        assert_eq!(m.pes().len(), 256);
        let a = m.pe_n(1).unwrap().id();
        let z = m.pe_n(256).unwrap().id();
        assert_eq!(m.charge_link(a, z, 1), 8, "opposite corners are 8 hops");
    }
}
