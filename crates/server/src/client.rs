//! Client side of the piscesd protocol: connect, send one request, read
//! one response.
//!
//! The address decides the transport: anything containing a `/` is a
//! Unix-domain socket path, anything else is a TCP `host:port`. Both
//! carry the same length-prefixed JSON frames ([`crate::protocol`]).

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

/// Why a client call failed. `Transport` is connection-level (refused,
/// reset, timed out); `Protocol` means bytes flowed but were not a valid
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not connect, or the connection failed mid-exchange.
    Transport(String),
    /// The server's bytes did not decode to a response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport: {e}"),
            Self::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

/// A connected piscesd client. One connection can carry any number of
/// request/response exchanges in sequence.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connect to `addr` — a Unix socket path if it contains `/`, else a
    /// TCP `host:port`.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = if addr.contains('/') {
            Stream::Unix(UnixStream::connect(addr).map_err(|e| {
                ClientError::Transport(format!("connect {addr}: {e}"))
            })?)
        } else {
            Stream::Tcp(TcpStream::connect(addr).map_err(|e| {
                ClientError::Transport(format!("connect {addr}: {e}"))
            })?)
        };
        Ok(Self { stream })
    }

    /// Send one request and block for its response. A `submit` blocks
    /// until the job finishes — the reply IS the job's result.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.to_json()).map_err(|e| match e {
            FrameError::Io(m) => ClientError::Transport(m),
            other => ClientError::Protocol(other.to_string()),
        })?;
        let v = read_frame(&mut self.stream).map_err(|e| match e {
            FrameError::Io(m) => ClientError::Transport(m),
            FrameError::Closed => ClientError::Transport("server closed the connection".into()),
            other => ClientError::Protocol(other.to_string()),
        })?;
        Response::from_json(&v).map_err(|e| ClientError::Protocol(e.to_string()))
    }
}
