//! Weighted-fair job scheduling across tenants.
//!
//! Each tenant gets a FIFO lane; the dispatcher picks the next lane by
//! *smooth* weighted round-robin (the nginx variant): every pick, each
//! non-empty lane's running `current` grows by its weight, the largest
//! `current` wins and is debited by the total weight in play. A tenant
//! with weight 3 gets 3 of every 4 picks against a weight-1 tenant, and
//! the picks interleave (a a b a, not a a a b) — so a greedy tenant that
//! floods the queue can never starve a light one: the light tenant's lane
//! keeps accumulating credit and wins its turn on schedule.
//!
//! Ties break deterministically toward the lexicographically smallest
//! tenant id, so a given submission sequence always dispatches in the
//! same order — the property the chaos and fairness tests pin down.

use std::collections::BTreeMap;

/// Per-tenant scheduling weights. Unlisted tenants get `default_weight`.
#[derive(Debug, Clone)]
pub struct TenantWeights {
    weights: BTreeMap<String, u32>,
    default_weight: u32,
}

impl Default for TenantWeights {
    fn default() -> Self {
        Self {
            weights: BTreeMap::new(),
            default_weight: 1,
        }
    }
}

impl TenantWeights {
    /// Parse a `--tenants` spec: comma-separated `name=weight` entries,
    /// e.g. `acme=3,batch=1`. Zero weights are clamped to 1 (a weight-0
    /// lane would never be served — starvation by configuration).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut w = Self::default();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (name, weight) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad tenant spec {entry:?} (want name=weight)"))?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("bad weight in {entry:?}"))?;
            w.weights.insert(name.trim().to_string(), weight.max(1));
        }
        Ok(w)
    }

    /// The weight for `tenant`.
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1)
    }
}

struct Lane<T> {
    weight: u32,
    current: i64,
    fifo: std::collections::VecDeque<T>,
}

/// A multi-tenant queue that pops in smooth-WRR order.
pub struct FairScheduler<T> {
    weights: TenantWeights,
    lanes: BTreeMap<String, Lane<T>>,
    len: usize,
}

impl<T> FairScheduler<T> {
    /// An empty scheduler using `weights`.
    pub fn new(weights: TenantWeights) -> Self {
        Self {
            weights,
            lanes: BTreeMap::new(),
            len: 0,
        }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue depth per tenant (non-empty lanes only), sorted by tenant.
    pub fn queued_by_tenant(&self) -> Vec<(String, usize)> {
        self.lanes
            .iter()
            .filter(|(_, l)| !l.fifo.is_empty())
            .map(|(t, l)| (t.clone(), l.fifo.len()))
            .collect()
    }

    /// The configured weight of `tenant`.
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.weights.weight_of(tenant)
    }

    /// Visit every queued item with its tenant — lanes in tenant order,
    /// FIFO within a lane. The status report uses this to compute each
    /// queued job's current wait.
    pub fn for_each(&self, mut f: impl FnMut(&str, &T)) {
        for (tenant, lane) in &self.lanes {
            for item in &lane.fifo {
                f(tenant, item);
            }
        }
    }

    /// Append an item to `tenant`'s lane.
    pub fn push(&mut self, tenant: &str, item: T) {
        let weight = self.weights.weight_of(tenant);
        self.lanes
            .entry(tenant.to_string())
            .or_insert_with(|| Lane {
                weight,
                current: 0,
                fifo: std::collections::VecDeque::new(),
            })
            .fifo
            .push_back(item);
        self.len += 1;
    }

    /// Pop the next item in smooth-WRR order, with its tenant.
    pub fn pop(&mut self) -> Option<(String, T)> {
        // One smooth-WRR step over the non-empty lanes. BTreeMap iteration
        // order plus strict `>` gives the deterministic lexicographic
        // tie-break.
        let mut total: i64 = 0;
        let mut best: Option<&str> = None;
        let mut best_current = i64::MIN;
        for (tenant, lane) in self.lanes.iter_mut() {
            if lane.fifo.is_empty() {
                continue;
            }
            lane.current += lane.weight as i64;
            total += lane.weight as i64;
            if lane.current > best_current {
                best_current = lane.current;
                best = Some(tenant.as_str());
            }
        }
        let tenant = best?.to_string();
        let lane = self.lanes.get_mut(&tenant).expect("picked lane exists");
        lane.current -= total;
        let item = lane.fifo.pop_front().expect("picked lane is non-empty");
        self.len -= 1;
        if lane.fifo.is_empty() {
            // A drained lane's credit must not accrue while it has nothing
            // to run, or an idle tenant would burst unfairly on return.
            lane.current = 0;
        }
        Some((tenant, item))
    }

    /// Drop everything queued; returns the abandoned items with their
    /// tenants (drain uses this to refuse unserved jobs explicitly).
    pub fn clear(&mut self) -> Vec<(String, T)> {
        let mut out = Vec::with_capacity(self.len);
        for (tenant, lane) in self.lanes.iter_mut() {
            lane.current = 0;
            while let Some(item) = lane.fifo.pop_front() {
                out.push((tenant.clone(), item));
            }
        }
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_sequence(s: &mut FairScheduler<u32>, n: usize) -> String {
        (0..n)
            .filter_map(|_| s.pop().map(|(t, _)| t))
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn parse_accepts_specs_and_rejects_garbage() {
        let w = TenantWeights::parse("acme=3, batch=1").unwrap();
        assert_eq!(w.weight_of("acme"), 3);
        assert_eq!(w.weight_of("batch"), 1);
        assert_eq!(w.weight_of("unlisted"), 1);
        assert_eq!(TenantWeights::parse("zero=0").unwrap().weight_of("zero"), 1);
        assert!(TenantWeights::parse("no-equals").is_err());
        assert!(TenantWeights::parse("a=x").is_err());
        assert!(TenantWeights::parse("").is_ok());
    }

    #[test]
    fn equal_weights_alternate() {
        let mut s = FairScheduler::new(TenantWeights::default());
        for i in 0..4 {
            s.push("a", i);
            s.push("b", i);
        }
        assert_eq!(pop_sequence(&mut s, 8), "a b a b a b a b");
    }

    #[test]
    fn weights_interleave_smoothly() {
        let mut s = FairScheduler::new(TenantWeights::parse("a=3,b=1").unwrap());
        for i in 0..8 {
            s.push("a", i);
        }
        for i in 0..3 {
            s.push("b", i);
        }
        // Smooth WRR: a a b a, not a a a b — the weight-1 lane is served
        // mid-cycle, never starved to the end.
        assert_eq!(pop_sequence(&mut s, 8), "a a b a a a b a");
    }

    #[test]
    fn greedy_tenant_cannot_starve_a_light_one() {
        let mut s = FairScheduler::new(TenantWeights::default());
        for i in 0..100 {
            s.push("greedy", i);
        }
        s.push("light", 0);
        // The light tenant's single job is dispatched within one full
        // round, not after the greedy backlog.
        let mut seen_light_at = None;
        for pick in 0..101 {
            let (t, _) = s.pop().unwrap();
            if t == "light" {
                seen_light_at = Some(pick);
                break;
            }
        }
        assert!(seen_light_at.unwrap() <= 2, "light waited {seen_light_at:?} picks");
    }

    #[test]
    fn fifo_within_a_lane() {
        let mut s = FairScheduler::new(TenantWeights::default());
        for i in 0..5 {
            s.push("a", i);
        }
        let order: Vec<u32> = (0..5).map(|_| s.pop().unwrap().1).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ties_break_lexicographically() {
        let mut s = FairScheduler::new(TenantWeights::default());
        s.push("zeta", 0);
        s.push("alpha", 0);
        assert_eq!(s.pop().unwrap().0, "alpha");
        assert_eq!(s.pop().unwrap().0, "zeta");
    }

    #[test]
    fn idle_lane_does_not_bank_credit() {
        let mut s = FairScheduler::new(TenantWeights::default());
        for i in 0..10 {
            s.push("busy", i);
        }
        s.push("idle", 0);
        // idle's one job is served, then busy runs alone for a while.
        for _ in 0..8 {
            s.pop();
        }
        // idle returns: it should win at most its fair next turn, not a
        // burst of banked turns.
        s.push("idle", 1);
        s.push("idle", 2);
        let seq = pop_sequence(&mut s, 4);
        assert!(
            !seq.starts_with("idle idle"),
            "idle burst unfairly: {seq}"
        );
    }

    #[test]
    fn for_each_visits_fifo_per_lane() {
        let mut s = FairScheduler::new(TenantWeights::default());
        s.push("b", 10);
        s.push("a", 1);
        s.push("a", 2);
        let mut seen = Vec::new();
        s.for_each(|t, &v| seen.push((t.to_string(), v)));
        assert_eq!(
            seen,
            vec![("a".into(), 1), ("a".into(), 2), ("b".into(), 10)]
        );
    }

    #[test]
    fn clear_returns_everything_queued() {
        let mut s = FairScheduler::new(TenantWeights::default());
        s.push("a", 1);
        s.push("b", 2);
        s.push("a", 3);
        let mut dropped = s.clear();
        dropped.sort();
        assert_eq!(
            dropped,
            vec![("a".into(), 1), ("a".into(), 3), ("b".into(), 2)]
        );
        assert!(s.is_empty());
        assert!(s.pop().is_none());
    }

    #[test]
    fn counts_track_pushes_and_pops() {
        let mut s = FairScheduler::new(TenantWeights::default());
        assert!(s.is_empty());
        s.push("a", 1);
        s.push("b", 2);
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.queued_by_tenant(),
            vec![("a".into(), 1), ("b".into(), 1)]
        );
        s.pop();
        assert_eq!(s.len(), 1);
    }
}
