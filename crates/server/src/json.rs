//! A minimal JSON value, parser, and writer for the wire protocol.
//!
//! The protocol module needs JSON that (a) round-trips exactly what the
//! service puts on the wire, (b) **never panics** on adversarial bytes —
//! the decoder is driven by a proptest over arbitrary input — and (c)
//! works identically in the offline verification build, where the real
//! `serde_json` is unavailable. A ~200-line recursive-descent parser with
//! an explicit depth limit satisfies all three; the exposition surface is
//! small enough that a full serde dependency buys nothing here.

/// Maximum nesting depth the parser accepts. Deeper input is malformed
/// by protocol fiat — the depth limit is what makes "never panics"
/// (no stack overflow) provable.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (the protocol only uses non-negative integers,
    /// but the parser accepts the full grammar).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved so encodings are stable.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand integer constructor.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Inf/NaN; the protocol never produces
                    // them, but render defensively rather than panic.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parse one JSON document from `input`, requiring nothing but
/// whitespace after it. Never panics, whatever the bytes.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing bytes after the JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8], v: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut bytes: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    // Arbitrary bytes may hide behind the quotes; decode
                    // lossily rather than reject (the protocol layer only
                    // ever encodes valid UTF-8, so round-trips are exact).
                    return Ok(String::from_utf8_lossy(&bytes).into_owned());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => bytes.push(b'"'),
                        Some(b'\\') => bytes.push(b'\\'),
                        Some(b'/') => bytes.push(b'/'),
                        Some(b'n') => bytes.push(b'\n'),
                        Some(b'r') => bytes.push(b'\r'),
                        Some(b't') => bytes.push(b'\t'),
                        Some(b'b') => bytes.push(0x08),
                        Some(b'f') => bytes.push(0x0c),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: try to combine; a lone
                            // surrogate becomes U+FFFD instead of a panic.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.input[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (lo - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{FFFD}')
                                    } else {
                                        '\u{FFFD}'
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            let mut buf = [0u8; 4];
                            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    bytes.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::Obj(vec![
            ("s".into(), Json::str("he \"said\"\n\ttabs\\")),
            ("n".into(), Json::num(12345)),
            ("f".into(), Json::Num(1.5)),
            ("b".into(), Json::Bool(true)),
            ("z".into(), Json::Null),
            (
                "a".into(),
                Json::Arr(vec![Json::num(1), Json::str("two"), Json::Null]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(text.as_bytes()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse(b"{\"a\":1} extra").is_err());
        assert!(parse(b"{\"a\":1").is_err());
        assert!(parse(b"[1,2,").is_err());
        assert!(parse(b"\"unterminated").is_err());
        assert!(parse(b"").is_err());
    }

    #[test]
    fn depth_limit_is_an_error_not_an_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(deep.as_bytes()).is_err());
    }

    #[test]
    fn unicode_escapes_including_lone_surrogates() {
        assert_eq!(parse(b"\"A\\u00e9\"").unwrap(), Json::str("A\u{e9}"));
        // surrogate pair
        assert_eq!(
            parse(b"\"\\ud83d\\ude00\"").unwrap(),
            Json::str("\u{1F600}")
        );
        // raw multibyte UTF-8 passes through byte-for-byte
        assert_eq!(
            parse("\"😀\"".as_bytes()).unwrap(),
            Json::str("\u{1F600}")
        );
        // lone surrogate degrades to the replacement character
        assert_eq!(parse(br#""\ud83d""#).unwrap(), Json::str("\u{FFFD}"));
    }

    #[test]
    fn invalid_utf8_in_strings_is_lossy_not_fatal() {
        let v = parse(b"\"\xff\xfe\"").unwrap();
        assert_eq!(v, Json::str("\u{FFFD}\u{FFFD}"));
    }
}
