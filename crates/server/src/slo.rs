//! Per-tenant service-level objectives with multi-window burn-rate
//! alerting.
//!
//! An operator states objectives on the `piscesd` command line —
//! `--slo submit_p99=50ms,error_rate=1%` — and the [`SloEngine`] turns
//! every finished job into a compliance sample: did the job's
//! submit-to-dispatch latency beat the target, did it succeed. The
//! engine evaluates each objective over **two sliding windows** (the
//! classic short/long burn-rate pair): the *burn rate* is the fraction
//! of the error budget consumed in a window divided by the fraction a
//! perfectly-on-budget service would have consumed, so a burn rate of 1
//! means "exactly spending the budget", 10 means "ten times too fast".
//! An alert fires only when **both** windows burn above 1 — the long
//! window proves the problem is real, the short window proves it is
//! still happening — and clears the same way, which is what keeps a
//! single slow job from paging anyone at 3am.
//!
//! Firing and clearing emit `ALERT$` trace records through the service
//! machine's tracer, so alerts land in the same causal record stream as
//! the jobs that caused them, and the whole engine renders itself as
//! OpenMetrics families (`pisces_slo_burn_rate`,
//! `pisces_slo_breaches_total`, and a submit-latency histogram whose
//! buckets carry **exemplar job ids** — a spike on the dashboard names
//! the exact `job-<id>.jsonl` to open).

use pisces_core::metrics::{ExemplarSet, TickHistogram};
use pisces_core::telemetry::{
    label_escape, openmetrics_gauge, openmetrics_histogram_with_exemplars,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Samples retained per tenant; at one sample per finished job this
/// covers far more history than the long window needs.
const SAMPLE_RETAIN: usize = 4096;

/// What one objective demands of every job.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectiveKind {
    /// `submit_p<q>=<N>ms`: at least q% of jobs must wait less than `N`
    /// milliseconds between admission and dispatch. The error budget is
    /// the complementary quantile (p99 → 1% of jobs may miss).
    SubmitLatency {
        /// The quantile, as a percentage (99 for `submit_p99`).
        quantile: f64,
        /// The latency target in milliseconds.
        target_ms: u64,
    },
    /// `error_rate=<P>%`: at most P% of jobs may fail.
    ErrorRate {
        /// Allowed failure fraction (0.01 for `1%`).
        budget: f64,
    },
}

/// One named objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// The name used in `--slo`, metric labels, and `ALERT$` records
    /// (e.g. `submit_p99`).
    pub name: String,
    /// What the objective demands.
    pub kind: ObjectiveKind,
}

impl Objective {
    /// The fraction of jobs allowed to violate the objective.
    fn budget(&self) -> f64 {
        match &self.kind {
            ObjectiveKind::SubmitLatency { quantile, .. } => (100.0 - quantile) / 100.0,
            ObjectiveKind::ErrorRate { budget } => *budget,
        }
    }

    /// Whether one job sample violates the objective.
    fn is_bad(&self, s: &Sample) -> bool {
        match &self.kind {
            ObjectiveKind::SubmitLatency { target_ms, .. } => s.queued_ms > *target_ms,
            ObjectiveKind::ErrorRate { .. } => !s.ok,
        }
    }
}

/// A parsed `--slo` specification: the objectives plus the two
/// burn-rate windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// The objectives, in the order given.
    pub objectives: Vec<Objective>,
    /// The fast "is it still happening" window.
    pub short_window: Duration,
    /// The slow "is it real" window.
    pub long_window: Duration,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            objectives: Vec::new(),
            short_window: Duration::from_secs(5),
            long_window: Duration::from_secs(60),
        }
    }
}

impl SloSpec {
    /// Parse a `--slo` argument: comma-separated `name=value` entries.
    /// Objectives: `submit_p50|submit_p90|submit_p99=<N>ms`,
    /// `error_rate=<P>%`. Windows: `short=<N>s`, `long=<N>s` override
    /// the 5s/60s defaults.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (name, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad SLO entry {entry:?} (want name=value)"))?;
            let (name, value) = (name.trim(), value.trim());
            match name {
                "short" | "long" => {
                    let secs: u64 = value
                        .strip_suffix('s')
                        .unwrap_or(value)
                        .parse()
                        .map_err(|_| format!("bad window in {entry:?} (want e.g. 30s)"))?;
                    if secs == 0 {
                        return Err(format!("zero-length window in {entry:?}"));
                    }
                    let d = Duration::from_secs(secs);
                    if name == "short" {
                        out.short_window = d;
                    } else {
                        out.long_window = d;
                    }
                }
                "error_rate" => {
                    let pct: f64 = value
                        .strip_suffix('%')
                        .ok_or_else(|| format!("bad {entry:?} (want e.g. error_rate=1%)"))?
                        .parse()
                        .map_err(|_| format!("bad percentage in {entry:?}"))?;
                    if !(pct > 0.0 && pct < 100.0) {
                        return Err(format!("error_rate must be in (0, 100), got {pct}"));
                    }
                    out.objectives.push(Objective {
                        name: name.to_string(),
                        kind: ObjectiveKind::ErrorRate {
                            budget: pct / 100.0,
                        },
                    });
                }
                _ => {
                    let quantile = match name {
                        "submit_p50" => 50.0,
                        "submit_p90" => 90.0,
                        "submit_p99" => 99.0,
                        other => {
                            return Err(format!(
                                "unknown SLO {other:?} (known: submit_p50, submit_p90, \
                                 submit_p99, error_rate, short, long)"
                            ))
                        }
                    };
                    let target_ms: u64 = value
                        .strip_suffix("ms")
                        .ok_or_else(|| format!("bad {entry:?} (want e.g. {name}=50ms)"))?
                        .parse()
                        .map_err(|_| format!("bad latency in {entry:?}"))?;
                    out.objectives.push(Objective {
                        name: name.to_string(),
                        kind: ObjectiveKind::SubmitLatency {
                            quantile,
                            target_ms,
                        },
                    });
                }
            }
        }
        if out.short_window >= out.long_window {
            return Err(format!(
                "short window {:?} must be shorter than long window {:?}",
                out.short_window, out.long_window
            ));
        }
        Ok(out)
    }

    /// Whether any objective is configured.
    pub fn is_armed(&self) -> bool {
        !self.objectives.is_empty()
    }
}

/// One finished job, as the engine sees it.
#[derive(Debug, Clone, Copy)]
struct Sample {
    at: Instant,
    queued_ms: u64,
    ok: bool,
}

#[derive(Default)]
struct TenantState {
    samples: VecDeque<Sample>,
    /// Per-objective firing state (present once evaluated).
    firing: BTreeMap<String, bool>,
    /// Per-objective breach count.
    breaches: BTreeMap<String, u64>,
    /// Live burn rates from the last evaluation, per objective:
    /// (short, long).
    burn: BTreeMap<String, (f64, f64)>,
    /// Per-tenant submit-latency distribution (feeds `pisces top`).
    p50_ms: u64,
    p99_ms: u64,
}

/// An alert transition the caller should trace and log: `fired` true
/// when the alert begins, false when it clears.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Tenant the alert concerns.
    pub tenant: String,
    /// Objective name (e.g. `submit_p99`).
    pub slo: String,
    /// True on fire, false on clear.
    pub fired: bool,
    /// Burn rate over the short window at transition time.
    pub burn_short: f64,
    /// Burn rate over the long window at transition time.
    pub burn_long: f64,
}

/// The live SLO engine: records one sample per finished job, evaluates
/// burn rates, tracks alert state, and renders itself as OpenMetrics.
pub struct SloEngine {
    spec: SloSpec,
    tenants: Mutex<BTreeMap<String, TenantState>>,
    /// Service-wide submit-latency histogram (milliseconds queued).
    submit_latency: TickHistogram,
    /// Exemplar job ids per latency bucket.
    exemplars: ExemplarSet,
    breaches_total: AtomicU64,
}

impl SloEngine {
    /// An engine enforcing `spec` (possibly inert: no objectives).
    pub fn new(spec: SloSpec) -> Self {
        Self {
            spec,
            tenants: Mutex::new(BTreeMap::new()),
            submit_latency: TickHistogram::new("submit_latency_ms", "ms"),
            exemplars: ExemplarSet::default(),
            breaches_total: AtomicU64::new(0),
        }
    }

    /// The spec this engine enforces.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Record one finished job and re-evaluate the tenant's objectives.
    /// Returns the alert transitions (fire/clear) this sample caused.
    pub fn record(&self, tenant: &str, job_id: u64, queued_ms: u64, ok: bool) -> Vec<AlertTransition> {
        self.record_at(Instant::now(), tenant, job_id, queued_ms, ok)
    }

    fn record_at(
        &self,
        now: Instant,
        tenant: &str,
        job_id: u64,
        queued_ms: u64,
        ok: bool,
    ) -> Vec<AlertTransition> {
        self.submit_latency.record(queued_ms);
        self.exemplars.observe(queued_ms, format!("{job_id}"));

        let mut tenants = self.tenants.lock();
        let state = tenants.entry(tenant.to_string()).or_default();
        state.samples.push_back(Sample {
            at: now,
            queued_ms,
            ok,
        });
        while state.samples.len() > SAMPLE_RETAIN {
            state.samples.pop_front();
        }
        let (p50, p99) = Self::tenant_quantiles(&state.samples);
        state.p50_ms = p50;
        state.p99_ms = p99;

        let mut transitions = Vec::new();
        for obj in &self.spec.objectives {
            let short = Self::burn(&state.samples, obj, now, self.spec.short_window);
            let long = Self::burn(&state.samples, obj, now, self.spec.long_window);
            state.burn.insert(obj.name.clone(), (short, long));
            let firing_now = short > 1.0 && long > 1.0;
            let was_firing = state.firing.get(&obj.name).copied().unwrap_or(false);
            if firing_now != was_firing {
                state.firing.insert(obj.name.clone(), firing_now);
                if firing_now {
                    *state.breaches.entry(obj.name.clone()).or_insert(0) += 1;
                    self.breaches_total.fetch_add(1, Ordering::Relaxed);
                }
                transitions.push(AlertTransition {
                    tenant: tenant.to_string(),
                    slo: obj.name.clone(),
                    fired: firing_now,
                    burn_short: short,
                    burn_long: long,
                });
            }
        }
        transitions
    }

    /// Burn rate for `obj` over the trailing `window`: fraction of
    /// in-window samples that violate the objective, divided by the
    /// error budget. 0 when no sample falls in the window.
    fn burn(samples: &VecDeque<Sample>, obj: &Objective, now: Instant, window: Duration) -> f64 {
        let mut total = 0u64;
        let mut bad = 0u64;
        for s in samples.iter().rev() {
            if now.duration_since(s.at) > window {
                break;
            }
            total += 1;
            if obj.is_bad(s) {
                bad += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        let bad_fraction = bad as f64 / total as f64;
        let budget = obj.budget().max(f64::EPSILON);
        bad_fraction / budget
    }

    fn tenant_quantiles(samples: &VecDeque<Sample>) -> (u64, u64) {
        let mut lat: Vec<u64> = samples.iter().map(|s| s.queued_ms).collect();
        if lat.is_empty() {
            return (0, 0);
        }
        lat.sort_unstable();
        let at = |p: f64| {
            let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
            lat[idx.min(lat.len() - 1)]
        };
        (at(50.0), at(99.0))
    }

    /// Current burn rate for (`tenant`, `slo`) over the short and long
    /// windows, as of the last recorded sample. `None` when the pair was
    /// never evaluated.
    pub fn burn_rate(&self, tenant: &str, slo: &str) -> Option<(f64, f64)> {
        self.tenants.lock().get(tenant)?.burn.get(slo).copied()
    }

    /// Total breaches (alert firings) across all tenants and objectives.
    pub fn breaches(&self) -> u64 {
        self.breaches_total.load(Ordering::Relaxed)
    }

    /// Per-tenant submit-latency quantiles (p50, p99) in milliseconds,
    /// over the retained sample ring. Feeds the extended status frame.
    pub fn tenant_latency(&self, tenant: &str) -> Option<(u64, u64)> {
        let tenants = self.tenants.lock();
        let s = tenants.get(tenant)?;
        Some((s.p50_ms, s.p99_ms))
    }

    /// Append the engine's OpenMetrics families: burn-rate gauges,
    /// breach counters, and the submit-latency histogram with exemplar
    /// job ids. Written in the machine's metrics-extension hook, so
    /// these land in the same scrape as the machine families.
    pub fn render_openmetrics(&self, out: &mut String) {
        let tenants = self.tenants.lock();
        if self.spec.is_armed() {
            openmetrics_gauge(
                out,
                "pisces_slo_burn_rate",
                "Error-budget burn rate per tenant, objective, and window \
                 (1 = spending exactly the budget).",
            );
            for (tenant, state) in tenants.iter() {
                for (slo, (short, long)) in &state.burn {
                    let t = label_escape(tenant);
                    let s = label_escape(slo);
                    out.push_str(&format!(
                        "pisces_slo_burn_rate{{tenant=\"{t}\",slo=\"{s}\",window=\"short\"}} {short}\n"
                    ));
                    out.push_str(&format!(
                        "pisces_slo_burn_rate{{tenant=\"{t}\",slo=\"{s}\",window=\"long\"}} {long}\n"
                    ));
                }
            }
            out.push_str(
                "# TYPE pisces_slo_breaches counter\n\
                 # HELP pisces_slo_breaches Alert firings per tenant and objective.\n",
            );
            for (tenant, state) in tenants.iter() {
                for (slo, n) in &state.breaches {
                    out.push_str(&format!(
                        "pisces_slo_breaches_total{{tenant=\"{}\",slo=\"{}\"}} {n}\n",
                        label_escape(tenant),
                        label_escape(slo)
                    ));
                }
            }
            openmetrics_gauge(
                out,
                "pisces_slo_alert_firing",
                "1 while the (tenant, objective) alert is firing.",
            );
            for (tenant, state) in tenants.iter() {
                for (slo, firing) in &state.firing {
                    out.push_str(&format!(
                        "pisces_slo_alert_firing{{tenant=\"{}\",slo=\"{}\"}} {}\n",
                        label_escape(tenant),
                        label_escape(slo),
                        u64::from(*firing)
                    ));
                }
            }
        }
        drop(tenants);
        let snap = self.submit_latency.snapshot();
        if snap.count > 0 {
            openmetrics_histogram_with_exemplars(
                out,
                "pisces_submit_latency_ms",
                "Milliseconds jobs waited between admission and dispatch; \
                 bucket exemplars name a recent job id in that bucket.",
                &snap,
                &self.exemplars.snapshot(),
                "job_id",
            );
        }
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("objectives", &self.spec.objectives.len())
            .field("breaches", &self.breaches())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(spec: &str) -> SloEngine {
        SloEngine::new(SloSpec::parse(spec).unwrap())
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let spec = SloSpec::parse("submit_p99=50ms,error_rate=1%").unwrap();
        assert_eq!(spec.objectives.len(), 2);
        assert_eq!(
            spec.objectives[0].kind,
            ObjectiveKind::SubmitLatency {
                quantile: 99.0,
                target_ms: 50
            }
        );
        assert_eq!(
            spec.objectives[1].kind,
            ObjectiveKind::ErrorRate { budget: 0.01 }
        );
        let spec = SloSpec::parse(" submit_p50=2ms , short=2s, long=30s ").unwrap();
        assert_eq!(spec.short_window, Duration::from_secs(2));
        assert_eq!(spec.long_window, Duration::from_secs(30));
        assert!(SloSpec::parse("").unwrap().objectives.is_empty());
    }

    #[test]
    fn parse_rejects_garbage_with_reasons() {
        for bad in [
            "submit_p99=50",     // missing ms
            "error_rate=1",      // missing %
            "error_rate=0%",     // empty budget
            "error_rate=200%",   // impossible budget
            "warp_factor=9",     // unknown objective
            "no-equals",         // not name=value
            "short=0s",          // degenerate window
            "short=60s,long=5s", // inverted windows
        ] {
            assert!(SloSpec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn budgets_follow_quantiles() {
        let spec = SloSpec::parse("submit_p50=1ms,submit_p90=1ms,submit_p99=1ms").unwrap();
        let budgets: Vec<f64> = spec.objectives.iter().map(|o| o.budget()).collect();
        assert!((budgets[0] - 0.50).abs() < 1e-9);
        assert!((budgets[1] - 0.10).abs() < 1e-9);
        assert!((budgets[2] - 0.01).abs() < 1e-9);
    }

    #[test]
    fn burn_rate_rises_and_alert_fires_once() {
        let e = engine("submit_p99=10ms,short=1s,long=5s");
        let t0 = Instant::now();
        // Nine fast jobs: no burn.
        for i in 0..9 {
            let tr = e.record_at(t0, "acme", i, 1, true);
            assert!(tr.is_empty(), "unexpected transition {tr:?}");
        }
        // A flood of slow jobs: both windows burn far above 1, alert
        // fires exactly once.
        let mut fired = 0;
        for i in 9..29 {
            for t in e.record_at(t0, "acme", i, 500, true) {
                assert!(t.fired);
                assert!(t.burn_short > 1.0 && t.burn_long > 1.0, "{t:?}");
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
        assert_eq!(e.breaches(), 1);
        let (short, long) = e.burn_rate("acme", "submit_p99").unwrap();
        assert!(short > 1.0 && long > 1.0);
        // Fast jobs past the short window: the alert clears (short burn
        // decays first, and the transition needs only one window sober).
        let later = t0 + Duration::from_secs(2);
        let mut cleared = 0;
        for i in 29..60 {
            for t in e.record_at(later, "acme", i, 1, true) {
                assert!(!t.fired);
                cleared += 1;
            }
        }
        assert_eq!(cleared, 1);
        // Breach count is still 1: clears are not breaches.
        assert_eq!(e.breaches(), 1);
    }

    #[test]
    fn error_rate_objective_counts_failures() {
        let e = engine("error_rate=10%,short=1s,long=5s");
        let t0 = Instant::now();
        for i in 0..5 {
            e.record_at(t0, "acme", i, 1, true);
        }
        assert_eq!(e.breaches(), 0);
        // Half the jobs failing burns 5x the 10% budget.
        let mut transitions = Vec::new();
        for i in 5..10 {
            transitions.extend(e.record_at(t0, "acme", i, 1, false));
        }
        assert_eq!(transitions.len(), 1);
        assert!(transitions[0].fired);
        let (short, _) = e.burn_rate("acme", "error_rate").unwrap();
        assert!(short > 1.0, "burn {short}");
    }

    #[test]
    fn tenants_are_isolated() {
        let e = engine("error_rate=10%,short=1s,long=5s");
        let t0 = Instant::now();
        for i in 0..10 {
            e.record_at(t0, "noisy", i, 1, false);
            e.record_at(t0, "quiet", 100 + i, 1, true);
        }
        assert!(e.burn_rate("noisy", "error_rate").unwrap().0 > 1.0);
        assert_eq!(e.burn_rate("quiet", "error_rate").unwrap().0, 0.0);
        assert_eq!(e.breaches(), 1);
    }

    #[test]
    fn openmetrics_renders_burn_breaches_and_exemplars() {
        let e = engine("submit_p99=10ms,short=1s,long=5s");
        let t0 = Instant::now();
        for i in 0..10 {
            e.record_at(t0, "acme", i, if i < 5 { 1 } else { 900 }, true);
        }
        let mut out = String::new();
        e.render_openmetrics(&mut out);
        assert!(out.contains("# TYPE pisces_slo_burn_rate gauge"), "{out}");
        assert!(
            out.contains("pisces_slo_burn_rate{tenant=\"acme\",slo=\"submit_p99\",window=\"short\"}"),
            "{out}"
        );
        assert!(
            out.contains("pisces_slo_breaches_total{tenant=\"acme\",slo=\"submit_p99\"} 1"),
            "{out}"
        );
        assert!(out.contains("pisces_slo_alert_firing{tenant=\"acme\",slo=\"submit_p99\"} 1"));
        // The histogram carries an exemplar naming a job id.
        assert!(out.contains("pisces_submit_latency_ms_bucket"), "{out}");
        assert!(out.contains("# {job_id=\""), "{out}");
        // The exemplar for the slow bucket is the latest slow job (id 9).
        assert!(out.contains("# {job_id=\"9\"} 900"), "{out}");
    }

    #[test]
    fn inert_engine_still_tracks_latency() {
        let e = SloEngine::new(SloSpec::default());
        assert!(!e.spec().is_armed());
        for i in 0..20 {
            e.record("acme", i, i, true);
        }
        let (p50, p99) = e.tenant_latency("acme").unwrap();
        assert!(p50 <= p99);
        let mut out = String::new();
        e.render_openmetrics(&mut out);
        // No SLO families without objectives, but the latency histogram
        // (with exemplars) still renders.
        assert!(!out.contains("pisces_slo_burn_rate"));
        assert!(out.contains("pisces_submit_latency_ms_bucket"));
        assert_eq!(e.breaches(), 0);
    }
}
