//! The piscesd wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian length followed by exactly that
//! many bytes of JSON. Lengths above [`MAX_FRAME_BYTES`] are refused
//! before any allocation, truncated frames surface as typed errors (never
//! panics — the decoder is proptested over arbitrary bytes), and a clean
//! EOF between frames is [`FrameError::Closed`], distinct from a torn
//! one.
//!
//! Requests and responses are tagged objects (`{"type": "submit", ...}`);
//! see [`Request`] and [`Response`] for the full vocabulary. Docs:
//! `docs/SERVICE.md`.

use crate::json::{self, Json};
use std::io::{Read, Write};

/// Hard ceiling on a frame's JSON body. Large enough for any inline
/// program the service would admit; small enough that a hostile length
/// prefix cannot balloon allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why a frame could not be read or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The advertised body length.
        len: u64,
    },
    /// The stream or buffer ended mid-frame.
    Truncated {
        /// Bytes the frame still owed.
        wanted: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The body is not valid JSON.
    BadJson(String),
    /// The JSON is valid but not a known request/response shape.
    BadMessage(String),
    /// Transport-level I/O failure.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            Self::Truncated { wanted, got } => {
                write!(f, "truncated frame: wanted {wanted} bytes, got {got}")
            }
            Self::BadJson(e) => write!(f, "bad JSON in frame: {e}"),
            Self::BadMessage(e) => write!(f, "bad message: {e}"),
            Self::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one value as a length-prefixed frame.
pub fn encode_frame(v: &Json) -> Vec<u8> {
    let body = v.render().into_bytes();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode one frame from the front of `buf`; returns the value and the
/// bytes consumed. Never panics: oversized and truncated input are typed
/// errors.
pub fn decode_frame(buf: &[u8]) -> Result<(Json, usize), FrameError> {
    if buf.is_empty() {
        return Err(FrameError::Closed);
    }
    if buf.len() < 4 {
        return Err(FrameError::Truncated {
            wanted: 4,
            got: buf.len(),
        });
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    let body = buf
        .get(4..4 + len)
        .ok_or(FrameError::Truncated {
            wanted: len,
            got: buf.len() - 4,
        })?;
    let v = json::parse(body).map_err(|e| FrameError::BadJson(e.to_string()))?;
    Ok((v, 4 + len))
}

/// Read one frame from a stream. A clean EOF before any length byte is
/// [`FrameError::Closed`]; EOF mid-frame is [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Json, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    wanted: 4,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    wanted: len,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    json::parse(&body).map_err(|e| FrameError::BadJson(e.to_string()))
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, v: &Json) -> Result<(), FrameError> {
    w.write_all(&encode_frame(v))
        .and_then(|_| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

// ----------------------------------------------------------------------
// Requests
// ----------------------------------------------------------------------

/// The program a submission names: a library entry or inline source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramRef {
    /// A name resolved against the server's program library
    /// (`programs/<name>.pf`).
    Named(String),
    /// Pisces Fortran source shipped in the request.
    Inline(String),
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Service status: queue depths, counters, program list.
    Status,
    /// Submit a job; the response arrives when the job finishes (or is
    /// rejected by admission control).
    Submit {
        /// Tenant id the job is accounted and scheduled under.
        tenant: String,
        /// What to run.
        program: ProgramRef,
        /// Top-level tasktype (default `MAIN`).
        main: String,
        /// Arguments for the top-level task, as unparsed strings.
        args: Vec<String>,
    },
    /// Graceful drain: finish admitted jobs, refuse new ones, flush
    /// telemetry, shut the machine down.
    Drain,
}

impl Request {
    /// Encode to the wire JSON shape.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::Obj(vec![("type".into(), Json::str("ping"))]),
            Request::Status => Json::Obj(vec![("type".into(), Json::str("status"))]),
            Request::Drain => Json::Obj(vec![("type".into(), Json::str("drain"))]),
            Request::Submit {
                tenant,
                program,
                main,
                args,
            } => {
                let mut fields = vec![
                    ("type".into(), Json::str("submit")),
                    ("tenant".into(), Json::str(tenant.clone())),
                ];
                match program {
                    ProgramRef::Named(n) => fields.push(("program".into(), Json::str(n.clone()))),
                    ProgramRef::Inline(s) => fields.push(("source".into(), Json::str(s.clone()))),
                }
                fields.push(("main".into(), Json::str(main.clone())));
                fields.push((
                    "args".into(),
                    Json::Arr(args.iter().map(|a| Json::str(a.clone())).collect()),
                ));
                Json::Obj(fields)
            }
        }
    }

    /// Decode from the wire JSON shape.
    pub fn from_json(v: &Json) -> Result<Request, FrameError> {
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| FrameError::BadMessage("missing \"type\"".into()))?;
        match ty {
            "ping" => Ok(Request::Ping),
            "status" => Ok(Request::Status),
            "drain" => Ok(Request::Drain),
            "submit" => {
                let tenant = v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .unwrap_or("anonymous")
                    .to_string();
                let program = match (
                    v.get("program").and_then(Json::as_str),
                    v.get("source").and_then(Json::as_str),
                ) {
                    (Some(n), None) => ProgramRef::Named(n.to_string()),
                    (None, Some(s)) => ProgramRef::Inline(s.to_string()),
                    (Some(_), Some(_)) => {
                        return Err(FrameError::BadMessage(
                            "submit carries both \"program\" and \"source\"".into(),
                        ))
                    }
                    (None, None) => {
                        return Err(FrameError::BadMessage(
                            "submit needs \"program\" (library name) or \"source\" (inline)"
                                .into(),
                        ))
                    }
                };
                let main = v
                    .get("main")
                    .and_then(Json::as_str)
                    .unwrap_or("MAIN")
                    .to_string();
                let args = v
                    .get("args")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| FrameError::BadMessage("args must be strings".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Submit {
                    tenant,
                    program,
                    main,
                    args,
                })
            }
            other => Err(FrameError::BadMessage(format!("unknown request type {other:?}"))),
        }
    }
}

// ----------------------------------------------------------------------
// Responses
// ----------------------------------------------------------------------

/// A finished job, as reported to the submitting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReply {
    /// Server-assigned job id.
    pub job_id: u64,
    /// Tenant the job ran under.
    pub tenant: String,
    /// Whether the job's main task completed without error.
    pub ok: bool,
    /// The failure, when `ok` is false.
    pub error: Option<String>,
    /// Milliseconds spent queued before dispatch.
    pub queued_ms: u64,
    /// Milliseconds from dispatch to quiescence.
    pub run_ms: u64,
    /// Virtual ticks the job advanced the machine's slowest PE clock.
    pub span_ticks: u64,
    /// Per-job machine counters (nonzero entries of the RunStats delta).
    pub stats: Vec<(String, u64)>,
    /// Terminal output (TO USER SEND lines) captured during the job.
    pub output: Vec<String>,
}

/// One tenant's live accounting in a status reply.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStatus {
    /// Tenant id.
    pub tenant: String,
    /// Scheduling weight.
    pub weight: u32,
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs finished since boot.
    pub finished: u64,
    /// Current queue wait of each queued job (ms since admission),
    /// FIFO order — the head of the list is next to dispatch.
    pub waits_ms: Vec<u64>,
    /// Median submit-to-dispatch latency over recent finished jobs (ms).
    pub submit_p50_ms: u64,
    /// 99th-percentile submit-to-dispatch latency (ms).
    pub submit_p99_ms: u64,
}

/// Service-level status.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusReply {
    /// True once a drain has begun.
    pub draining: bool,
    /// Jobs currently queued (all tenants).
    pub queued: u64,
    /// The running job, if any.
    pub running: Option<(String, u64)>,
    /// Jobs admitted since boot.
    pub submitted: u64,
    /// Jobs finished since boot.
    pub finished: u64,
    /// Finished jobs that failed.
    pub failed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Machines retired because reset found them dirty.
    pub reboots: u64,
    /// Per-tenant accounting.
    pub tenants: Vec<TenantStatus>,
    /// Program names in the library.
    pub programs: Vec<String>,
    /// The machine's live OpenMetrics endpoint (`host:port`), when
    /// telemetry is armed — `pisces top` discovers the scrape here.
    pub telemetry: Option<String>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ping acknowledgement.
    Pong,
    /// Status report.
    Status(StatusReply),
    /// The submitted job ran (successfully or not) — the full account.
    Done(JobReply),
    /// Admission control refused the submission. `kind` is the
    /// machine-readable reason class (see `admission::RejectReason`).
    Rejected {
        /// Machine-readable reason class, e.g. `queue-full`.
        kind: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// Drain finished: the machine is down and the listener is closing.
    DrainDone {
        /// Jobs that completed during the drain (including earlier).
        finished: u64,
        /// Queued jobs the drain deadline cut off unserved.
        unserved: u64,
    },
    /// Protocol-level failure (unparseable request, internal error).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Encode to the wire JSON shape.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => Json::Obj(vec![("type".into(), Json::str("pong"))]),
            Response::Rejected { kind, reason } => Json::Obj(vec![
                ("type".into(), Json::str("rejected")),
                ("kind".into(), Json::str(kind.clone())),
                ("reason".into(), Json::str(reason.clone())),
            ]),
            Response::Error { message } => Json::Obj(vec![
                ("type".into(), Json::str("error")),
                ("message".into(), Json::str(message.clone())),
            ]),
            Response::DrainDone { finished, unserved } => Json::Obj(vec![
                ("type".into(), Json::str("drain-done")),
                ("finished".into(), Json::num(*finished)),
                ("unserved".into(), Json::num(*unserved)),
            ]),
            Response::Done(j) => Json::Obj(vec![
                ("type".into(), Json::str("done")),
                ("job_id".into(), Json::num(j.job_id)),
                ("tenant".into(), Json::str(j.tenant.clone())),
                ("ok".into(), Json::Bool(j.ok)),
                (
                    "error".into(),
                    j.error.clone().map(Json::Str).unwrap_or(Json::Null),
                ),
                ("queued_ms".into(), Json::num(j.queued_ms)),
                ("run_ms".into(), Json::num(j.run_ms)),
                ("span_ticks".into(), Json::num(j.span_ticks)),
                (
                    "stats".into(),
                    Json::Obj(
                        j.stats
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::num(*v)))
                            .collect(),
                    ),
                ),
                (
                    "output".into(),
                    Json::Arr(j.output.iter().map(|l| Json::str(l.clone())).collect()),
                ),
            ]),
            Response::Status(s) => Json::Obj(vec![
                ("type".into(), Json::str("status")),
                ("draining".into(), Json::Bool(s.draining)),
                ("queued".into(), Json::num(s.queued)),
                (
                    "running".into(),
                    match &s.running {
                        Some((tenant, job)) => Json::Obj(vec![
                            ("tenant".into(), Json::str(tenant.clone())),
                            ("job".into(), Json::num(*job)),
                        ]),
                        None => Json::Null,
                    },
                ),
                ("submitted".into(), Json::num(s.submitted)),
                ("finished".into(), Json::num(s.finished)),
                ("failed".into(), Json::num(s.failed)),
                ("rejected".into(), Json::num(s.rejected)),
                ("reboots".into(), Json::num(s.reboots)),
                (
                    "tenants".into(),
                    Json::Arr(
                        s.tenants
                            .iter()
                            .map(|t| {
                                Json::Obj(vec![
                                    ("tenant".into(), Json::str(t.tenant.clone())),
                                    ("weight".into(), Json::num(t.weight as u64)),
                                    ("queued".into(), Json::num(t.queued)),
                                    ("finished".into(), Json::num(t.finished)),
                                    (
                                        "waits_ms".into(),
                                        Json::Arr(
                                            t.waits_ms.iter().map(|&w| Json::num(w)).collect(),
                                        ),
                                    ),
                                    ("submit_p50_ms".into(), Json::num(t.submit_p50_ms)),
                                    ("submit_p99_ms".into(), Json::num(t.submit_p99_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "programs".into(),
                    Json::Arr(s.programs.iter().map(|p| Json::str(p.clone())).collect()),
                ),
                (
                    "telemetry".into(),
                    s.telemetry.clone().map(Json::Str).unwrap_or(Json::Null),
                ),
            ]),
        }
    }

    /// Decode from the wire JSON shape.
    pub fn from_json(v: &Json) -> Result<Response, FrameError> {
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| FrameError::BadMessage("missing \"type\"".into()))?;
        let str_field = |key: &str| -> Result<String, FrameError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| FrameError::BadMessage(format!("missing \"{key}\"")))
        };
        let num_field = |key: &str| -> Result<u64, FrameError> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| FrameError::BadMessage(format!("missing \"{key}\"")))
        };
        match ty {
            "pong" => Ok(Response::Pong),
            "rejected" => Ok(Response::Rejected {
                kind: str_field("kind")?,
                reason: str_field("reason")?,
            }),
            "error" => Ok(Response::Error {
                message: str_field("message")?,
            }),
            "drain-done" => Ok(Response::DrainDone {
                finished: num_field("finished")?,
                unserved: num_field("unserved")?,
            }),
            "done" => Ok(Response::Done(JobReply {
                job_id: num_field("job_id")?,
                tenant: str_field("tenant")?,
                ok: v
                    .get("ok")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| FrameError::BadMessage("missing \"ok\"".into()))?,
                error: v.get("error").and_then(Json::as_str).map(str::to_string),
                queued_ms: num_field("queued_ms")?,
                run_ms: num_field("run_ms")?,
                span_ticks: num_field("span_ticks")?,
                stats: match v.get("stats") {
                    Some(Json::Obj(fields)) => fields
                        .iter()
                        .filter_map(|(k, n)| n.as_u64().map(|n| (k.clone(), n)))
                        .collect(),
                    _ => Vec::new(),
                },
                output: v
                    .get("output")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|l| l.as_str().map(str::to_string))
                    .collect(),
            })),
            "status" => Ok(Response::Status(StatusReply {
                draining: v.get("draining").and_then(Json::as_bool).unwrap_or(false),
                queued: num_field("queued")?,
                running: match v.get("running") {
                    Some(r @ Json::Obj(_)) => Some((
                        r.get("tenant")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        r.get("job").and_then(Json::as_u64).unwrap_or(0),
                    )),
                    _ => None,
                },
                submitted: num_field("submitted")?,
                finished: num_field("finished")?,
                failed: num_field("failed")?,
                rejected: num_field("rejected")?,
                reboots: num_field("reboots")?,
                tenants: v
                    .get("tenants")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|t| TenantStatus {
                        tenant: t
                            .get("tenant")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        weight: t.get("weight").and_then(Json::as_u64).unwrap_or(1) as u32,
                        queued: t.get("queued").and_then(Json::as_u64).unwrap_or(0),
                        finished: t.get("finished").and_then(Json::as_u64).unwrap_or(0),
                        waits_ms: t
                            .get("waits_ms")
                            .and_then(Json::as_arr)
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(Json::as_u64)
                            .collect(),
                        submit_p50_ms: t.get("submit_p50_ms").and_then(Json::as_u64).unwrap_or(0),
                        submit_p99_ms: t.get("submit_p99_ms").and_then(Json::as_u64).unwrap_or(0),
                    })
                    .collect(),
                programs: v
                    .get("programs")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|p| p.as_str().map(str::to_string))
                    .collect(),
                telemetry: v.get("telemetry").and_then(Json::as_str).map(str::to_string),
            })),
            other => Err(FrameError::BadMessage(format!(
                "unknown response type {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(r: Request) {
        let (v, used) = decode_frame(&encode_frame(&r.to_json())).unwrap();
        assert_eq!(used, encode_frame(&r.to_json()).len());
        assert_eq!(Request::from_json(&v).unwrap(), r);
    }

    fn roundtrip_response(r: Response) {
        let (v, _) = decode_frame(&encode_frame(&r.to_json())).unwrap();
        assert_eq!(Response::from_json(&v).unwrap(), r);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Status);
        roundtrip_request(Request::Drain);
        roundtrip_request(Request::Submit {
            tenant: "acme".into(),
            program: ProgramRef::Named("pi".into()),
            main: "MAIN".into(),
            args: vec!["1000".into(), ".TRUE.".into()],
        });
        roundtrip_request(Request::Submit {
            tenant: "tenant \"quoted\"\n".into(),
            program: ProgramRef::Inline("PROGRAM X\nEND".into()),
            main: "WORKER".into(),
            args: vec![],
        });
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Rejected {
            kind: "queue-full".into(),
            reason: "64 jobs queued".into(),
        });
        roundtrip_response(Response::Error {
            message: "boom".into(),
        });
        roundtrip_response(Response::DrainDone {
            finished: 17,
            unserved: 3,
        });
        roundtrip_response(Response::Done(JobReply {
            job_id: 42,
            tenant: "acme".into(),
            ok: false,
            error: Some("task failed".into()),
            queued_ms: 5,
            run_ms: 77,
            span_ticks: 123456,
            stats: vec![("messages_sent".into(), 9)],
            output: vec!["PI(3.14)".into()],
        }));
        roundtrip_response(Response::Status(StatusReply {
            draining: true,
            queued: 2,
            running: Some(("acme".into(), 7)),
            submitted: 10,
            finished: 7,
            failed: 1,
            rejected: 2,
            reboots: 0,
            tenants: vec![TenantStatus {
                tenant: "acme".into(),
                weight: 3,
                queued: 2,
                finished: 7,
                waits_ms: vec![120, 5],
                submit_p50_ms: 4,
                submit_p99_ms: 250,
            }],
            programs: vec!["heat".into(), "pi".into()],
            telemetry: Some("127.0.0.1:9100".into()),
        }));
        // A pre-extension status frame (no waits/latency/telemetry
        // fields) still decodes, with defaults.
        let old = json::parse(
            br#"{"type":"status","queued":0,"submitted":1,"finished":1,"failed":0,
                 "rejected":0,"reboots":0,
                 "tenants":[{"tenant":"t","weight":1,"queued":0,"finished":1}]}"#,
        )
        .unwrap();
        match Response::from_json(&old).unwrap() {
            Response::Status(s) => {
                assert_eq!(s.telemetry, None);
                assert_eq!(s.tenants[0].waits_ms, Vec::<u64>::new());
                assert_eq!(s.tenants[0].submit_p99_ms, 0);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_a_typed_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        assert!(matches!(
            decode_frame(&buf),
            Err(FrameError::Oversized { .. })
        ));
        // read_frame refuses before allocating the body
        let mut r = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let full = encode_frame(&Request::Ping.to_json());
        for cut in [1, 2, 3, 4, full.len() - 1] {
            let e = decode_frame(&full[..cut]).unwrap_err();
            assert!(
                matches!(e, FrameError::Truncated { .. }),
                "cut at {cut}: {e:?}"
            );
            let mut r = std::io::Cursor::new(full[..cut].to_vec());
            assert!(matches!(
                read_frame(&mut r),
                Err(FrameError::Truncated { .. })
            ));
        }
        assert!(matches!(decode_frame(&[]), Err(FrameError::Closed)));
        let mut empty = std::io::Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Closed)));
    }

    #[test]
    fn garbage_bodies_are_bad_json_not_panics() {
        let mut buf = vec![0, 0, 0, 5];
        buf.extend_from_slice(b"{oops");
        assert!(matches!(decode_frame(&buf), Err(FrameError::BadJson(_))));
        let mut buf = vec![0, 0, 0, 4];
        buf.extend_from_slice(&[0xff, 0xfe, 0x00, 0x01]);
        assert!(matches!(decode_frame(&buf), Err(FrameError::BadJson(_))));
    }

    #[test]
    fn unknown_types_and_shapes_are_bad_messages() {
        let v = json::parse(br#"{"type":"warp"}"#).unwrap();
        assert!(matches!(
            Request::from_json(&v),
            Err(FrameError::BadMessage(_))
        ));
        let v = json::parse(br#"{"type":"submit","tenant":"a"}"#).unwrap();
        assert!(matches!(
            Request::from_json(&v),
            Err(FrameError::BadMessage(_))
        ));
        let v = json::parse(br#"{"type":"submit","program":"pi","source":"X"}"#).unwrap();
        assert!(matches!(
            Request::from_json(&v),
            Err(FrameError::BadMessage(_))
        ));
        let v = json::parse(br#"[1,2,3]"#).unwrap();
        assert!(matches!(
            Request::from_json(&v),
            Err(FrameError::BadMessage(_))
        ));
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut buf = encode_frame(&Request::Ping.to_json());
        buf.extend_from_slice(&encode_frame(&Request::Status.to_json()));
        let (first, used) = decode_frame(&buf).unwrap();
        assert_eq!(Request::from_json(&first).unwrap(), Request::Ping);
        let (second, _) = decode_frame(&buf[used..]).unwrap();
        assert_eq!(Request::from_json(&second).unwrap(), Request::Status);
    }
}
