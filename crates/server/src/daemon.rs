//! The daemon accept/serve loop, shared by the `piscesd` binary and
//! in-process tests.
//!
//! `piscesd` is a thin argument parser around this module: it builds a
//! [`ServiceConfig`](crate::service::ServiceConfig), binds a
//! [`Listener`], and calls [`serve`]. Tests in other packages do the
//! same on an ephemeral TCP port and get a real socket daemon without
//! spawning a child process — which is what lets the `pisces top`
//! end-to-end test poll a live status endpoint.
//!
//! The listen address decides the transport: a path (contains `/`)
//! binds a Unix-domain socket, anything else a TCP `host:port`.

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response};
use crate::service::{JobOutcome, JobService};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound daemon socket: TCP or Unix-domain.
pub enum Listener {
    Tcp(std::net::TcpListener),
    Unix(std::os::unix::net::UnixListener, String),
}

/// One accepted connection.
enum Conn {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

impl Listener {
    /// Bind `listen` (Unix path if it contains `/`, else TCP). The
    /// listener is left non-blocking so [`serve`] can poll for drain.
    pub fn bind(listen: &str) -> std::io::Result<Self> {
        if listen.contains('/') {
            let _ = std::fs::remove_file(listen);
            let l = std::os::unix::net::UnixListener::bind(listen)?;
            l.set_nonblocking(true)?;
            Ok(Self::Unix(l, listen.to_string()))
        } else {
            let l = std::net::TcpListener::bind(listen)?;
            l.set_nonblocking(true)?;
            Ok(Self::Tcp(l))
        }
    }

    /// The address peers should dial: the bound TCP address (resolves
    /// an ephemeral `:0` port) or the Unix socket path.
    pub fn local_addr(&self) -> String {
        match self {
            Self::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into()),
            Self::Unix(_, path) => path.clone(),
        }
    }

    fn accept(&self) -> Option<Conn> {
        match self {
            Self::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).ok();
                    Some(Conn::Tcp(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    eprintln!("piscesd: accept: {e}");
                    None
                }
            },
            Self::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).ok();
                    Some(Conn::Unix(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    eprintln!("piscesd: accept: {e}");
                    None
                }
            },
        }
    }
}

/// Serve connections until a client drains the service. Blocks the
/// calling thread; each connection gets its own worker thread. When
/// `metrics_out` is set, a final OpenMetrics snapshot is written there
/// at drain.
pub fn serve(service: Arc<JobService>, listener: Listener, metrics_out: Option<String>) {
    let stop = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            None => std::thread::sleep(Duration::from_millis(20)),
            Some(conn) => {
                let service = service.clone();
                let stop = stop.clone();
                let draining = draining.clone();
                let metrics_out = metrics_out.clone();
                handles.push(std::thread::spawn(move || {
                    serve_connection(conn, service, stop, draining, metrics_out)
                }));
            }
        }
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

/// Serve one connection: any number of request/response exchanges. A
/// `submit` blocks this connection (and only this connection) until its
/// job finishes; other connections keep submitting meanwhile.
fn serve_connection(
    mut conn: Conn,
    service: Arc<JobService>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    metrics_out: Option<String>,
) {
    loop {
        let req = match read_frame(&mut conn) {
            Ok(v) => match Request::from_json(&v) {
                Ok(r) => r,
                Err(e) => {
                    let _ = write_frame(
                        &mut conn,
                        &Response::Error {
                            message: e.to_string(),
                        }
                        .to_json(),
                    );
                    continue;
                }
            },
            Err(FrameError::Closed) => return,
            Err(e @ (FrameError::Oversized { .. } | FrameError::BadJson(_))) => {
                // Tell the peer what was wrong with the frame, then hang
                // up: the stream is no longer in sync.
                let _ = write_frame(
                    &mut conn,
                    &Response::Error {
                        message: e.to_string(),
                    }
                    .to_json(),
                );
                return;
            }
            Err(_) => return,
        };
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Status => Response::Status(service.status()),
            Request::Submit {
                tenant,
                program,
                main,
                args,
            } => match service.submit(&tenant, &program, &main, &args) {
                Err(reason) => Response::Rejected {
                    kind: reason.kind().to_string(),
                    reason: reason.to_string(),
                },
                Ok((_, rx)) => match rx.recv() {
                    Ok(JobOutcome::Done(reply)) => Response::Done(reply),
                    Ok(JobOutcome::Refused(reason)) => Response::Rejected {
                        kind: reason.kind().to_string(),
                        reason: reason.to_string(),
                    },
                    Err(_) => Response::Error {
                        message: "job result channel lost".into(),
                    },
                },
            },
            Request::Drain => {
                if draining.swap(true, Ordering::SeqCst) {
                    Response::Error {
                        message: "drain already in progress".into(),
                    }
                } else {
                    let machine = service.machine();
                    let summary = service.drain();
                    if let Some(path) = &metrics_out {
                        let body = pisces_core::telemetry::render_openmetrics(&machine);
                        if let Err(e) = std::fs::write(path, body) {
                            eprintln!("piscesd: cannot write {path}: {e}");
                        }
                    }
                    if let Some(dump) = &summary.flight_dump {
                        println!("piscesd: flight recorder dumped to {}", dump.display());
                    }
                    stop.store(true, Ordering::SeqCst);
                    Response::DrainDone {
                        finished: summary.finished,
                        unserved: summary.unserved,
                    }
                }
            }
        };
        let done = matches!(resp, Response::DrainDone { .. });
        if write_frame(&mut conn, &resp.to_json()).is_err() {
            return;
        }
        if done {
            return;
        }
    }
}
