//! The job service: one persistent PISCES machine run as a multi-tenant
//! batch server.
//!
//! A [`JobService`] boots the machine once (telemetry, watchdog hooks,
//! and an optional armed-inert fault plan all live for the server's
//! lifetime), then cycles it through jobs: admission control at submit
//! time ([`crate::admission`]), smooth weighted-fair dispatch across
//! tenants ([`crate::scheduler`]), per-job stats scoping and console
//! capture, per-job trace routing (`--trace-dir`), and a
//! [`pisces_core::machine::Pisces::reset_for_next_job`] between jobs. If
//! a reset finds the machine dirty (a wedged job, a leaked allocation
//! the repair path cannot reclaim), the machine is retired and a fresh
//! one booted — the `reboots` counter in [`StatusReply`] tracks how
//! often that forensically interesting path fires.
//!
//! Jobs run one at a time: the PISCES machine is a single shared
//! FLEX/32 and a job owns all its PEs while it runs, exactly as a
//! Section 11 configuration owns the machine for a run. Concurrency in
//! the service is therefore between *tenants competing for the next
//! slot*, which is what the fair scheduler arbitrates.

use crate::admission::{AdmissionPolicy, RejectReason};
use crate::protocol::{JobReply, ProgramRef, StatusReply, TenantStatus};
use crate::scheduler::{FairScheduler, TenantWeights};
use crate::slo::{SloEngine, SloSpec};
use pisces_core::substrate::Substrate;
use pisces_substrate::fault::FaultPlan;
use pisces_substrate::pe::PeId;
use parking_lot::{Condvar, Mutex};
use pisces_config::{ProgramLibrary, ProgramLookupError};
use pisces_core::config::MachineConfig;
use pisces_core::machine::Pisces;
use pisces_core::spans::parse_info;
use pisces_core::task::USER_ID;
use pisces_core::trace::{TraceEventKind, TraceRecord};
use pisces_core::value::Value;
use pisces_fortran::FortranProgram;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Everything the service needs to boot and police its machine.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The machine configuration every job runs on.
    pub machine: MachineConfig,
    /// Named-program library for `{"program": "<name>"}` submissions.
    pub programs: ProgramLibrary,
    /// Admission thresholds (queue bound, arena pressure).
    pub policy: AdmissionPolicy,
    /// Per-tenant scheduling weights.
    pub weights: TenantWeights,
    /// Quiescence timeout per job; a job still running past this is
    /// declared wedged and fails.
    pub job_timeout: Duration,
    /// How long a graceful drain waits for queued jobs before refusing
    /// the remainder.
    pub drain_timeout: Duration,
    /// When set, each job's trace is routed to `job-<id>.jsonl` plus a
    /// rendered report under this directory.
    pub trace_dir: Option<PathBuf>,
    /// Armed-inert fault plan: injected into the machine at boot so
    /// chaos runs exercise jobs under faults. `None` for a healthy
    /// server.
    pub fault_plan: Option<FaultPlan>,
    /// Echo TO USER SEND lines to the server's stdout as they happen.
    pub echo: bool,
    /// Per-tenant service-level objectives (`--slo`). An empty spec
    /// still records submit latency and exemplars; it just never alerts.
    pub slo: SloSpec,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::simple(2, 4),
            programs: ProgramLibrary::open("programs"),
            policy: AdmissionPolicy::default(),
            weights: TenantWeights::default(),
            job_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(30),
            trace_dir: None,
            fault_plan: None,
            echo: false,
            slo: SloSpec::default(),
        }
    }
}

/// What a submission ultimately produced. Admission rejections are
/// returned synchronously from [`JobService::submit`]; a `Refused` here
/// means the job was admitted but cut off by a drain deadline.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job ran; the reply carries its full account.
    Done(JobReply),
    /// The job was admitted but never ran (drain refused it).
    Refused(RejectReason),
}

/// Summary returned by [`JobService::drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs finished over the server's lifetime.
    pub finished: u64,
    /// Queued jobs the drain refused unserved.
    pub unserved: u64,
    /// Where the flight recorder dumped, if it was armed.
    pub flight_dump: Option<PathBuf>,
}

struct QueuedJob {
    id: u64,
    tenant: String,
    program: FortranProgram,
    main: String,
    args: Vec<Value>,
    reply: mpsc::Sender<JobOutcome>,
    enqueued: Instant,
    /// This job's JOB$ lifecycle records so far. The machine tracer is
    /// cleared between jobs, so records emitted while the job sat queued
    /// behind other jobs would be gone by the time it runs — the buffer
    /// is re-merged into the job's trace window at artifact time.
    lifecycle: Vec<TraceRecord>,
    /// Seq of the newest lifecycle record, for `parent` chaining.
    last_seq: Option<u64>,
}

struct Inner {
    machine: Arc<Pisces>,
    sub: Arc<dyn Substrate>,
    queue: FairScheduler<QueuedJob>,
    running: Option<(String, u64)>,
    draining: bool,
    stopped: bool,
    submitted: u64,
    finished: u64,
    failed: u64,
    per_tenant_finished: std::collections::BTreeMap<String, u64>,
}

/// A running job service. Create with [`JobService::start`], submit with
/// [`JobService::submit`], stop with [`JobService::drain`].
pub struct JobService {
    cfg: ServiceConfig,
    inner: Mutex<Inner>,
    work: Condvar,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    next_job: AtomicU64,
    rejected: AtomicU64,
    reboots: AtomicU64,
    /// Per-tenant SLO engine; shared with the machine's metrics
    /// extension so burn rates land in every scrape.
    slo: Arc<SloEngine>,
    /// Service start — the epoch for `t_us` timestamps in JOB$/ALERT$
    /// records.
    epoch: Instant,
}

fn boot_machine(
    cfg: &ServiceConfig,
    slo: &Arc<SloEngine>,
) -> Result<(Arc<dyn Substrate>, Arc<Pisces>), RejectReason> {
    let sub = cfg.machine.substrate.build();
    if let Some(plan) = &cfg.fault_plan {
        sub.arm_faults(plan.clone());
    }
    if cfg.echo {
        for pe in sub.topology().pe_ids() {
            sub.pe(pe).console.set_echo(true);
        }
    }
    let machine = Pisces::boot_on(sub.clone(), cfg.machine.clone())
        .map_err(|e| RejectReason::MachineUnavailable(e.to_string()))?;
    // Lifecycle spans and SLO alerts are service-level observability:
    // they must record regardless of the per-run trace settings.
    machine.tracer().set_global(TraceEventKind::JobLifecycle, true);
    machine.tracer().set_global(TraceEventKind::SloAlert, true);
    // Publish the SLO families through this machine's scrape. The
    // closure holds only the engine (no cycle back to the machine).
    let ext = slo.clone();
    machine.set_metrics_extension(Arc::new(move |out: &mut String| {
        ext.render_openmetrics(out);
    }));
    Ok((sub, machine))
}

impl JobService {
    /// Boot the machine and start the dispatcher thread.
    pub fn start(cfg: ServiceConfig) -> Result<Arc<Self>, RejectReason> {
        cfg.machine
            .validate()
            .map_err(|e| RejectReason::MachineUnavailable(e.to_string()))?;
        let slo = Arc::new(SloEngine::new(cfg.slo.clone()));
        let (sub, machine) = boot_machine(&cfg, &slo)?;
        let svc = Arc::new(Self {
            inner: Mutex::new(Inner {
                machine,
                sub,
                queue: FairScheduler::new(cfg.weights.clone()),
                running: None,
                draining: false,
                stopped: false,
                submitted: 0,
                finished: 0,
                failed: 0,
                per_tenant_finished: std::collections::BTreeMap::new(),
            }),
            cfg,
            work: Condvar::new(),
            worker: Mutex::new(None),
            next_job: AtomicU64::new(1),
            rejected: AtomicU64::new(0),
            reboots: AtomicU64::new(0),
            slo,
            epoch: Instant::now(),
        });
        let for_worker = svc.clone();
        *svc.worker.lock() = Some(
            std::thread::Builder::new()
                .name("piscesd-dispatch".into())
                .spawn(move || for_worker.dispatch_loop())
                .expect("spawn dispatcher"),
        );
        Ok(svc)
    }

    /// The machine currently serving jobs (swapped on reboot).
    pub fn machine(&self) -> Arc<Pisces> {
        self.inner.lock().machine.clone()
    }

    /// Microseconds since the service started — the wall-clock axis of
    /// JOB$/ALERT$ records (the machine's own clocks are virtual).
    fn t_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Emit one JOB$ lifecycle record through `machine`'s tracer and
    /// return a copy for the job's lifecycle buffer. `extra` must be
    /// empty or start with a space. `None` when tracing is disabled.
    fn emit_job_event(
        &self,
        machine: &Pisces,
        phase: &str,
        id: u64,
        tenant: &str,
        extra: &str,
        parent: Option<u64>,
    ) -> Option<TraceRecord> {
        let t_us = self.t_us();
        let info = format!("{phase} job={id} tenant={tenant} t_us={t_us}{extra}");
        let seq = machine.tracer().emit_causal(
            TraceEventKind::JobLifecycle,
            USER_ID,
            0,
            t_us,
            info.clone(),
            parent,
            None,
        )?;
        Some(TraceRecord {
            seq,
            kind: TraceEventKind::JobLifecycle,
            task: USER_ID,
            pe: 0,
            ticks: t_us,
            info,
            parent,
            cause: None,
        })
    }

    /// Parse/resolve the submitted program and run every admission gate.
    /// On success the job is queued and the receiver will deliver its
    /// [`JobOutcome`] when it leaves the machine. Every submission —
    /// admitted or rejected — opens a JOB$ span.
    pub fn submit(
        &self,
        tenant: &str,
        program: &ProgramRef,
        main: &str,
        args: &[String],
    ) -> Result<(u64, mpsc::Receiver<JobOutcome>), RejectReason> {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        let machine = self.inner.lock().machine.clone();
        let submit_rec = self.emit_job_event(&machine, "submit", id, tenant, "", None);
        let submit_seq = submit_rec.as_ref().map(|r| r.seq);
        match self.admit(id, tenant, program, main, args, submit_rec) {
            Ok(rx) => Ok((id, rx)),
            Err(e) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.emit_job_event(
                    &machine,
                    "rejected",
                    id,
                    tenant,
                    &format!(" reason={}", e.kind()),
                    submit_seq,
                );
                Err(e)
            }
        }
    }

    fn admit(
        &self,
        id: u64,
        tenant: &str,
        program: &ProgramRef,
        main: &str,
        args: &[String],
        submit_rec: Option<TraceRecord>,
    ) -> Result<mpsc::Receiver<JobOutcome>, RejectReason> {
        let mut inner = self.inner.lock();
        if inner.draining || inner.stopped {
            return Err(RejectReason::Draining);
        }
        self.cfg.policy.check_queue(inner.queue.len())?;
        let shm = inner.sub.shmem().report();
        self.cfg.policy.check_arena(shm.in_use, shm.capacity)?;
        let source = match program {
            ProgramRef::Inline(src) => src.clone(),
            ProgramRef::Named(name) => match self.cfg.programs.read(name) {
                Ok(src) => src,
                Err(ProgramLookupError::BadName(_) | ProgramLookupError::NotFound { .. }) => {
                    return Err(RejectReason::UnknownProgram(name.clone()));
                }
                Err(e @ ProgramLookupError::Io { .. }) => {
                    return Err(RejectReason::BadProgram(e.to_string()));
                }
            },
        };
        let parsed =
            FortranProgram::parse(&source).map_err(|e| RejectReason::BadProgram(e.to_string()))?;
        if !parsed.tasktypes().iter().any(|t| t == main) {
            return Err(RejectReason::NoSuchTask {
                main: main.to_string(),
                defined: parsed.tasktypes(),
            });
        }
        let image = pisces_config::ProgramImage::with_tasktypes(parsed.tasktypes());
        let user_bytes = image.user_bytes();
        let tightest = self
            .cfg
            .machine
            .pes_in_use()
            .into_iter()
            .filter_map(|n| PeId::new(n).ok())
            .map(|pe| {
                let local = &inner.sub.pe(pe).local;
                local.capacity() - local.used()
            })
            .min()
            .unwrap_or(0);
        self.cfg.policy.check_fit(user_bytes, tightest)?;

        // Admitted: chain admitted → queued onto the submit record and
        // buffer all three with the job.
        let machine = inner.machine.clone();
        let submit_seq = submit_rec.as_ref().map(|r| r.seq);
        let admitted = self.emit_job_event(&machine, "admitted", id, tenant, "", submit_seq);
        let admitted_seq = admitted.as_ref().map(|r| r.seq).or(submit_seq);
        let queued = self.emit_job_event(&machine, "queued", id, tenant, "", admitted_seq);
        let last_seq = queued.as_ref().map(|r| r.seq).or(admitted_seq);
        let lifecycle: Vec<TraceRecord> = [submit_rec, admitted, queued]
            .into_iter()
            .flatten()
            .collect();

        let (tx, rx) = mpsc::channel();
        inner.queue.push(
            tenant,
            QueuedJob {
                id,
                tenant: tenant.to_string(),
                program: parsed,
                main: main.to_string(),
                args: args.iter().map(|s| pisces_exec::menu::parse_value(s)).collect(),
                reply: tx,
                enqueued: Instant::now(),
                lifecycle,
                last_seq,
            },
        );
        inner.submitted += 1;
        drop(inner);
        self.work.notify_one();
        Ok(rx)
    }

    /// Live status for the `status` request.
    pub fn status(&self) -> StatusReply {
        let inner = self.inner.lock();
        let queued_by_tenant = inner.queue.queued_by_tenant();
        let mut tenants: std::collections::BTreeMap<String, TenantStatus> =
            std::collections::BTreeMap::new();
        for (tenant, queued) in queued_by_tenant {
            tenants
                .entry(tenant.clone())
                .or_insert_with(|| TenantStatus {
                    weight: inner.queue.weight_of(&tenant),
                    tenant,
                    ..TenantStatus::default()
                })
                .queued = queued as u64;
        }
        for (tenant, finished) in &inner.per_tenant_finished {
            tenants
                .entry(tenant.clone())
                .or_insert_with(|| TenantStatus {
                    weight: inner.queue.weight_of(tenant),
                    tenant: tenant.clone(),
                    ..TenantStatus::default()
                })
                .finished = *finished;
        }
        // Each queued job's current wait (age since admission), FIFO per
        // tenant, plus recent submit-latency quantiles from the SLO
        // engine's sample ring.
        inner.queue.for_each(|tenant, job| {
            if let Some(t) = tenants.get_mut(tenant) {
                t.waits_ms.push(job.enqueued.elapsed().as_millis() as u64);
            }
        });
        for t in tenants.values_mut() {
            if let Some((p50, p99)) = self.slo.tenant_latency(&t.tenant) {
                t.submit_p50_ms = p50;
                t.submit_p99_ms = p99;
            }
        }
        StatusReply {
            draining: inner.draining,
            queued: inner.queue.len() as u64,
            running: inner.running.clone(),
            submitted: inner.submitted,
            finished: inner.finished,
            failed: inner.failed,
            rejected: self.rejected.load(Ordering::Relaxed),
            reboots: self.reboots.load(Ordering::Relaxed),
            tenants: tenants.into_values().collect(),
            programs: self.cfg.programs.list(),
            telemetry: inner.machine.telemetry_addr().map(|a| a.to_string()),
        }
    }

    /// The live SLO engine (burn rates, breach counts, latency
    /// histogram).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// Graceful drain: refuse new submissions, keep serving the queue
    /// until `drain_timeout`, refuse the unserved remainder, flush the
    /// flight recorder, shut the machine down, and join the dispatcher.
    pub fn drain(&self) -> DrainSummary {
        {
            let mut inner = self.inner.lock();
            inner.draining = true;
        }
        self.work.notify_all();
        let deadline = Instant::now() + self.cfg.drain_timeout;
        loop {
            {
                let inner = self.inner.lock();
                if inner.stopped || (inner.queue.is_empty() && inner.running.is_none()) {
                    break;
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Cut off whatever is still queued, then stop the dispatcher.
        let (machine, abandoned) = {
            let mut inner = self.inner.lock();
            inner.stopped = true;
            (inner.machine.clone(), inner.queue.clear())
        };
        self.work.notify_all();
        let unserved = abandoned.len() as u64;
        for (_, job) in abandoned {
            // Close the abandoned job's span: it never ran.
            self.emit_job_event(
                &machine,
                "drained",
                job.id,
                &job.tenant,
                &format!(" queued_ms={}", job.enqueued.elapsed().as_millis() as u64),
                job.last_seq,
            );
            let _ = job.reply.send(JobOutcome::Refused(RejectReason::Draining));
        }
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        let flight_dump = machine.flight_dump("graceful drain");
        machine.shutdown();
        let inner = self.inner.lock();
        DrainSummary {
            finished: inner.finished,
            unserved,
            flight_dump,
        }
    }

    fn dispatch_loop(self: Arc<Self>) {
        loop {
            let mut job = {
                let mut inner = self.inner.lock();
                loop {
                    if inner.stopped {
                        return;
                    }
                    if let Some((_, job)) = inner.queue.pop() {
                        inner.running = Some((job.tenant.clone(), job.id));
                        break job;
                    }
                    if inner.draining {
                        // Queue empty and no new work can arrive.
                        inner.stopped = true;
                        return;
                    }
                    self.work.wait_for(&mut inner, Duration::from_millis(100));
                }
            };
            let machine = self.inner.lock().machine.clone();
            if let Some(rec) = self.emit_job_event(
                &machine,
                "scheduled",
                job.id,
                &job.tenant,
                "",
                job.last_seq,
            ) {
                job.last_seq = Some(rec.seq);
                job.lifecycle.push(rec);
            }
            let outcome = self.run_job(&mut job);
            {
                let mut inner = self.inner.lock();
                inner.running = None;
                inner.finished += 1;
                if let JobOutcome::Done(r) = &outcome {
                    if !r.ok {
                        inner.failed += 1;
                    }
                }
                *inner
                    .per_tenant_finished
                    .entry(job.tenant.clone())
                    .or_insert(0) += 1;
            }
            let _ = job.reply.send(outcome);
        }
    }

    /// Run one job on the current machine, then reset it. Never panics:
    /// every failure path produces a `Done` reply with `ok: false`.
    fn run_job(&self, job: &mut QueuedJob) -> JobOutcome {
        let (machine, sub) = {
            let inner = self.inner.lock();
            (inner.machine.clone(), inner.sub.clone())
        };
        let queued_ms = job.enqueued.elapsed().as_millis() as u64;
        let started = Instant::now();
        let ticks_before = Self::max_ticks(&sub);

        let mut reply = JobReply {
            job_id: job.id,
            tenant: job.tenant.clone(),
            ok: false,
            error: None,
            queued_ms,
            run_ms: 0,
            span_ticks: 0,
            stats: Vec::new(),
            output: Vec::new(),
        };

        // Load the user image (released again after the job).
        let load = pisces_config::LoadFile::build(
            &self.cfg.machine,
            &pisces_config::ProgramImage::with_tasktypes(job.program.tasktypes()),
        )
        .and_then(|lf| lf.download_user_code(&sub).map(|_| lf));
        let loadfile = match load {
            Ok(lf) => lf,
            Err(e) => {
                reply.error = Some(format!("load failed: {e}"));
                return JobOutcome::Done(reply);
            }
        };

        machine.begin_job(&job.tenant, job.id);
        if let Some(rec) =
            self.emit_job_event(&machine, "running", job.id, &job.tenant, "", job.last_seq)
        {
            job.last_seq = Some(rec.seq);
            job.lifecycle.push(rec);
        }
        job.program.register_with(&machine);
        let initiated = machine.initiate_top_level(1, &job.main, job.args.clone());
        let mut wedged = false;
        match initiated {
            Err(e) => reply.error = Some(format!("initiate failed: {e}")),
            Ok(()) => {
                if machine.wait_quiescent(self.cfg.job_timeout) {
                    reply.ok = true;
                } else {
                    wedged = true;
                    reply.error = Some(format!(
                        "job did not quiesce within {:?}",
                        self.cfg.job_timeout
                    ));
                }
            }
        }
        // Let controllers flush terminal output before capture.
        std::thread::sleep(Duration::from_millis(20));

        reply.run_ms = started.elapsed().as_millis() as u64;
        reply.span_ticks = Self::max_ticks(&sub).saturating_sub(ticks_before);
        for n in self.cfg.machine.pes_in_use() {
            if let Ok(pe) = PeId::new(n) {
                reply.output.extend(sub.pe(pe).console.output());
            }
        }
        let stats = machine.finish_job(reply.ok);
        reply.stats = stats
            .fields()
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(k, v)| (k.to_string(), *v))
            .collect();

        // Close the span, then feed the SLO engine and trace any alert
        // transitions — all before artifact routing, so the terminal
        // JOB$ and any ALERT$ land in this job's trace window.
        let terminal = if reply.ok { "done" } else { "failed" };
        if let Some(rec) = self.emit_job_event(
            &machine,
            terminal,
            job.id,
            &job.tenant,
            &format!(
                " queued_ms={} run_ms={} ok={}",
                reply.queued_ms, reply.run_ms, reply.ok
            ),
            job.last_seq,
        ) {
            job.last_seq = Some(rec.seq);
            job.lifecycle.push(rec);
        }
        for t in self.slo.record(&job.tenant, job.id, reply.queued_ms, reply.ok) {
            let verb = if t.fired { "fired" } else { "cleared" };
            machine.tracer().emit_causal(
                TraceEventKind::SloAlert,
                USER_ID,
                0,
                self.t_us(),
                format!(
                    "{verb} tenant={} slo={} burn_short={:.2} burn_long={:.2} t_us={}",
                    t.tenant,
                    t.slo,
                    t.burn_short,
                    t.burn_long,
                    self.t_us()
                ),
                job.last_seq,
                None,
            );
        }

        // Route this job's trace out before the reset clears the tracer.
        // The window may hold JOB$ records of *other* jobs (submissions
        // that arrived while this one ran) — drop those, and re-merge
        // this job's buffered lifecycle records (its submit/admitted/
        // queued events were emitted before earlier resets wiped them).
        if let Some(dir) = &self.cfg.trace_dir {
            let job_tag = job.id.to_string();
            let mut records: Vec<TraceRecord> = machine
                .tracer()
                .records()
                .into_iter()
                .filter(|r| {
                    r.kind != TraceEventKind::JobLifecycle
                        || parse_info(&r.info).get("job").copied() == Some(job_tag.as_str())
                })
                .collect();
            for rec in &job.lifecycle {
                if !records.iter().any(|r| r.seq == rec.seq) {
                    records.push(rec.clone());
                }
            }
            records.sort_by_key(|r| r.seq);
            if let Err(e) = pisces_exec::write_job_artifacts(dir, job.id, &records) {
                eprintln!("piscesd: trace routing for job {} failed: {e}", job.id);
            }
        }

        // Return the user image reservation.
        for n in &loadfile.pes {
            if let Ok(pe) = PeId::new(*n) {
                sub.pe(pe).local.release(loadfile.user_bytes);
            }
        }

        if wedged || machine.reset_for_next_job().is_err() {
            self.reboot(&machine, wedged, &mut reply);
        }
        JobOutcome::Done(reply)
    }

    /// Retire a dirty machine and boot a fresh one. The old machine is
    /// shut down on a detached thread: a wedged job may hold its worker
    /// threads forever, and the dispatcher must not block behind them.
    fn reboot(&self, old: &Arc<Pisces>, wedged: bool, reply: &mut JobReply) {
        self.reboots.fetch_add(1, Ordering::Relaxed);
        let why = if wedged { "wedged job" } else { "dirty reset" };
        let note = format!("machine retired after {why}; rebooting");
        match reply.error.as_mut() {
            Some(e) => {
                e.push_str("; ");
                e.push_str(&note);
            }
            None => reply.error = Some(note),
        }
        old.flight_dump(why);
        let retiring = old.clone();
        std::thread::Builder::new()
            .name("piscesd-retire".into())
            .spawn(move || retiring.shutdown())
            .ok();
        match boot_machine(&self.cfg, &self.slo) {
            Ok((sub, machine)) => {
                let mut inner = self.inner.lock();
                inner.sub = sub;
                inner.machine = machine;
            }
            Err(e) => {
                // No machine: refuse everything still queued and stop.
                let mut inner = self.inner.lock();
                inner.stopped = true;
                for (_, job) in inner.queue.clear() {
                    let _ = job
                        .reply
                        .send(JobOutcome::Refused(RejectReason::MachineUnavailable(
                            e.to_string(),
                        )));
                }
            }
        }
    }

    fn max_ticks(sub: &Arc<dyn Substrate>) -> u64 {
        sub.pes().iter().map(|pe| pe.clock.now()).max().unwrap_or(0)
    }
}

impl std::fmt::Debug for JobService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobService")
            .field("rejected", &self.rejected.load(Ordering::Relaxed))
            .field("reboots", &self.reboots.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}
