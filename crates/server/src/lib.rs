//! # pisces-server — the PISCES machine as a persistent service
//!
//! The paper's environment is session-oriented: a user configures a
//! run, boots the virtual machine, executes one program, and the
//! machine comes down with the process. This crate keeps the machine
//! *up*: `piscesd` boots a PISCES virtual FLEX/32 once — telemetry
//! endpoint, watchdog, flight recorder, and (for chaos runs) an
//! armed-inert fault plan all live for the server's lifetime — and
//! serves job submissions from multiple tenants over a Unix or TCP
//! socket.
//!
//! The moving parts:
//!
//! * [`json`] — a small self-contained JSON value/parser/writer (the
//!   wire format must not depend on any serialization framework);
//! * [`protocol`] — length-prefixed JSON frames and the
//!   request/response vocabulary, with typed errors for oversized,
//!   truncated, and malformed frames;
//! * [`admission`] — reject-with-reason capacity control: bounded job
//!   queue, shared-memory arena pressure, program-fits-local-memory;
//! * [`scheduler`] — smooth weighted round-robin across tenants, so a
//!   greedy tenant can never starve a light one;
//! * [`slo`] — per-tenant service-level objectives: multi-window
//!   burn-rate evaluation, `ALERT$` trace records, and OpenMetrics
//!   families whose histogram buckets carry exemplar job ids;
//! * [`service`] — the [`service::JobService`]: one machine cycled
//!   through jobs with per-job stats scoping, console capture, trace
//!   routing, and `reset_for_next_job` (or a full reboot when a job
//!   wedges) between jobs;
//! * [`daemon`] — the accept/serve loop `piscesd` wraps, reusable
//!   in-process by tests that need a live socket daemon;
//! * [`client`] — the client used by `pisces submit`.
//!
//! See `docs/SERVICE.md` for the protocol and operational story.

pub mod admission;
pub mod client;
pub mod daemon;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod service;
pub mod slo;

pub use admission::{AdmissionPolicy, RejectReason};
pub use client::{Client, ClientError};
pub use json::Json;
pub use protocol::{FrameError, JobReply, ProgramRef, Request, Response, StatusReply};
pub use scheduler::{FairScheduler, TenantWeights};
pub use service::{DrainSummary, JobOutcome, JobService, ServiceConfig};
pub use slo::{AlertTransition, SloEngine, SloSpec};
