//! Admission control: decide at submit time whether a job can be
//! accepted, and if not, say exactly why.
//!
//! The service prefers *reject-with-reason* over silent queuing past
//! capacity: a bounded queue absorbs bursts, but once the queue is full,
//! the machine is draining, the shared-memory arena is under pressure, or
//! the program itself cannot fit or parse, the submission is refused
//! immediately with a machine-readable reason class (`kind`) and a
//! human-readable explanation. Clients (and the `pisces submit` exit
//! codes) key off the class.

/// Why a submission was refused. Every variant carries enough context to
/// render an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded job queue is at its limit — backpressure.
    QueueFull {
        /// The configured queue bound.
        limit: usize,
    },
    /// A graceful drain is in progress; no new work is admitted.
    Draining,
    /// The shared-memory arena is too loaded to admit another job.
    ArenaPressure {
        /// Live bytes at decision time.
        in_use: usize,
        /// Arena capacity in bytes.
        capacity: usize,
    },
    /// The program's user image does not fit the PEs' local memories.
    ProgramTooLarge {
        /// Bytes the image needs per PE.
        user_bytes: usize,
        /// Bytes the tightest selected PE has free.
        available: usize,
    },
    /// No such name in the program library.
    UnknownProgram(String),
    /// The source failed to parse (named or inline).
    BadProgram(String),
    /// The program parsed but defines no such top-level tasktype.
    NoSuchTask {
        /// The requested tasktype.
        main: String,
        /// Tasktypes the program does define.
        defined: Vec<String>,
    },
    /// The machine is down and could not be revived.
    MachineUnavailable(String),
}

impl RejectReason {
    /// Stable machine-readable class, used on the wire and in metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::QueueFull { .. } => "queue-full",
            Self::Draining => "draining",
            Self::ArenaPressure { .. } => "arena-pressure",
            Self::ProgramTooLarge { .. } => "program-too-large",
            Self::UnknownProgram(_) => "unknown-program",
            Self::BadProgram(_) => "bad-program",
            Self::NoSuchTask { .. } => "no-such-task",
            Self::MachineUnavailable(_) => "machine-unavailable",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { limit } => {
                write!(f, "job queue is full ({limit} queued); retry later")
            }
            Self::Draining => write!(f, "server is draining and refuses new jobs"),
            Self::ArenaPressure { in_use, capacity } => write!(
                f,
                "shared-memory arena under pressure ({in_use} of {capacity} bytes live)"
            ),
            Self::ProgramTooLarge {
                user_bytes,
                available,
            } => write!(
                f,
                "program image needs {user_bytes} B of local memory per PE, only {available} B free"
            ),
            Self::UnknownProgram(name) => write!(f, "no program named {name:?} in the library"),
            Self::BadProgram(e) => write!(f, "program does not parse: {e}"),
            Self::NoSuchTask { main, defined } => write!(
                f,
                "no tasktype {main} (program defines: {})",
                defined.join(", ")
            ),
            Self::MachineUnavailable(e) => write!(f, "machine unavailable: {e}"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Capacity thresholds consulted at submit time.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Maximum queued (admitted but not yet running) jobs.
    pub max_queue: usize,
    /// Refuse new jobs while the arena's live fraction exceeds this.
    pub arena_high_fraction: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            max_queue: 64,
            arena_high_fraction: 0.85,
        }
    }
}

impl AdmissionPolicy {
    /// Gate on queue depth.
    pub fn check_queue(&self, queued: usize) -> Result<(), RejectReason> {
        if queued >= self.max_queue {
            Err(RejectReason::QueueFull {
                limit: self.max_queue,
            })
        } else {
            Ok(())
        }
    }

    /// Gate on shared-memory arena occupancy.
    pub fn check_arena(&self, in_use: usize, capacity: usize) -> Result<(), RejectReason> {
        if capacity > 0 && (in_use as f64 / capacity as f64) > self.arena_high_fraction {
            Err(RejectReason::ArenaPressure { in_use, capacity })
        } else {
            Ok(())
        }
    }

    /// Gate on the program image fitting the tightest PE's local memory.
    pub fn check_fit(&self, user_bytes: usize, available: usize) -> Result<(), RejectReason> {
        if user_bytes > available {
            Err(RejectReason::ProgramTooLarge {
                user_bytes,
                available,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_gate_rejects_at_limit() {
        let p = AdmissionPolicy {
            max_queue: 2,
            ..Default::default()
        };
        assert!(p.check_queue(0).is_ok());
        assert!(p.check_queue(1).is_ok());
        assert_eq!(
            p.check_queue(2),
            Err(RejectReason::QueueFull { limit: 2 })
        );
    }

    #[test]
    fn arena_gate_uses_fraction() {
        let p = AdmissionPolicy {
            arena_high_fraction: 0.5,
            ..Default::default()
        };
        assert!(p.check_arena(40, 100).is_ok());
        assert!(matches!(
            p.check_arena(60, 100),
            Err(RejectReason::ArenaPressure { .. })
        ));
        // Degenerate capacity never divides by zero.
        assert!(p.check_arena(0, 0).is_ok());
    }

    #[test]
    fn fit_gate_compares_bytes() {
        let p = AdmissionPolicy::default();
        assert!(p.check_fit(100, 100).is_ok());
        assert!(matches!(
            p.check_fit(101, 100),
            Err(RejectReason::ProgramTooLarge { .. })
        ));
    }

    #[test]
    fn kinds_are_stable_and_distinct() {
        let all = [
            RejectReason::QueueFull { limit: 1 }.kind(),
            RejectReason::Draining.kind(),
            RejectReason::ArenaPressure {
                in_use: 1,
                capacity: 2,
            }
            .kind(),
            RejectReason::ProgramTooLarge {
                user_bytes: 1,
                available: 0,
            }
            .kind(),
            RejectReason::UnknownProgram("x".into()).kind(),
            RejectReason::BadProgram("x".into()).kind(),
            RejectReason::NoSuchTask {
                main: "M".into(),
                defined: vec![],
            }
            .kind(),
            RejectReason::MachineUnavailable("x".into()).kind(),
        ];
        let mut dedup = all.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
