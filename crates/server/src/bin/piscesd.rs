//! `piscesd` — the PISCES machine as a daemon.
//!
//! Boots one virtual PISCES machine (a FLEX/32 by default, or a
//! hypercube via `--substrate`) and serves job submissions over a
//! socket until told to drain:
//!
//! ```text
//! piscesd --listen 127.0.0.1:7070 --programs programs --tenants acme=3,batch=1
//! pisces submit pi --addr 127.0.0.1:7070 --tenant acme --arg 1000
//! pisces submit --drain --addr 127.0.0.1:7070
//! ```
//!
//! The listen address decides the transport: a path (contains `/`)
//! binds a Unix-domain socket, anything else a TCP port. The actual
//! accept/serve loop lives in [`pisces_server::daemon`] so tests can
//! run the same daemon in-process.

use pisces_server::daemon::{serve, Listener};
use pisces_server::service::{JobService, ServiceConfig};
use pisces_server::{AdmissionPolicy, SloSpec, TenantWeights};
use std::time::Duration;

struct Options {
    listen: String,
    programs: String,
    max_queue: usize,
    tenants: TenantWeights,
    slo: SloSpec,
    drain_timeout_secs: u64,
    job_timeout_secs: u64,
    clusters: u8,
    slots: u8,
    substrate: Option<pisces_core::substrate::SubstrateSpec>,
    msg_backend: Option<pisces_core::prelude::MsgBackend>,
    pin_pes: bool,
    telemetry_port: Option<u16>,
    flight_dir: Option<String>,
    trace_dir: Option<String>,
    metrics_out: Option<String>,
    fault_seed: Option<u64>,
    slow_pe: Option<(u16, u64, u32)>,
    echo: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: piscesd [options]\n\
         \n\
         options:\n\
           --listen <addr>        TCP host:port, or a Unix socket path (default 127.0.0.1:7070)\n\
           --programs <dir>       program library directory (default programs)\n\
           --max-queue <n>        bounded job queue size (default 64)\n\
           --tenants <spec>       scheduling weights, e.g. acme=3,batch=1 (default: all 1)\n\
           --slo <spec>           per-tenant objectives, e.g. submit_p99=50ms,error_rate=1%\n\
           --drain-timeout <s>    graceful-drain deadline in seconds (default 30)\n\
           --job-timeout <s>      per-job quiescence timeout in seconds (default 60)\n\
           --clusters <n>         clusters per job configuration (default 2)\n\
           --slots <n>            user slots per cluster (default 4)\n\
           --substrate <s>        machine substrate: flex32[:pes] (default) or hypercube[:dim]\n\
           --msg-backend <b>      in-queue backend: mutex (default), mpsc, or spsc\n\
           --pin-pes              pin simulated-PE threads to fixed cores\n\
           --telemetry-port <n>   serve live OpenMetrics on 127.0.0.1:<n> (0 = ephemeral)\n\
           --flight-dir <path>    arm the flight recorder; dumps land in <path>\n\
           --trace-dir <path>     route each job's trace to <path>/job-<id>.jsonl\n\
           --metrics-out <path>   write a final OpenMetrics snapshot at drain\n\
           --fault-seed <n>       arm a seeded fault plan (chaos mode)\n\
           --slow-pe <pe:at:x>    arm one deterministic slow-PE fault: PE <pe> runs\n\
                                  x-times slower from tick <at> (SLO smoke tests)\n\
           --echo                 echo TO USER SEND lines to stdout"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut o = Options {
        listen: "127.0.0.1:7070".into(),
        programs: "programs".into(),
        max_queue: 64,
        tenants: TenantWeights::default(),
        slo: SloSpec::default(),
        drain_timeout_secs: 30,
        job_timeout_secs: 60,
        clusters: 2,
        slots: 4,
        substrate: None,
        msg_backend: None,
        pin_pes: false,
        telemetry_port: None,
        flight_dir: None,
        trace_dir: None,
        metrics_out: None,
        fault_seed: None,
        slow_pe: None,
        echo: false,
    };
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => o.listen = need(&mut args, "--listen"),
            "--programs" => o.programs = need(&mut args, "--programs"),
            "--max-queue" => {
                o.max_queue = need(&mut args, "--max-queue").parse().unwrap_or_else(|_| usage())
            }
            "--tenants" => {
                o.tenants = TenantWeights::parse(&need(&mut args, "--tenants"))
                    .unwrap_or_else(|e| {
                        eprintln!("piscesd: {e}");
                        usage()
                    })
            }
            "--slo" => {
                o.slo = SloSpec::parse(&need(&mut args, "--slo")).unwrap_or_else(|e| {
                    eprintln!("piscesd: {e}");
                    usage()
                })
            }
            "--drain-timeout" => {
                o.drain_timeout_secs = need(&mut args, "--drain-timeout")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--job-timeout" => {
                o.job_timeout_secs = need(&mut args, "--job-timeout")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--clusters" => {
                o.clusters = need(&mut args, "--clusters").parse().unwrap_or_else(|_| usage())
            }
            "--slots" => {
                o.slots = need(&mut args, "--slots").parse().unwrap_or_else(|_| usage())
            }
            "--substrate" => {
                o.substrate = Some(need(&mut args, "--substrate").parse().unwrap_or_else(
                    |e: pisces_core::error::PiscesError| {
                        eprintln!("piscesd: {e}");
                        usage()
                    },
                ))
            }
            "--msg-backend" => {
                o.msg_backend = Some(need(&mut args, "--msg-backend").parse().unwrap_or_else(
                    |e: String| {
                        eprintln!("{e}");
                        usage()
                    },
                ))
            }
            "--pin-pes" => o.pin_pes = true,
            "--telemetry-port" => {
                o.telemetry_port = Some(
                    need(&mut args, "--telemetry-port")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--flight-dir" => o.flight_dir = Some(need(&mut args, "--flight-dir")),
            "--trace-dir" => o.trace_dir = Some(need(&mut args, "--trace-dir")),
            "--metrics-out" => o.metrics_out = Some(need(&mut args, "--metrics-out")),
            "--fault-seed" => {
                o.fault_seed = Some(
                    need(&mut args, "--fault-seed")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--slow-pe" => {
                let spec = need(&mut args, "--slow-pe");
                let mut it = spec.split(':');
                o.slow_pe = (|| {
                    Some((
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                    ))
                })();
                if o.slow_pe.is_none() || it.next().is_some() {
                    eprintln!("piscesd: --slow-pe wants <pe>:<at_tick>:<factor>, got {spec:?}");
                    usage()
                }
            }
            "--echo" => o.echo = true,
            _ => usage(),
        }
    }
    o
}

fn main() {
    let o = parse_args();

    let mut machine = pisces_core::prelude::MachineConfig::simple(o.clusters, o.slots);
    if let Some(spec) = o.substrate {
        machine.substrate = spec;
    }
    if let Some(b) = o.msg_backend {
        machine.msg_backend = b;
    }
    machine.pin_pes = o.pin_pes;
    if o.telemetry_port.is_some() {
        machine.telemetry.port = o.telemetry_port;
    }
    if o.flight_dir.is_some() {
        machine.telemetry.flight_dir = o.flight_dir.clone();
    }

    let cfg = ServiceConfig {
        machine,
        programs: pisces_config::ProgramLibrary::open(&o.programs),
        policy: AdmissionPolicy {
            max_queue: o.max_queue,
            ..AdmissionPolicy::default()
        },
        weights: o.tenants.clone(),
        slo: o.slo.clone(),
        job_timeout: Duration::from_secs(o.job_timeout_secs),
        drain_timeout: Duration::from_secs(o.drain_timeout_secs),
        trace_dir: o.trace_dir.clone().map(Into::into),
        // A deterministic slow-PE wins over the seeded random plan: the
        // SLO smoke needs a fault that delays jobs without failing them.
        fault_plan: match (o.slow_pe, o.fault_seed) {
            (Some((pe, at, factor)), seed) => Some(
                pisces_core::prelude::FaultPlan::new(seed.unwrap_or(0)).slow_pe(pe, at, factor),
            ),
            (None, Some(seed)) => Some(pisces_core::prelude::FaultPlan::random(
                seed,
                &[2, 3, 4, 5],
                2_000_000,
            )),
            (None, None) => None,
        },
        echo: o.echo,
    };
    let service = match JobService::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("piscesd: cannot start: {e}");
            std::process::exit(1);
        }
    };

    let listener = match Listener::bind(&o.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("piscesd: cannot bind {}: {e}", o.listen);
            std::process::exit(1);
        }
    };
    // Report the bound address (port 0 picks an ephemeral TCP port).
    println!("piscesd: listening on {}", listener.local_addr());

    serve(service, listener, o.metrics_out.clone());
    println!("piscesd: drained, exiting");
}
