//! `piscesd` — the PISCES machine as a daemon.
//!
//! Boots one virtual PISCES machine (a FLEX/32 by default, or a
//! hypercube via `--substrate`) and serves job submissions over a
//! socket until told to drain:
//!
//! ```text
//! piscesd --listen 127.0.0.1:7070 --programs programs --tenants acme=3,batch=1
//! pisces submit pi --addr 127.0.0.1:7070 --tenant acme --arg 1000
//! pisces submit --drain --addr 127.0.0.1:7070
//! ```
//!
//! The listen address decides the transport: a path (contains `/`)
//! binds a Unix-domain socket, anything else a TCP port.

use pisces_server::protocol::{read_frame, write_frame, FrameError, Request, Response};
use pisces_server::service::{JobOutcome, JobService, ServiceConfig};
use pisces_server::{AdmissionPolicy, TenantWeights};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Options {
    listen: String,
    programs: String,
    max_queue: usize,
    tenants: TenantWeights,
    drain_timeout_secs: u64,
    job_timeout_secs: u64,
    clusters: u8,
    slots: u8,
    substrate: Option<pisces_core::substrate::SubstrateSpec>,
    msg_backend: Option<pisces_core::prelude::MsgBackend>,
    pin_pes: bool,
    telemetry_port: Option<u16>,
    flight_dir: Option<String>,
    trace_dir: Option<String>,
    metrics_out: Option<String>,
    fault_seed: Option<u64>,
    echo: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: piscesd [options]\n\
         \n\
         options:\n\
           --listen <addr>        TCP host:port, or a Unix socket path (default 127.0.0.1:7070)\n\
           --programs <dir>       program library directory (default programs)\n\
           --max-queue <n>        bounded job queue size (default 64)\n\
           --tenants <spec>       scheduling weights, e.g. acme=3,batch=1 (default: all 1)\n\
           --drain-timeout <s>    graceful-drain deadline in seconds (default 30)\n\
           --job-timeout <s>      per-job quiescence timeout in seconds (default 60)\n\
           --clusters <n>         clusters per job configuration (default 2)\n\
           --slots <n>            user slots per cluster (default 4)\n\
           --substrate <s>        machine substrate: flex32[:pes] (default) or hypercube[:dim]\n\
           --msg-backend <b>      in-queue backend: mutex (default), mpsc, or spsc\n\
           --pin-pes              pin simulated-PE threads to fixed cores\n\
           --telemetry-port <n>   serve live OpenMetrics on 127.0.0.1:<n> (0 = ephemeral)\n\
           --flight-dir <path>    arm the flight recorder; dumps land in <path>\n\
           --trace-dir <path>     route each job's trace to <path>/job-<id>.jsonl\n\
           --metrics-out <path>   write a final OpenMetrics snapshot at drain\n\
           --fault-seed <n>       arm a seeded fault plan (chaos mode)\n\
           --echo                 echo TO USER SEND lines to stdout"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut o = Options {
        listen: "127.0.0.1:7070".into(),
        programs: "programs".into(),
        max_queue: 64,
        tenants: TenantWeights::default(),
        drain_timeout_secs: 30,
        job_timeout_secs: 60,
        clusters: 2,
        slots: 4,
        substrate: None,
        msg_backend: None,
        pin_pes: false,
        telemetry_port: None,
        flight_dir: None,
        trace_dir: None,
        metrics_out: None,
        fault_seed: None,
        echo: false,
    };
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => o.listen = need(&mut args, "--listen"),
            "--programs" => o.programs = need(&mut args, "--programs"),
            "--max-queue" => {
                o.max_queue = need(&mut args, "--max-queue").parse().unwrap_or_else(|_| usage())
            }
            "--tenants" => {
                o.tenants = TenantWeights::parse(&need(&mut args, "--tenants"))
                    .unwrap_or_else(|e| {
                        eprintln!("piscesd: {e}");
                        usage()
                    })
            }
            "--drain-timeout" => {
                o.drain_timeout_secs = need(&mut args, "--drain-timeout")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--job-timeout" => {
                o.job_timeout_secs = need(&mut args, "--job-timeout")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--clusters" => {
                o.clusters = need(&mut args, "--clusters").parse().unwrap_or_else(|_| usage())
            }
            "--slots" => {
                o.slots = need(&mut args, "--slots").parse().unwrap_or_else(|_| usage())
            }
            "--substrate" => {
                o.substrate = Some(need(&mut args, "--substrate").parse().unwrap_or_else(
                    |e: pisces_core::error::PiscesError| {
                        eprintln!("piscesd: {e}");
                        usage()
                    },
                ))
            }
            "--msg-backend" => {
                o.msg_backend = Some(need(&mut args, "--msg-backend").parse().unwrap_or_else(
                    |e: String| {
                        eprintln!("{e}");
                        usage()
                    },
                ))
            }
            "--pin-pes" => o.pin_pes = true,
            "--telemetry-port" => {
                o.telemetry_port = Some(
                    need(&mut args, "--telemetry-port")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--flight-dir" => o.flight_dir = Some(need(&mut args, "--flight-dir")),
            "--trace-dir" => o.trace_dir = Some(need(&mut args, "--trace-dir")),
            "--metrics-out" => o.metrics_out = Some(need(&mut args, "--metrics-out")),
            "--fault-seed" => {
                o.fault_seed = Some(
                    need(&mut args, "--fault-seed")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--echo" => o.echo = true,
            _ => usage(),
        }
    }
    o
}

enum Listener {
    Tcp(std::net::TcpListener),
    Unix(std::os::unix::net::UnixListener),
}

enum Conn {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

fn main() {
    let o = parse_args();

    let mut machine = pisces_core::prelude::MachineConfig::simple(o.clusters, o.slots);
    if let Some(spec) = o.substrate {
        machine.substrate = spec;
    }
    if let Some(b) = o.msg_backend {
        machine.msg_backend = b;
    }
    machine.pin_pes = o.pin_pes;
    if o.telemetry_port.is_some() {
        machine.telemetry.port = o.telemetry_port;
    }
    if o.flight_dir.is_some() {
        machine.telemetry.flight_dir = o.flight_dir.clone();
    }

    let cfg = ServiceConfig {
        machine,
        programs: pisces_config::ProgramLibrary::open(&o.programs),
        policy: AdmissionPolicy {
            max_queue: o.max_queue,
            ..AdmissionPolicy::default()
        },
        weights: o.tenants.clone(),
        job_timeout: Duration::from_secs(o.job_timeout_secs),
        drain_timeout: Duration::from_secs(o.drain_timeout_secs),
        trace_dir: o.trace_dir.clone().map(Into::into),
        fault_plan: o.fault_seed.map(|seed| {
            pisces_core::prelude::FaultPlan::random(seed, &[2, 3, 4, 5], 2_000_000)
        }),
        echo: o.echo,
    };
    let service = match JobService::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("piscesd: cannot start: {e}");
            std::process::exit(1);
        }
    };

    let listener = if o.listen.contains('/') {
        let _ = std::fs::remove_file(&o.listen);
        match std::os::unix::net::UnixListener::bind(&o.listen) {
            Ok(l) => Listener::Unix(l),
            Err(e) => {
                eprintln!("piscesd: cannot bind {}: {e}", o.listen);
                std::process::exit(1);
            }
        }
    } else {
        match std::net::TcpListener::bind(&o.listen) {
            Ok(l) => Listener::Tcp(l),
            Err(e) => {
                eprintln!("piscesd: cannot bind {}: {e}", o.listen);
                std::process::exit(1);
            }
        }
    };
    match &listener {
        Listener::Tcp(l) => {
            // Report the bound address (port 0 picks an ephemeral port).
            if let Ok(a) = l.local_addr() {
                println!("piscesd: listening on {a}");
            }
            l.set_nonblocking(true).expect("nonblocking listener");
        }
        Listener::Unix(l) => {
            println!("piscesd: listening on {}", o.listen);
            l.set_nonblocking(true).expect("nonblocking listener");
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let conn = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).ok();
                    Some(Conn::Tcp(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    eprintln!("piscesd: accept: {e}");
                    None
                }
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).ok();
                    Some(Conn::Unix(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    eprintln!("piscesd: accept: {e}");
                    None
                }
            },
        };
        match conn {
            None => std::thread::sleep(Duration::from_millis(20)),
            Some(conn) => {
                let service = service.clone();
                let stop = stop.clone();
                let draining = draining.clone();
                let metrics_out = o.metrics_out.clone();
                handles.push(std::thread::spawn(move || {
                    serve_connection(conn, service, stop, draining, metrics_out)
                }));
            }
        }
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
    if o.listen.contains('/') {
        let _ = std::fs::remove_file(&o.listen);
    }
    println!("piscesd: drained, exiting");
}

/// Serve one connection: any number of request/response exchanges. A
/// `submit` blocks this connection (and only this connection) until its
/// job finishes; other connections keep submitting meanwhile.
fn serve_connection(
    mut conn: Conn,
    service: Arc<JobService>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    metrics_out: Option<String>,
) {
    loop {
        let req = match read_frame(&mut conn) {
            Ok(v) => match Request::from_json(&v) {
                Ok(r) => r,
                Err(e) => {
                    let _ = write_frame(
                        &mut conn,
                        &Response::Error {
                            message: e.to_string(),
                        }
                        .to_json(),
                    );
                    continue;
                }
            },
            Err(FrameError::Closed) => return,
            Err(e @ (FrameError::Oversized { .. } | FrameError::BadJson(_))) => {
                // Tell the peer what was wrong with the frame, then hang
                // up: the stream is no longer in sync.
                let _ = write_frame(
                    &mut conn,
                    &Response::Error {
                        message: e.to_string(),
                    }
                    .to_json(),
                );
                return;
            }
            Err(_) => return,
        };
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Status => Response::Status(service.status()),
            Request::Submit {
                tenant,
                program,
                main,
                args,
            } => match service.submit(&tenant, &program, &main, &args) {
                Err(reason) => Response::Rejected {
                    kind: reason.kind().to_string(),
                    reason: reason.to_string(),
                },
                Ok((_, rx)) => match rx.recv() {
                    Ok(JobOutcome::Done(reply)) => Response::Done(reply),
                    Ok(JobOutcome::Refused(reason)) => Response::Rejected {
                        kind: reason.kind().to_string(),
                        reason: reason.to_string(),
                    },
                    Err(_) => Response::Error {
                        message: "job result channel lost".into(),
                    },
                },
            },
            Request::Drain => {
                if draining.swap(true, Ordering::SeqCst) {
                    Response::Error {
                        message: "drain already in progress".into(),
                    }
                } else {
                    let machine = service.machine();
                    let summary = service.drain();
                    if let Some(path) = &metrics_out {
                        let body = pisces_core::telemetry::render_openmetrics(&machine);
                        if let Err(e) = std::fs::write(path, body) {
                            eprintln!("piscesd: cannot write {path}: {e}");
                        }
                    }
                    if let Some(dump) = &summary.flight_dump {
                        println!("piscesd: flight recorder dumped to {}", dump.display());
                    }
                    stop.store(true, Ordering::SeqCst);
                    Response::DrainDone {
                        finished: summary.finished,
                        unserved: summary.unserved,
                    }
                }
            }
        };
        let done = matches!(resp, Response::DrainDone { .. });
        if write_frame(&mut conn, &resp.to_json()).is_err() {
            return;
        }
        if done {
            return;
        }
    }
}
