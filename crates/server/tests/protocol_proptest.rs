//! Property tests for the wire protocol: the frame decoder and JSON
//! parser must never panic, whatever bytes arrive — a remote tenant owns
//! the entire input space. Encoded frames must also round-trip exactly.

use pisces_server::json;
use pisces_server::protocol::{
    decode_frame, encode_frame, FrameError, ProgramRef, Request,
};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes: the decoder returns a value or a typed error,
    /// never panics, and never reports consuming more than it was given.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        match decode_frame(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(
                FrameError::Closed
                | FrameError::Oversized { .. }
                | FrameError::Truncated { .. }
                | FrameError::BadJson(_)
                | FrameError::BadMessage(_)
                | FrameError::Io(_),
            ) => {}
        }
    }

    /// Arbitrary bytes fed straight to the JSON parser: same contract.
    #[test]
    fn json_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = json::parse(&bytes);
    }

    /// Any JSON-encodable string survives the submit round trip intact:
    /// encode → frame → decode → parse recovers the exact request.
    #[test]
    fn submit_round_trips(
        tenant in "\\PC{0,40}",
        source in "\\PC{0,200}",
        main in "[A-Z][A-Z0-9]{0,10}",
        args in proptest::collection::vec("\\PC{0,20}", 0..4),
    ) {
        let req = Request::Submit {
            tenant,
            program: ProgramRef::Inline(source),
            main,
            args,
        };
        let frame = encode_frame(&req.to_json());
        let (v, used) = decode_frame(&frame).unwrap();
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(Request::from_json(&v).unwrap(), req);
    }

    /// Truncating a valid frame anywhere yields a typed error, not a
    /// panic and not a bogus success.
    #[test]
    fn truncation_is_always_typed(cut_fraction in 0.0f64..1.0) {
        let req = Request::Submit {
            tenant: "acme".into(),
            program: ProgramRef::Named("pi".into()),
            main: "MAIN".into(),
            args: vec!["1000".into()],
        };
        let frame = encode_frame(&req.to_json());
        let cut = ((frame.len() - 1) as f64 * cut_fraction) as usize;
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Closed | FrameError::Truncated { .. }) => {}
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }
}
