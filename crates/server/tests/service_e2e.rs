//! End-to-end tests for the job service: multi-tenant fairness, admission
//! control, per-job isolation, graceful drain, and the TCP wire path.

use pisces_server::protocol::{read_frame, write_frame, ProgramRef, Request, Response};
use pisces_server::service::{JobOutcome, JobService, ServiceConfig};
use pisces_server::{AdmissionPolicy, SloSpec, TenantWeights};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const QUICK: &str = "TASK MAIN\nPRINT 'DONE', 1\nEND TASK\n";
const SLOW: &str = "TASK MAIN\n\
                    INTEGER I\n\
                    REAL X\n\
                    X = 0.0\n\
                    DO I = 1, 200000\n\
                    X = X + I\n\
                    END DO\n\
                    PRINT 'SLOW', 1\n\
                    END TASK\n";

fn quick_service(max_queue: usize, weights: &str) -> Arc<JobService> {
    let cfg = ServiceConfig {
        machine: pisces_core::prelude::MachineConfig::simple(1, 4),
        programs: pisces_config::ProgramLibrary::open("/nonexistent-program-library"),
        policy: AdmissionPolicy {
            max_queue,
            ..AdmissionPolicy::default()
        },
        weights: TenantWeights::parse(weights).unwrap(),
        slo: SloSpec::default(),
        job_timeout: Duration::from_secs(30),
        drain_timeout: Duration::from_secs(30),
        trace_dir: None,
        fault_plan: None,
        echo: false,
    };
    JobService::start(cfg).expect("service boots")
}

fn inline(src: &str) -> ProgramRef {
    ProgramRef::Inline(src.to_string())
}

#[test]
fn two_tenants_hundred_jobs_none_lost_none_duplicated() {
    let svc = quick_service(256, "");
    // One greedy tenant floods 70 jobs up front; a light tenant trickles
    // 35 in behind it. 105 jobs total, ≥2 tenants — the acceptance bar.
    let mut greedy = Vec::new();
    for _ in 0..70 {
        greedy.push(svc.submit("greedy", &inline(QUICK), "MAIN", &[]).unwrap());
    }
    let mut light = Vec::new();
    for _ in 0..35 {
        light.push(svc.submit("light", &inline(QUICK), "MAIN", &[]).unwrap());
    }

    let mut ids = std::collections::HashSet::new();
    let mut greedy_done = Vec::new();
    let mut light_done = Vec::new();
    for (id, rx) in greedy {
        match rx.recv_timeout(Duration::from_secs(120)).expect("result arrives") {
            JobOutcome::Done(r) => {
                assert!(r.ok, "greedy job {id} failed: {:?}", r.error);
                assert_eq!(r.job_id, id);
                assert_eq!(r.tenant, "greedy");
                assert!(ids.insert(r.job_id), "duplicate job id {}", r.job_id);
                assert_eq!(r.output, vec!["DONE 1"], "job {id} output bled");
                greedy_done.push(r);
            }
            JobOutcome::Refused(e) => panic!("greedy job {id} refused: {e}"),
        }
    }
    for (id, rx) in light {
        match rx.recv_timeout(Duration::from_secs(120)).expect("result arrives") {
            JobOutcome::Done(r) => {
                assert!(r.ok, "light job {id} failed: {:?}", r.error);
                assert!(ids.insert(r.job_id), "duplicate job id {}", r.job_id);
                light_done.push(r);
            }
            JobOutcome::Refused(e) => panic!("light job {id} refused: {e}"),
        }
    }
    assert_eq!(ids.len(), 105, "every job exactly once");

    // Per-job stats were scoped: a quick one-task job initiates exactly
    // one task, every time — not a cumulative, ever-growing figure.
    for r in greedy_done.iter().chain(light_done.iter()) {
        let initiated = r
            .stats
            .iter()
            .find(|(k, _)| k == "tasks initiated")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(initiated, 1, "job {} saw bleed-through stats", r.job_id);
    }

    let status = svc.status();
    assert_eq!(status.finished, 105);
    assert_eq!(status.failed, 0);
    let drain = svc.drain();
    assert_eq!(drain.finished, 105);
    assert_eq!(drain.unserved, 0);
}

#[test]
fn light_tenant_is_not_starved_by_a_greedy_one() {
    let svc = quick_service(256, "greedy=1,light=1");
    // Submit the greedy backlog first so it owns the queue, then the
    // light tenant's single job. Fair scheduling must dispatch the light
    // job within a round or two, not after the whole backlog.
    let order = Arc::new(AtomicU64::new(0));
    let mut greedy = Vec::new();
    for _ in 0..30 {
        greedy.push(svc.submit("greedy", &inline(QUICK), "MAIN", &[]).unwrap());
    }
    let (light_id, light_rx) = svc.submit("light", &inline(QUICK), "MAIN", &[]).unwrap();

    let counter = order.clone();
    let light_pos = std::thread::spawn(move || {
        let _ = light_rx.recv_timeout(Duration::from_secs(120)).unwrap();
        counter.load(Ordering::SeqCst)
    });
    let mut handles = Vec::new();
    for (_, rx) in greedy {
        let counter = order.clone();
        handles.push(std::thread::spawn(move || {
            let _ = rx.recv_timeout(Duration::from_secs(120)).unwrap();
            counter.fetch_add(1, Ordering::SeqCst);
        }));
    }
    let pos = light_pos.join().unwrap();
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        pos <= 4,
        "light job {light_id} finished after {pos} greedy jobs — starved"
    );
    svc.drain();
}

#[test]
fn admission_rejects_with_reasons() {
    let svc = quick_service(2, "");
    // Unknown library name.
    let e = svc
        .submit("t", &ProgramRef::Named("ghost".into()), "MAIN", &[])
        .unwrap_err();
    assert_eq!(e.kind(), "unknown-program");
    // Unparseable inline source.
    let e = svc
        .submit("t", &inline("THIS IS NOT PISCES FORTRAN"), "MAIN", &[])
        .unwrap_err();
    assert_eq!(e.kind(), "bad-program");
    // Wrong top-level tasktype.
    let e = svc.submit("t", &inline(QUICK), "NOPE", &[]).unwrap_err();
    assert_eq!(e.kind(), "no-such-task");
    // Queue bound: hold the worker on a slow job, then overfill.
    let (_, slow_rx) = svc.submit("t", &inline(SLOW), "MAIN", &[]).unwrap();
    let mut queued = Vec::new();
    let mut saw_queue_full = false;
    for _ in 0..8 {
        match svc.submit("t", &inline(QUICK), "MAIN", &[]) {
            Ok(pending) => queued.push(pending),
            Err(e) => {
                assert_eq!(e.kind(), "queue-full");
                saw_queue_full = true;
                break;
            }
        }
    }
    assert!(saw_queue_full, "queue bound never engaged");
    assert_eq!(svc.status().rejected, 4);
    slow_rx.recv_timeout(Duration::from_secs(60)).unwrap();
    for (_, rx) in queued {
        rx.recv_timeout(Duration::from_secs(60)).unwrap();
    }
    svc.drain();
}

#[test]
fn jobs_are_isolated_between_resets() {
    let svc = quick_service(16, "");
    // Job 1 defines tasktype WORKER; job 2 is a different program that
    // must not see it (tasktypes are cleared by the reset), and job 2's
    // console must not carry job 1's output.
    let prog1 = "TASK MAIN\n\
                 INTEGER TOTAL\n\
                 TOTAL = 0\n\
                 ON CLUSTER 1 INITIATE WORKER(2)\n\
                 ACCEPT 1 OF\n\
                 R\n\
                 END ACCEPT\n\
                 PRINT 'ONE', TOTAL\n\
                 END TASK\n\
                 TASK WORKER(N)\n\
                 TO PARENT SEND R(N)\n\
                 END TASK\n\
                 HANDLER R(V)\n\
                 TOTAL = TOTAL + V\n\
                 END HANDLER\n";
    let (_, rx1) = svc.submit("a", &inline(prog1), "MAIN", &[]).unwrap();
    let r1 = match rx1.recv_timeout(Duration::from_secs(60)).unwrap() {
        JobOutcome::Done(r) => r,
        JobOutcome::Refused(e) => panic!("refused: {e}"),
    };
    assert!(r1.ok, "job 1 failed: {:?}", r1.error);
    assert!(r1.output.iter().any(|l| l == "ONE 2"), "output: {:?}", r1.output);

    // A program whose MAIN tries to initiate job 1's WORKER: it must be
    // admitted (admission only checks its own tasktypes) but fail at
    // runtime IF isolation held. Simpler and sharper: a clean job's
    // output contains only its own lines.
    let (_, rx2) = svc.submit("b", &inline(QUICK), "MAIN", &[]).unwrap();
    let r2 = match rx2.recv_timeout(Duration::from_secs(60)).unwrap() {
        JobOutcome::Done(r) => r,
        JobOutcome::Refused(e) => panic!("refused: {e}"),
    };
    assert!(r2.ok);
    assert_eq!(r2.output, vec!["DONE 1"], "job 2 saw job 1's console");
    svc.drain();
}

#[test]
fn drain_refuses_new_work_and_reports_counts() {
    let svc = quick_service(16, "");
    for _ in 0..3 {
        let (_, rx) = svc.submit("t", &inline(QUICK), "MAIN", &[]).unwrap();
        rx.recv_timeout(Duration::from_secs(60)).unwrap();
    }
    let summary = svc.drain();
    assert_eq!(summary.finished, 3);
    assert_eq!(summary.unserved, 0);
    let e = svc.submit("t", &inline(QUICK), "MAIN", &[]).unwrap_err();
    assert_eq!(e.kind(), "draining");
}

/// The full wire path: a real TCP socket serving the protocol in front
/// of a real service, driven by the library client.
#[test]
fn tcp_round_trip_serves_submissions() {
    use pisces_server::{Client, ClientError};

    let svc = quick_service(16, "");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server_svc = svc.clone();
    let server = std::thread::spawn(move || {
        // Serve exactly two connections, any number of requests each.
        for _ in 0..2 {
            let (mut conn, _) = listener.accept().unwrap();
            loop {
                let v = match read_frame(&mut conn) {
                    Ok(v) => v,
                    Err(_) => break,
                };
                let resp = match Request::from_json(&v) {
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                    Ok(Request::Ping) => Response::Pong,
                    Ok(Request::Status) => Response::Status(server_svc.status()),
                    Ok(Request::Drain) => break,
                    Ok(Request::Submit {
                        tenant,
                        program,
                        main,
                        args,
                    }) => match server_svc.submit(&tenant, &program, &main, &args) {
                        Err(reason) => Response::Rejected {
                            kind: reason.kind().to_string(),
                            reason: reason.to_string(),
                        },
                        Ok((_, rx)) => match rx.recv().unwrap() {
                            JobOutcome::Done(r) => Response::Done(r),
                            JobOutcome::Refused(reason) => Response::Rejected {
                                kind: reason.kind().to_string(),
                                reason: reason.to_string(),
                            },
                        },
                    },
                };
                if write_frame(&mut conn, &resp.to_json()).is_err() {
                    break;
                }
            }
        }
    });

    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
    let resp = c
        .request(&Request::Submit {
            tenant: "wire".into(),
            program: ProgramRef::Inline(QUICK.into()),
            main: "MAIN".into(),
            args: vec![],
        })
        .unwrap();
    match resp {
        Response::Done(r) => {
            assert!(r.ok);
            assert_eq!(r.tenant, "wire");
            assert_eq!(r.output, vec!["DONE 1"]);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    let resp = c
        .request(&Request::Submit {
            tenant: "wire".into(),
            program: ProgramRef::Named("ghost".into()),
            main: "MAIN".into(),
            args: vec![],
        })
        .unwrap();
    assert!(matches!(resp, Response::Rejected { ref kind, .. } if kind == "unknown-program"));
    drop(c);

    // A second connection still works, then errors are typed, not hangs.
    let mut c2 = Client::connect(&addr).unwrap();
    match c2.request(&Request::Status).unwrap() {
        Response::Status(s) => assert_eq!(s.finished, 1),
        other => panic!("unexpected response: {other:?}"),
    }
    let _ = c2.request(&Request::Drain);
    server.join().unwrap();
    svc.drain();

    // Connecting to a dead port is a transport error.
    drop(std::net::TcpListener::bind("127.0.0.1:0").map(|l| {
        let dead = l.local_addr().unwrap().to_string();
        drop(l);
        assert!(matches!(
            Client::connect(&dead),
            Err(ClientError::Transport(_))
        ));
    }));
}
