//! Consolidated observability report: per-PE utilization timelines and
//! latency histograms, live (from a machine's retained records) or
//! off-line (from a JSONL trace file via `pisces report <trace.jsonl>`).
//!
//! Builds on [`TraceAnalysis`] — which derives task lifetimes and matched
//! send→accept pairs — and adds the views a load-balancing study needs:
//! how busy each PE was over its run, and the *distribution* (p50/p90/p99)
//! of message latency and barrier-arrival spread, not just means.

use crate::analysis::TraceAnalysis;
use crate::causality::CausalGraph;
use pisces_core::metrics::HistogramSnapshot;
use pisces_core::taskid::TaskId;
use pisces_core::trace::{TraceEventKind, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A half-open busy interval `[start, end)` on one PE's tick clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First busy tick.
    pub start: u64,
    /// First tick after the busy period.
    pub end: u64,
}

/// One PE's busy/idle profile, derived from task init/term events: the PE
/// counts as busy whenever at least one traced task is alive on it.
#[derive(Debug, Clone)]
pub struct PeUtilization {
    /// The PE.
    pub pe: u16,
    /// Last tick reading observed on this PE (its activity horizon).
    pub horizon: u64,
    /// Merged busy intervals, in time order.
    pub busy: Vec<Interval>,
    /// Total busy ticks (sum of interval lengths).
    pub busy_ticks: u64,
}

impl PeUtilization {
    /// Busy fraction of the horizon, 0.0–1.0.
    pub fn utilization(&self) -> f64 {
        if self.horizon == 0 {
            0.0
        } else {
            self.busy_ticks as f64 / self.horizon as f64
        }
    }
}

/// Sweep one PE's task init/term edges into merged busy intervals.
fn sweep(mut edges: Vec<(u64, i64)>, horizon: u64) -> (Vec<Interval>, u64) {
    edges.sort();
    let mut busy = Vec::new();
    let mut live = 0i64;
    let mut opened = 0u64;
    let mut total = 0u64;
    for (t, d) in edges {
        if live == 0 && d > 0 {
            opened = t;
        }
        live += d;
        if live == 0 && d < 0 && t > opened {
            busy.push(Interval {
                start: opened,
                end: t,
            });
            total += t - opened;
        }
    }
    // Tasks still alive at the end of the trace keep the PE busy to its
    // horizon.
    if live > 0 && horizon > opened {
        busy.push(Interval {
            start: opened,
            end: horizon,
        });
        total += horizon - opened;
    }
    (busy, total)
}

/// Per-PE utilization from an analysis' task lifetimes.
pub fn pe_utilization(analysis: &TraceAnalysis) -> Vec<PeUtilization> {
    let mut edges: BTreeMap<u16, Vec<(u64, i64)>> = BTreeMap::new();
    for t in analysis.tasks.values() {
        let e = edges.entry(t.pe).or_default();
        e.push((t.init_ticks, 1));
        if let Some(term) = t.term_ticks {
            e.push((term, -1));
        }
    }
    edges
        .into_iter()
        .map(|(pe, e)| {
            let horizon = analysis.pe_horizon.get(&pe).copied().unwrap_or(0);
            let (busy, busy_ticks) = sweep(e, horizon);
            PeUtilization {
                pe,
                horizon,
                busy,
                busy_ticks,
            }
        })
        .collect()
}

/// Message send→accept latency histogram from the analysis' matched
/// pairs. Same-PE samples are exact; cross-PE samples compare two
/// unsynchronized clocks and are clamped at 0.
pub fn msg_latency_histogram(analysis: &TraceAnalysis) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::empty("msg_latency", "ticks");
    for m in &analysis.matched {
        h.add(m.latency_ticks().max(0) as u64);
    }
    h
}

/// Barrier arrival-spread histogram: for each barrier round of each
/// force, the tick spread between the first and last member to arrive —
/// the direct load-imbalance signal. Members of one force share a task
/// id and stamp `member i/N` in the info field; barrier semantics
/// guarantee all N round-k entries precede any round-k+1 entry, so
/// consecutive chunks of N records (in seq order) are rounds. Spreads
/// compare different PEs' clocks, so they are approximate.
pub fn barrier_spread_histogram(records: &[TraceRecord]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::empty("barrier_spread", "ticks");
    let mut per_task: BTreeMap<TaskId, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        if r.kind == TraceEventKind::Barrier {
            per_task.entry(r.task).or_default().push(r);
        }
    }
    for entries in per_task.values_mut() {
        entries.sort_by_key(|r| r.seq);
        let size = entries
            .first()
            .and_then(|r| r.info.rsplit('/').next())
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        for round in entries.chunks(size) {
            if round.len() < 2 {
                continue;
            }
            let lo = round.iter().map(|r| r.ticks).min().unwrap_or(0);
            let hi = round.iter().map(|r| r.ticks).max().unwrap_or(0);
            h.add(hi - lo);
        }
    }
    h
}

/// Fault activity in a trace: the faults the injector fired (PE
/// fail-stops, slowdowns, allocation failures, link perturbations) and
/// the runtime's recovery actions (retries, fault notices, force
/// shrinks), in trace order.
#[derive(Debug, Default)]
pub struct FaultSummary {
    /// Event count per fault/recovery trace kind, label-keyed.
    pub counts: BTreeMap<&'static str, u64>,
    /// Human-readable fault timeline entries, in seq order.
    pub events: Vec<String>,
}

/// The trace kinds that belong in the Faults section.
const FAULT_KINDS: [TraceEventKind; 9] = [
    TraceEventKind::PeFail,
    TraceEventKind::PeSlow,
    TraceEventKind::AllocFault,
    TraceEventKind::MsgDrop,
    TraceEventKind::MsgDup,
    TraceEventKind::MsgDelay,
    TraceEventKind::MsgRetry,
    TraceEventKind::FaultNotice,
    TraceEventKind::ForceShrink,
];

/// Collect the fault timeline from trace records.
pub fn fault_summary(records: &[TraceRecord]) -> FaultSummary {
    let mut fs = FaultSummary::default();
    let mut hits: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| FAULT_KINDS.contains(&r.kind))
        .collect();
    hits.sort_by_key(|r| r.seq);
    for r in hits {
        *fs.counts.entry(r.kind.label()).or_insert(0) += 1;
        fs.events.push(format!(
            "{:>10} PE{:<3} {:<12} {}",
            r.ticks,
            r.pe,
            r.kind.label(),
            r.info
        ));
    }
    fs
}

impl FaultSummary {
    /// Whether any fault or recovery event appeared in the trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The "FAULTS" report section.
    pub fn render(&self) -> String {
        let mut s = String::from("FAULTS\n");
        if self.is_empty() {
            s.push_str("  (none injected)\n");
            return s;
        }
        for (label, n) in &self.counts {
            let _ = writeln!(s, "  {label:<12} {n}");
        }
        s.push_str("  timeline (ticks on the event's own PE clock):\n");
        for e in &self.events {
            let _ = writeln!(s, "  {e}");
        }
        s
    }
}

/// Bulk window-transfer activity in a trace: one `BULK-XFER` event per
/// batched gather/scatter/move (see `pisces_core::transfer`), with the
/// size distribution that tells a partitioning study whether transfers
/// are chunky (good) or degenerate into element-sized traffic.
#[derive(Debug)]
pub struct TransferSummary {
    /// Transfer count per verb (GET, PUT, MOVE, GET-POST, PUT-FLUSH).
    pub counts: BTreeMap<String, u64>,
    /// Distribution of transfer sizes in 64-bit words.
    pub words: HistogramSnapshot,
    /// Human-readable transfer timeline entries, in seq order.
    pub events: Vec<String>,
}

/// Collect the bulk-transfer timeline from trace records. The info field
/// of a `BULK-XFER` record reads `VERB RxC (N words) array <id>`.
pub fn transfer_summary(records: &[TraceRecord]) -> TransferSummary {
    let mut ts = TransferSummary {
        counts: BTreeMap::new(),
        words: HistogramSnapshot::empty("transfer_words", "words"),
        events: Vec::new(),
    };
    let mut hits: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.kind == TraceEventKind::BulkTransfer)
        .collect();
    hits.sort_by_key(|r| r.seq);
    for r in hits {
        let verb = r.info.split_whitespace().next().unwrap_or("?").to_string();
        *ts.counts.entry(verb).or_insert(0) += 1;
        if let Some(n) = r
            .info
            .split_once('(')
            .and_then(|(_, rest)| rest.split_whitespace().next())
            .and_then(|n| n.parse::<u64>().ok())
        {
            ts.words.add(n);
        }
        ts.events
            .push(format!("{:>10} PE{:<3} {}", r.ticks, r.pe, r.info));
    }
    ts
}

impl TransferSummary {
    /// Whether any bulk transfer appeared in the trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The "TRANSFERS" report section.
    pub fn render(&self) -> String {
        let mut s = String::from("TRANSFERS\n");
        if self.is_empty() {
            s.push_str("  (no bulk window transfers)\n");
            return s;
        }
        for (verb, n) in &self.counts {
            let _ = writeln!(s, "  {verb:<12} {n}");
        }
        s.push_str(&self.words.to_string());
        s.push_str("  timeline (ticks on the requester's PE clock):\n");
        for e in &self.events {
            let _ = writeln!(s, "  {e}");
        }
        s
    }
}

/// The full observability report over one trace.
#[derive(Debug)]
pub struct Report {
    /// The underlying event-level analysis.
    pub analysis: TraceAnalysis,
    /// Per-PE busy/idle profiles.
    pub utilization: Vec<PeUtilization>,
    /// Message delivery latency distribution.
    pub msg_latency: HistogramSnapshot,
    /// Barrier arrival-spread distribution.
    pub barrier_spread: HistogramSnapshot,
    /// Injected faults and recovery actions.
    pub faults: FaultSummary,
    /// Bulk window-transfer activity.
    pub transfers: TransferSummary,
    /// Happens-before DAG over the trace (critical path, Perfetto
    /// export).
    pub causal: CausalGraph,
    /// Job-lifecycle (`JOB$`) and SLO alert (`ALERT$`) records, kept
    /// for the SPANS section and the Perfetto job-slice lanes.
    pub lifecycle: Vec<TraceRecord>,
}

impl Report {
    /// Build the report from trace records.
    pub fn new(records: &[TraceRecord]) -> Self {
        let analysis = TraceAnalysis::new(records);
        let utilization = pe_utilization(&analysis);
        let msg_latency = msg_latency_histogram(&analysis);
        let barrier_spread = barrier_spread_histogram(records);
        let faults = fault_summary(records);
        let transfers = transfer_summary(records);
        let causal = CausalGraph::new(records);
        let lifecycle = records
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    TraceEventKind::JobLifecycle | TraceEventKind::SloAlert
                )
            })
            .cloned()
            .collect();
        Self {
            analysis,
            utilization,
            msg_latency,
            barrier_spread,
            faults,
            transfers,
            causal,
            lifecycle,
        }
    }

    /// Build the report from a JSONL trace file's contents.
    pub fn from_jsonl(data: &str) -> Result<Self, serde_json::Error> {
        Ok(Self::new(&pisces_core::trace::Tracer::parse_jsonl(data)?))
    }

    /// Build the report from a JSONL trace file that may be damaged —
    /// a crashed run's tail, a truncated copy, interleaved writers.
    /// Malformed lines are skipped; the count of skipped lines comes
    /// back alongside the report so the caller can warn (or, under
    /// `--strict`, refuse).
    pub fn from_jsonl_lossy(data: &str) -> (Self, usize) {
        let (records, skipped) = pisces_core::trace::Tracer::parse_jsonl_lossy(data);
        (Self::new(&records), skipped)
    }

    /// Per-PE utilization timeline: one lane per PE (`#` busy, `.` idle
    /// against that PE's own tick clock) with a busy percentage.
    pub fn timeline(&self, width: usize) -> String {
        let width = width.max(20);
        let mut s = String::from("PE UTILIZATION (per-PE tick clocks; # busy, . idle)\n");
        if self.utilization.is_empty() {
            s.push_str("  (no task events in trace)\n");
            return s;
        }
        for u in &self.utilization {
            let horizon = u.horizon.max(1);
            let mut lane = vec![b'.'; width];
            for iv in &u.busy {
                let a = ((iv.start * width as u64 / horizon) as usize).min(width - 1);
                let b = ((iv.end * width as u64).div_ceil(horizon) as usize).clamp(a + 1, width);
                for c in lane.iter_mut().take(b).skip(a) {
                    *c = b'#';
                }
            }
            let _ = writeln!(
                s,
                "  PE{:<3} |{}| {:>5.1}% busy ({} of {} ticks)",
                u.pe,
                String::from_utf8(lane).expect("ascii"),
                u.utilization() * 100.0,
                u.busy_ticks,
                u.horizon
            );
        }
        s
    }

    /// The complete textual report: timeline, histograms, and the
    /// event-level analysis.
    pub fn render(&self, width: usize) -> String {
        let mut s = self.timeline(width);
        s.push('\n');
        s.push_str(&self.msg_latency.to_string());
        s.push_str(&self.barrier_spread.to_string());
        s.push('\n');
        s.push_str(&self.faults.render());
        s.push('\n');
        s.push_str(&self.transfers.render());
        s.push('\n');
        s.push_str(&self.causal.render_critical_path(5));
        s.push('\n');
        let spans = pisces_core::spans::render_spans(&self.lifecycle, width);
        if !spans.is_empty() {
            s.push_str(&spans);
            s.push('\n');
        }
        s.push_str(&self.analysis.report());
        s
    }

    /// The trace as Chrome `trace_event` JSON for Perfetto /
    /// `chrome://tracing` (see [`CausalGraph::to_perfetto`]). When the
    /// trace carries `JOB$` records, the job-lifecycle slices (one lane
    /// per tenant under a synthetic "service" process, with queued /
    /// running sub-slices and `ALERT$` instants) ride along next to the
    /// causal event lanes.
    pub fn to_perfetto(&self) -> String {
        let mut out = self.causal.to_perfetto();
        let extra = pisces_core::spans::spans_to_perfetto_events(&self.lifecycle);
        if !extra.is_empty() {
            if let Some(i) = out.rfind("],\"displayTimeUnit\"") {
                let sep = if out[..i].ends_with('[') { "" } else { "," };
                out.insert_str(i, &format!("{sep}{}", extra.join(",")));
            }
        }
        out
    }

    /// The report as an OpenMetrics text document — the same exposition
    /// format the live telemetry endpoint serves, derived off-line from
    /// the trace so dashboards can ingest dead runs too. Contains event
    /// counts per trace kind, per-PE activity horizons, the latency and
    /// barrier-spread distributions, and the fault tally.
    pub fn to_openmetrics(&self) -> String {
        use pisces_core::telemetry::{openmetrics_gauge, openmetrics_histogram};
        let mut s = String::new();

        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for r in &self.causal.nodes {
            *by_kind.entry(r.kind.label()).or_insert(0) += 1;
        }
        s.push_str("# TYPE pisces_trace_events counter\n");
        s.push_str("# HELP pisces_trace_events Trace records in this file, by event kind.\n");
        for (label, n) in &by_kind {
            let _ = writeln!(s, "pisces_trace_events_total{{kind=\"{label}\"}} {n}");
        }

        openmetrics_gauge(
            &mut s,
            "pisces_pe_ticks",
            "Last virtual-clock reading observed per PE (its activity horizon).",
        );
        for u in &self.utilization {
            let _ = writeln!(s, "pisces_pe_ticks{{pe=\"{}\"}} {}", u.pe, u.horizon);
        }
        openmetrics_gauge(
            &mut s,
            "pisces_pe_busy_ticks",
            "Ticks each PE spent with at least one traced task alive.",
        );
        for u in &self.utilization {
            let _ = writeln!(s, "pisces_pe_busy_ticks{{pe=\"{}\"}} {}", u.pe, u.busy_ticks);
        }

        openmetrics_histogram(
            &mut s,
            "pisces_msg_latency_ticks",
            "Message send-to-accept latency from matched trace pairs.",
            &self.msg_latency,
        );
        openmetrics_histogram(
            &mut s,
            "pisces_barrier_spread_ticks",
            "First-to-last arrival spread per barrier round.",
            &self.barrier_spread,
        );

        s.push_str("# TYPE pisces_fault_events counter\n");
        s.push_str("# HELP pisces_fault_events Injected faults and recovery actions, by kind.\n");
        for (label, n) in &self.faults.counts {
            let _ = writeln!(s, "pisces_fault_events_total{{kind=\"{label}\"}} {n}");
        }

        s.push_str("# EOF\n");
        s
    }

    /// The trace folded into collapsed-stack format for flamegraph
    /// tooling: one `PE;task;category count` line per bucket, where the
    /// category mirrors the critical-path blame taxonomy (compute /
    /// message-wait / barrier-wait / pool-alloc, plus transfer). Each
    /// tick interval between consecutive events on one (task, PE) lane
    /// is charged to the category of the event that *ended* it — time
    /// leading up to a barrier entry was spent reaching (or waiting for)
    /// that barrier.
    pub fn to_folded(&self) -> String {
        fn category(kind: TraceEventKind) -> &'static str {
            match kind {
                TraceEventKind::AllocFault => "pool-alloc",
                TraceEventKind::Barrier
                | TraceEventKind::BarrierRelease
                | TraceEventKind::ForceJoin => "barrier-wait",
                TraceEventKind::MsgAccept
                | TraceEventKind::MsgRetry
                | TraceEventKind::MsgDelay
                | TraceEventKind::FaultNotice => "message-wait",
                TraceEventKind::BulkTransfer => "transfer",
                _ => "compute",
            }
        }
        // One sequential lane per (task, PE) pair — the same lanes the
        // causal graph threads program-order edges through.
        let mut lanes: BTreeMap<(TaskId, u16), Vec<&TraceRecord>> = BTreeMap::new();
        for r in &self.causal.nodes {
            lanes.entry((r.task, r.pe)).or_default().push(r);
        }
        let mut folded: BTreeMap<(u16, TaskId, &'static str), u64> = BTreeMap::new();
        for ((task, pe), recs) in &lanes {
            // causal.nodes is seq-sorted, so each lane already is too.
            for pair in recs.windows(2) {
                let ticks = pair[1].ticks.saturating_sub(pair[0].ticks);
                if ticks > 0 {
                    *folded.entry((*pe, *task, category(pair[1].kind))).or_insert(0) += ticks;
                }
            }
        }
        let mut s = String::new();
        for ((pe, task, cat), ticks) in &folded {
            let _ = writeln!(s, "PE{pe};{task};{cat} {ticks}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: TraceEventKind, task: TaskId, pe: u16, ticks: u64, info: &str) -> TraceRecord {
        TraceRecord {
            seq: ticks,
            kind,
            task,
            pe,
            ticks,
            info: info.into(),
            parent: None,
            cause: None,
        }
    }

    #[test]
    fn report_carries_job_spans_into_render_and_perfetto() {
        let t = TaskId::new(1, 1, 1);
        let mk = |seq: u64, info: &str| TraceRecord {
            seq,
            kind: TraceEventKind::JobLifecycle,
            task: t,
            pe: 0,
            ticks: seq,
            info: info.into(),
            parent: seq.checked_sub(1),
            cause: None,
        };
        let records = vec![
            mk(0, "submit job=4 tenant=acme t_us=100"),
            mk(1, "admitted job=4 tenant=acme t_us=120"),
            mk(2, "queued job=4 tenant=acme t_us=121"),
            mk(3, "scheduled job=4 tenant=acme t_us=900"),
            mk(4, "running job=4 tenant=acme t_us=950"),
            mk(5, "done job=4 tenant=acme t_us=5000 queued_ms=0 run_ms=4 ok=true"),
        ];
        let r = Report::new(&records);
        assert_eq!(r.lifecycle.len(), 6);
        let text = r.render(72);
        assert!(text.contains("SPANS"), "{text}");
        assert!(
            text.contains("submit→admitted→queued→scheduled→running→done"),
            "{text}"
        );
        let perfetto = r.to_perfetto();
        assert!(perfetto.contains("\"job 4\""), "{perfetto}");
        assert!(perfetto.contains("tenant acme"), "{perfetto}");
        // The splice must keep the document well-formed JSON.
        let parsed: serde_json::Value = serde_json::from_str(&perfetto).unwrap();
        assert!(!parsed["traceEvents"].as_array().unwrap().is_empty());
    }

    #[test]
    fn utilization_from_overlapping_tasks() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        // Two tasks on PE3: [0,60) and [40,100) — busy [0,100), horizon 100.
        let records = vec![
            rec(TraceEventKind::TaskInit, a, 3, 0, "alpha parent=c0.s0#0"),
            rec(TraceEventKind::TaskInit, b, 3, 40, "beta parent=c0.s0#0"),
            rec(TraceEventKind::TaskTerm, a, 3, 60, "ok"),
            rec(TraceEventKind::TaskTerm, b, 3, 100, "ok"),
        ];
        let r = Report::new(&records);
        assert_eq!(r.utilization.len(), 1);
        let u = &r.utilization[0];
        assert_eq!(u.pe, 3);
        assert_eq!(u.busy, vec![Interval { start: 0, end: 100 }]);
        assert_eq!(u.utilization(), 1.0);
    }

    #[test]
    fn utilization_with_idle_gap() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        // [0,30) busy, [30,70) idle, [70,100) busy → 60% of horizon 100.
        let records = vec![
            rec(TraceEventKind::TaskInit, a, 3, 0, "alpha p"),
            rec(TraceEventKind::TaskTerm, a, 3, 30, "ok"),
            rec(TraceEventKind::TaskInit, b, 3, 70, "beta p"),
            rec(TraceEventKind::TaskTerm, b, 3, 100, "ok"),
        ];
        let r = Report::new(&records);
        let u = &r.utilization[0];
        assert_eq!(u.busy.len(), 2);
        assert_eq!(u.busy_ticks, 60);
        assert!((u.utilization() - 0.6).abs() < 1e-9);
        let tl = r.timeline(50);
        assert!(tl.contains("PE3"), "{tl}");
        assert!(tl.contains('#') && tl.contains('.'), "{tl}");
    }

    #[test]
    fn unterminated_task_busy_to_horizon() {
        let a = TaskId::new(1, 2, 1);
        let records = vec![
            rec(TraceEventKind::TaskInit, a, 3, 10, "alpha p"),
            // Horizon pushed to 50 by a later event on the same PE.
            rec(TraceEventKind::Barrier, a, 3, 50, "member 0/1"),
        ];
        let r = Report::new(&records);
        let u = &r.utilization[0];
        assert_eq!(u.busy, vec![Interval { start: 10, end: 50 }]);
    }

    #[test]
    fn latency_histogram_from_matched_pairs() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        let records = vec![
            rec(TraceEventKind::MsgSend, a, 3, 100, &format!("PING -> {b}")),
            rec(
                TraceEventKind::MsgAccept,
                b,
                3,
                130,
                &format!("PING <- {a}"),
            ),
        ];
        let r = Report::new(&records);
        assert_eq!(r.msg_latency.count, 1);
        assert_eq!(r.msg_latency.max, 30);
        let text = r.render(40);
        assert!(text.contains("msg_latency"), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn barrier_rounds_chunk_by_member_count() {
        let t = TaskId::new(1, 2, 1);
        // Force of 2: two rounds, spreads 5 and 20.
        let mut records = vec![
            rec(TraceEventKind::Barrier, t, 3, 100, "member 0/2"),
            rec(TraceEventKind::Barrier, t, 4, 105, "member 1/2"),
            rec(TraceEventKind::Barrier, t, 3, 200, "member 0/2"),
            rec(TraceEventKind::Barrier, t, 4, 220, "member 1/2"),
        ];
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let h = barrier_spread_histogram(&records);
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 20);
    }

    #[test]
    fn empty_trace_renders_without_panic() {
        let r = Report::new(&[]);
        let text = r.render(40);
        assert!(text.contains("no task events"), "{text}");
        assert!(text.contains("msg_latency"));
        assert!(text.contains("FAULTS"), "{text}");
        assert!(text.contains("none injected"), "{text}");
    }

    #[test]
    fn faults_section_lists_events_in_order() {
        let t = TaskId::new(1, 2, 1);
        let mut records = vec![
            rec(
                TraceEventKind::PeFail,
                t,
                5,
                900,
                "fault[0]: fail-stop PE5 at tick 800",
            ),
            rec(
                TraceEventKind::MsgRetry,
                t,
                1,
                950,
                "DATA -> c1.s2#1: PE5 down, retry 1/3",
            ),
            rec(
                TraceEventKind::MsgRetry,
                t,
                1,
                1150,
                "DATA -> c1.s2#1: PE5 down, retry 2/3",
            ),
            rec(
                TraceEventKind::FaultNotice,
                t,
                1,
                1400,
                "DATA -> c1.s2#1 undeliverable",
            ),
            rec(TraceEventKind::ForceShrink, t, 5, 1500, "member 2/4 left"),
        ];
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let r = Report::new(&records);
        assert_eq!(r.faults.counts[TraceEventKind::MsgRetry.label()], 2);
        assert_eq!(r.faults.events.len(), 5);
        let text = r.faults.render();
        assert!(text.contains("PE-FAIL"), "{text}");
        let timeline = &text[text.find("timeline").unwrap()..];
        let fail_pos = timeline.find("PE-FAIL").unwrap();
        let shrink_pos = timeline.find("FORCE-SHRINK").unwrap();
        assert!(fail_pos < shrink_pos, "timeline out of order: {text}");
    }

    #[test]
    fn transfers_section_tallies_verbs_and_sizes() {
        let t = TaskId::new(1, 2, 1);
        let mut records = vec![
            rec(
                TraceEventKind::BulkTransfer,
                t,
                3,
                100,
                "GET 16x16 (256 words) array c1.s2#1/0",
            ),
            rec(
                TraceEventKind::BulkTransfer,
                t,
                3,
                150,
                "PUT 1x8 (8 words) array c1.s2#1/0",
            ),
            rec(
                TraceEventKind::BulkTransfer,
                t,
                4,
                200,
                "MOVE 4x4 (16 words) array c1.s2#1/1",
            ),
            rec(
                TraceEventKind::BulkTransfer,
                t,
                3,
                250,
                "GET 2x2 (4 words) array c1.s2#1/0",
            ),
        ];
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let r = Report::new(&records);
        assert_eq!(r.transfers.counts["GET"], 2);
        assert_eq!(r.transfers.counts["PUT"], 1);
        assert_eq!(r.transfers.counts["MOVE"], 1);
        assert_eq!(r.transfers.words.count, 4);
        assert_eq!(r.transfers.words.max, 256);
        assert_eq!(r.transfers.words.sum, 284);
        let text = r.render(40);
        assert!(text.contains("TRANSFERS"), "{text}");
        assert!(text.contains("transfer_words"), "{text}");
        let timeline = &text[text.find("requester's PE clock").unwrap()..];
        let get_pos = timeline.find("GET 16x16").unwrap();
        let move_pos = timeline.find("MOVE 4x4").unwrap();
        assert!(get_pos < move_pos, "timeline out of order: {text}");
    }

    #[test]
    fn transfers_section_renders_empty_placeholder() {
        let r = Report::new(&[]);
        assert!(r.transfers.is_empty());
        let text = r.render(40);
        assert!(text.contains("no bulk window transfers"), "{text}");
    }

    #[test]
    fn lossy_load_counts_skipped_lines() {
        let a = TaskId::new(1, 2, 1);
        let records = vec![
            rec(TraceEventKind::TaskInit, a, 3, 0, "alpha p"),
            rec(TraceEventKind::TaskTerm, a, 3, 50, "ok"),
        ];
        let mut jsonl = String::new();
        for r in &records {
            jsonl.push_str(&serde_json::to_string(r).unwrap());
            jsonl.push('\n');
        }
        let damaged = format!("not json\n{jsonl}{{\"trunc");
        assert!(Report::from_jsonl(&damaged).is_err());
        let (report, skipped) = Report::from_jsonl_lossy(&damaged);
        assert_eq!(skipped, 2);
        assert_eq!(report.causal.nodes.len(), 2);
        let (clean, none) = Report::from_jsonl_lossy(&jsonl);
        assert_eq!(none, 0);
        assert_eq!(clean.causal.nodes.len(), 2);
    }

    #[test]
    fn openmetrics_counts_kinds_and_ends_eof() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        let mut records = vec![
            rec(TraceEventKind::TaskInit, a, 3, 0, "alpha p"),
            rec(TraceEventKind::MsgSend, a, 3, 100, &format!("PING -> {b}")),
            rec(TraceEventKind::MsgAccept, b, 3, 130, &format!("PING <- {a}")),
            rec(TraceEventKind::PeFail, a, 5, 200, "fail-stop PE5"),
            rec(TraceEventKind::TaskTerm, a, 3, 250, "ok"),
        ];
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let text = Report::new(&records).to_openmetrics();
        assert!(text.contains("# TYPE pisces_trace_events counter"), "{text}");
        assert!(
            text.contains("pisces_trace_events_total{kind=\"MSG-SEND\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pisces_fault_events_total{kind=\"PE-FAIL\"} 1"),
            "{text}"
        );
        assert!(text.contains("pisces_pe_ticks{pe=\"3\"} 250"), "{text}");
        assert!(
            text.contains("pisces_msg_latency_ticks_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.ends_with("# EOF\n"), "{text}");
    }

    #[test]
    fn folded_output_charges_intervals_to_ending_event() {
        let a = TaskId::new(1, 2, 1);
        let mut records = vec![
            rec(TraceEventKind::TaskInit, a, 3, 0, "alpha p"),
            // 0→40 ends in a barrier entry: barrier-wait.
            rec(TraceEventKind::Barrier, a, 3, 40, "member 0/1"),
            // 40→100 ends in plain termination: compute.
            rec(TraceEventKind::TaskTerm, a, 3, 100, "ok"),
        ];
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let folded = Report::new(&records).to_folded();
        let mut buckets: BTreeMap<&str, u64> = BTreeMap::new();
        for line in folded.lines() {
            let (stack, n) = line.rsplit_once(' ').unwrap();
            buckets.insert(stack, n.parse().unwrap());
        }
        assert_eq!(buckets[format!("PE3;{a};barrier-wait").as_str()], 40);
        assert_eq!(buckets[format!("PE3;{a};compute").as_str()], 60);
    }

    #[test]
    fn folded_output_is_empty_for_empty_trace() {
        assert!(Report::new(&[]).to_folded().is_empty());
    }
}
