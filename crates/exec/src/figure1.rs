//! Rendering of the virtual-machine organization — the paper's Figure 1.
//!
//! Figure 1 of the paper shows the clusters side by side, each listing its
//! slots (task controller, user controller, user tasks, `<not in use>`),
//! the intra-cluster network, the machine-wide message-passing network,
//! and a disk attached to a cluster with a file controller. This module
//! redraws that diagram from the *live* state of a booted machine, so the
//! experiment harness can regenerate the figure rather than copy it.

use pisces_core::machine::Pisces;
use pisces_core::task::{FIRST_USER_SLOT, TASK_CONTROLLER_SLOT, USER_CONTROLLER_SLOT};
use std::fmt::Write;

/// Render the Figure-1 style organization diagram of a running machine.
pub fn render(p: &Pisces) -> String {
    let tasks = p.snapshot_tasks();
    let mut s = String::from("PISCES 2 VIRTUAL MACHINE ORGANIZATION\n");
    let _ = writeln!(s, "{}", "=".repeat(54));
    for c in &p.config().clusters {
        let _ = writeln!(
            s,
            "CLUSTER {}   (primary PE{}, force PEs {:?})",
            c.number, c.primary_pe, c.secondary_pes
        );
        let _ = writeln!(s, "  Slots");
        // Controller slots first, then user slots — as in the figure.
        for t in tasks.iter().filter(|t| {
            t.id.cluster == c.number && t.is_controller && t.id.slot == TASK_CONTROLLER_SLOT
        }) {
            let _ = writeln!(
                s,
                "  | Task controller {:<18} <--+  Intra-",
                t.id.to_string()
            );
        }
        for t in tasks.iter().filter(|t| {
            t.id.cluster == c.number && t.is_controller && t.id.slot == USER_CONTROLLER_SLOT
        }) {
            let _ = writeln!(
                s,
                "  | User controller {:<18} <--+  cluster",
                t.id.to_string()
            );
        }
        for slot_idx in 0..c.slots {
            let slot = FIRST_USER_SLOT + slot_idx;
            match tasks
                .iter()
                .find(|t| t.id.cluster == c.number && t.id.slot == slot && !t.is_controller)
            {
                Some(t) => {
                    let _ = writeln!(
                        s,
                        "  | User task {:<10} {:<13} <--+  Network",
                        t.tasktype,
                        t.id.to_string()
                    );
                }
                None => {
                    let _ = writeln!(s, "  | <not in use>                       <--+");
                }
            }
        }
        let _ = writeln!(s, "  +{}+", "-".repeat(40));
        let _ = writeln!(s, "        |");
    }
    let _ = writeln!(s, "  Message-passing Network (shared memory)");
    let _ = writeln!(
        s,
        "  Disk on PE1/PE2 (Unix) -- file controller serves file windows"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisces_core::prelude::*;
    use std::time::Duration;

    #[test]
    fn figure_shows_clusters_controllers_and_free_slots() {
        let p = Pisces::boot(MachineConfig::simple(3, 2)).unwrap();
        let fig = render(&p);
        assert!(fig.contains("CLUSTER 1"));
        assert!(fig.contains("CLUSTER 3"));
        assert!(fig.contains("Task controller"));
        assert!(fig.contains("User controller"), "terminal cluster shown");
        assert!(fig.contains("<not in use>"));
        assert!(fig.contains("Message-passing Network"));
        p.shutdown();
    }

    #[test]
    fn figure_shows_running_user_tasks() {
        let p = Pisces::boot(MachineConfig::simple(1, 2)).unwrap();
        p.register("waiter", |ctx: &TaskCtx| {
            let _ = ctx
                .accept()
                .signal_count("GO", 1)
                .delay_then(Duration::from_secs(10), || {})
                .run()?;
            Ok(())
        });
        p.initiate_top_level(1, "waiter", vec![]).unwrap();
        // Wait until the task shows up.
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(10));
            if p.snapshot_tasks().iter().any(|t| t.tasktype == "waiter") {
                break;
            }
        }
        let fig = render(&p);
        assert!(fig.contains("User task waiter"), "{fig}");
        p.shutdown();
    }
}
