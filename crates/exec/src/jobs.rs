//! Per-job trace and report routing for service mode.
//!
//! When `piscesd` runs with `--trace-dir`, every finished job's trace
//! window is cut out of the machine's tracer *before* the between-jobs
//! reset clears it, and written as its own pair of artifacts:
//!
//! * `job-<id>.jsonl` — the raw trace records, the same JSONL the
//!   off-line analyzer (`pisces report`) reads;
//! * `job-<id>.report.txt` — the rendered Section 12 report for the job.
//!
//! Routing per job (rather than one growing file) keeps tenants'
//! executions separable: a tenant can be handed exactly their job's
//! timing analysis and nothing else.

use crate::report::Report;
use pisces_core::trace::TraceRecord;
use std::path::{Path, PathBuf};

/// Where a job's artifacts landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobArtifacts {
    /// The raw trace (JSONL), readable by `pisces report`.
    pub trace: PathBuf,
    /// The rendered timing report.
    pub report: PathBuf,
}

/// Write `records` as `job-<id>.jsonl` plus a rendered report under
/// `dir`, creating the directory if needed.
pub fn write_job_artifacts(
    dir: &Path,
    job_id: u64,
    records: &[TraceRecord],
) -> std::io::Result<JobArtifacts> {
    std::fs::create_dir_all(dir)?;
    let trace = dir.join(format!("job-{job_id}.jsonl"));
    let mut jsonl = String::new();
    for r in records {
        match serde_json::to_string(r) {
            Ok(line) => {
                jsonl.push_str(&line);
                jsonl.push('\n');
            }
            Err(_) => continue, // a record that cannot serialize is dropped, not fatal
        }
    }
    std::fs::write(&trace, jsonl)?;
    let report = dir.join(format!("job-{job_id}.report.txt"));
    std::fs::write(&report, Report::new(records).render(72))?;
    Ok(JobArtifacts { trace, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_both_artifacts() {
        let dir = std::env::temp_dir().join(format!(
            "pisces-job-artifacts-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let a = write_job_artifacts(&dir, 7, &[]).unwrap();
        assert!(a.trace.ends_with("job-7.jsonl"));
        assert!(a.report.ends_with("job-7.report.txt"));
        assert!(a.trace.is_file());
        assert!(a.report.is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
