//! Causal analysis of a trace: the happens-before DAG, critical-path
//! extraction with blame attribution, and Chrome/Perfetto export.
//!
//! Every trace event may carry two causal references assigned at emit
//! time (see `pisces_core::trace::Tracer::emit_causal`):
//!
//! * `parent` — the preceding event of the *same activity* (program
//!   order): the previous retry in a retry chain, a member's previous
//!   barrier arrival, a task's own TASK-INIT.
//! * `cause` — the event on *another* task or thread that enabled this
//!   one: the MSG-SEND behind a MSG-ACCEPT, the FORCE-SPLIT behind a
//!   member start, the posting BULK-XFER behind its completion.
//!
//! [`CausalGraph`] reconstructs the DAG from those references plus the
//! implicit per-lane program order (events of one task on one PE, in
//! global seq order). Because seqs are assigned by a single atomic
//! counter *at the moment each event happens*, a well-formed trace can
//! only reference strictly earlier events — any edge pointing forward or
//! at a missing seq is recorded as a violation and the graph reports
//! itself cyclic/ill-formed rather than panicking.
//!
//! [`CausalGraph::critical_path`] runs the classic longest-path sweep
//! over the DAG (single pass in seq order — topological by construction)
//! and attributes every tick of the winning path to a [`Blame`] bucket:
//! compute, message-wait, barrier-wait, or pool-alloc. The result is
//! deterministic for a fixed input: ties break toward the earlier event.
//!
//! [`CausalGraph::to_perfetto`] serializes the whole trace as Chrome
//! `trace_event` JSON — one Perfetto process per PE, one thread per
//! task, instant events for every record, flow arrows (`ph:"s"`/`"f"`)
//! for every cross-PE message edge, with the ones on the critical path
//! tagged `cat:"msg.critical"`. The JSON is built by hand (no serde
//! round-trip) so exports work even where `serde_json` is stubbed out.

use pisces_core::taskid::TaskId;
use pisces_core::trace::{TraceEventKind, TraceRecord};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// How one event came to reference another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Implicit program order within one (task, PE) lane.
    Program,
    /// The record's explicit `parent` reference.
    Parent,
    /// The record's explicit `cause` reference.
    Cause,
}

/// One happens-before edge, by node index into [`CausalGraph::nodes`].
#[derive(Debug, Clone, Copy)]
pub struct CausalEdge {
    /// Index of the earlier event.
    pub from: usize,
    /// Index of the later event.
    pub to: usize,
    /// Why the edge exists.
    pub kind: EdgeKind,
}

/// What a stretch of the critical path was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Blame {
    /// Plain forward progress on one lane.
    Compute,
    /// Waiting for a message to arrive (send→accept, retry chains,
    /// fault notices).
    MessageWait,
    /// Waiting at a barrier or a force join for a straggler.
    BarrierWait,
    /// Stalled on shared-memory pool allocation.
    PoolAlloc,
}

impl Blame {
    /// Stable label used in reports and tests.
    pub fn label(self) -> &'static str {
        match self {
            Blame::Compute => "compute",
            Blame::MessageWait => "message-wait",
            Blame::BarrierWait => "barrier-wait",
            Blame::PoolAlloc => "pool-alloc",
        }
    }
}

/// One aggregated blame bucket of the critical path.
#[derive(Debug, Clone)]
pub struct BlameEntry {
    /// What the time went to.
    pub blame: Blame,
    /// Task whose event terminated each charged edge.
    pub task: TaskId,
    /// PE that event was stamped on.
    pub pe: u16,
    /// Ticks attributed to this bucket.
    pub ticks: u64,
}

/// The critical (longest) path through the happens-before DAG.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Node indices along the path, in causal order.
    pub nodes: Vec<usize>,
    /// Total tick span accumulated along the path's edges.
    pub span: u64,
    /// Blame buckets, heaviest first (deterministic tie-break).
    pub blame: Vec<BlameEntry>,
}

/// The reconstructed happens-before DAG of one trace.
#[derive(Debug)]
pub struct CausalGraph {
    /// Trace records in seq order (the DAG's nodes).
    pub nodes: Vec<TraceRecord>,
    /// All happens-before edges (program order + parent + cause).
    pub edges: Vec<CausalEdge>,
    /// Causality violations found while building: references to missing
    /// seqs or to events that are not strictly earlier. Empty for any
    /// trace the runtime actually produced.
    pub violations: Vec<String>,
    by_seq: HashMap<u64, usize>,
}

/// Kinds whose events can legitimately put a message in flight (the
/// valid targets of a MSG-ACCEPT's `cause` reference).
fn is_send_like(kind: TraceEventKind) -> bool {
    matches!(
        kind,
        TraceEventKind::MsgSend | TraceEventKind::MsgDup | TraceEventKind::FaultNotice
    )
}

impl CausalGraph {
    /// Build the DAG from trace records (any order; they are re-sorted
    /// by seq).
    pub fn new(records: &[TraceRecord]) -> Self {
        let mut nodes: Vec<TraceRecord> = records.to_vec();
        nodes.sort_by_key(|r| r.seq);
        let by_seq: HashMap<u64, usize> =
            nodes.iter().enumerate().map(|(i, r)| (r.seq, i)).collect();

        let mut edges = Vec::new();
        let mut violations = Vec::new();

        // Implicit program order: consecutive events of one task on one
        // PE. Force members share a task id but run on distinct PEs, so
        // the (task, pe) pair is the finest sequential lane the trace
        // can name.
        let mut lanes: BTreeMap<(TaskId, u16), usize> = BTreeMap::new();
        for (i, r) in nodes.iter().enumerate() {
            if let Some(prev) = lanes.insert((r.task, r.pe), i) {
                edges.push(CausalEdge {
                    from: prev,
                    to: i,
                    kind: EdgeKind::Program,
                });
            }
        }

        // Explicit references. A reference must resolve to a strictly
        // earlier seq; anything else is a violation, not an edge.
        for (i, r) in nodes.iter().enumerate() {
            for (seq, kind) in [(r.parent, EdgeKind::Parent), (r.cause, EdgeKind::Cause)] {
                let Some(seq) = seq else { continue };
                match by_seq.get(&seq) {
                    Some(&j) if nodes[j].seq < r.seq => edges.push(CausalEdge {
                        from: j,
                        to: i,
                        kind,
                    }),
                    Some(_) => violations.push(format!(
                        "event #{} references #{seq} which does not precede it",
                        r.seq
                    )),
                    None => violations.push(format!(
                        "event #{} references missing event #{seq}",
                        r.seq
                    )),
                }
            }
        }

        Self {
            nodes,
            edges,
            violations,
            by_seq,
        }
    }

    /// Whether the graph is a well-formed DAG. Edges are only created
    /// from earlier to later seqs, so the graph is acyclic exactly when
    /// no reference violated that invariant.
    pub fn is_acyclic(&self) -> bool {
        self.violations.is_empty()
    }

    /// Look a node up by its trace seq.
    pub fn node(&self, seq: u64) -> Option<&TraceRecord> {
        self.by_seq.get(&seq).map(|&i| &self.nodes[i])
    }

    /// Seqs of MSG-ACCEPT events with no resolvable send-like cause —
    /// the chaos suites assert this is empty for every scenario.
    pub fn accepts_without_send_cause(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|r| r.kind == TraceEventKind::MsgAccept)
            .filter(|r| {
                !r.cause
                    .and_then(|seq| self.node(seq))
                    .is_some_and(|c| is_send_like(c.kind))
            })
            .map(|r| r.seq)
            .collect()
    }

    /// Blame classification of one edge: what the time along it was
    /// spent waiting on.
    fn classify(&self, e: &CausalEdge) -> Blame {
        let from = &self.nodes[e.from];
        let to = &self.nodes[e.to];
        let barrier = |k: TraceEventKind| {
            matches!(
                k,
                TraceEventKind::Barrier
                    | TraceEventKind::BarrierRelease
                    | TraceEventKind::ForceJoin
            )
        };
        if from.kind == TraceEventKind::AllocFault || to.kind == TraceEventKind::AllocFault {
            Blame::PoolAlloc
        } else if barrier(from.kind) || barrier(to.kind) {
            Blame::BarrierWait
        } else if (e.kind == EdgeKind::Cause && to.kind == TraceEventKind::MsgAccept)
            || matches!(
                to.kind,
                TraceEventKind::MsgRetry | TraceEventKind::MsgDelay | TraceEventKind::FaultNotice
            )
        {
            Blame::MessageWait
        } else {
            Blame::Compute
        }
    }

    /// Longest path through the DAG by accumulated tick deltas.
    ///
    /// Nodes are already topologically ordered (edges always point to
    /// later seqs), so one forward sweep computes the longest distance
    /// to every node. Cross-PE edges compare two unsynchronized virtual
    /// clocks; the delta saturates at zero rather than going negative,
    /// which keeps the result deterministic and monotone. Ties prefer
    /// the earlier predecessor and the earlier endpoint, so the path is
    /// byte-stable for identical traces.
    pub fn critical_path(&self) -> CriticalPath {
        let n = self.nodes.len();
        if n == 0 {
            return CriticalPath {
                nodes: Vec::new(),
                span: 0,
                blame: Vec::new(),
            };
        }
        // Incoming edge lists, preserving insertion (deterministic) order.
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ei, e) in self.edges.iter().enumerate() {
            incoming[e.to].push(ei);
        }
        let mut dist = vec![0u64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            for &ei in &incoming[i] {
                let e = &self.edges[ei];
                let w = self.nodes[i].ticks.saturating_sub(self.nodes[e.from].ticks);
                let cand = dist[e.from].saturating_add(w);
                if cand > dist[i] {
                    dist[i] = cand;
                    pred[i] = Some(ei);
                }
            }
        }
        let end = (0..n).max_by_key(|&i| (dist[i], std::cmp::Reverse(i))).unwrap_or(0);

        let mut path = vec![end];
        let mut blame_map: BTreeMap<(Blame, TaskId, u16), u64> = BTreeMap::new();
        let mut cur = end;
        while let Some(ei) = pred[cur] {
            let e = self.edges[ei];
            let w = self.nodes[e.to].ticks.saturating_sub(self.nodes[e.from].ticks);
            if w > 0 {
                let to = &self.nodes[e.to];
                *blame_map
                    .entry((self.classify(&e), to.task, to.pe))
                    .or_insert(0) += w;
            }
            path.push(e.from);
            cur = e.from;
        }
        path.reverse();

        let mut blame: Vec<BlameEntry> = blame_map
            .into_iter()
            .map(|((b, task, pe), ticks)| BlameEntry {
                blame: b,
                task,
                pe,
                ticks,
            })
            .collect();
        // Heaviest first; BTreeMap iteration order breaks ties stably.
        blame.sort_by(|a, b| b.ticks.cmp(&a.ticks).then(a.blame.cmp(&b.blame)));

        CriticalPath {
            nodes: path,
            span: dist[end],
            blame,
        }
    }

    /// The "CRITICAL PATH" report section: total span, the top blame
    /// buckets, and the path itself (elided in the middle when long).
    pub fn render_critical_path(&self, top: usize) -> String {
        let mut s = String::from("CRITICAL PATH\n");
        if !self.is_acyclic() {
            let _ = writeln!(
                s,
                "  trace is not causally well-formed ({} violation(s)):",
                self.violations.len()
            );
            for v in self.violations.iter().take(5) {
                let _ = writeln!(s, "    {v}");
            }
            return s;
        }
        let cp = self.critical_path();
        if cp.nodes.len() < 2 {
            s.push_str("  (trace too small for a causal path)\n");
            return s;
        }
        let first = &self.nodes[cp.nodes[0]];
        let last = &self.nodes[*cp.nodes.last().expect("nonempty")];
        let _ = writeln!(
            s,
            "  total span: {} ticks over {} events (#{} {} -> #{} {})",
            cp.span,
            cp.nodes.len(),
            first.seq,
            first.kind.label(),
            last.seq,
            last.kind.label(),
        );
        let _ = writeln!(s, "  blame (top {top}):");
        if cp.blame.is_empty() {
            s.push_str("    (no ticks elapsed along the path)\n");
        }
        for b in cp.blame.iter().take(top) {
            let _ = writeln!(
                s,
                "    {:<13} {:<10} PE{:<3} {:>10} ticks",
                b.blame.label(),
                b.task.to_string(),
                b.pe,
                b.ticks
            );
        }
        s.push_str("  path:\n");
        let render_node = |s: &mut String, i: usize| {
            let r = &self.nodes[i];
            let _ = writeln!(
                s,
                "    #{:<6} {:>10} PE{:<3} {:<12} {}",
                r.seq,
                r.ticks,
                r.pe,
                r.kind.label(),
                r.info
            );
        };
        if cp.nodes.len() <= 16 {
            for &i in &cp.nodes {
                render_node(&mut s, i);
            }
        } else {
            for &i in &cp.nodes[..8] {
                render_node(&mut s, i);
            }
            let _ = writeln!(s, "    ... {} more events ...", cp.nodes.len() - 16);
            for &i in &cp.nodes[cp.nodes.len() - 8..] {
                render_node(&mut s, i);
            }
        }
        s
    }

    /// Export the trace as Chrome `trace_event` JSON (the Perfetto /
    /// `chrome://tracing` interchange format).
    ///
    /// Layout: one process per PE (`pid` = PE number), one thread per
    /// task (`tid` assigned in first-appearance order), a complete
    /// (`ph:"X"`) slice per task lifetime, an instant (`ph:"i"`) event
    /// per record, and a flow arrow (`ph:"s"` → `ph:"f"`) per cross-PE
    /// message edge. Flows on the critical path carry
    /// `cat:"msg.critical"`; ticks are exported as microseconds.
    pub fn to_perfetto(&self) -> String {
        let cp = self.critical_path();
        let on_path: Vec<bool> = {
            let mut v = vec![false; self.nodes.len()];
            for &i in &cp.nodes {
                v[i] = true;
            }
            v
        };

        let mut tids: HashMap<TaskId, u32> = HashMap::new();
        let mut next_tid = 1u32;
        let mut tid_of = |task: TaskId, tids: &mut HashMap<TaskId, u32>| -> u32 {
            *tids.entry(task).or_insert_with(|| {
                let t = next_tid;
                next_tid += 1;
                t
            })
        };

        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };

        // Process metadata: one Perfetto process per PE.
        let mut pes: Vec<u16> = self.nodes.iter().map(|r| r.pe).collect();
        pes.sort_unstable();
        pes.dedup();
        for pe in &pes {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pe},\"tid\":0,\
                     \"args\":{{\"name\":\"PE{pe}\"}}}}"
                ),
            );
        }

        // Task lifetime slices from TASK-INIT/TASK-TERM pairs.
        let mut inits: HashMap<TaskId, &TraceRecord> = HashMap::new();
        for r in &self.nodes {
            match r.kind {
                TraceEventKind::TaskInit => {
                    inits.insert(r.task, r);
                }
                TraceEventKind::TaskTerm => {
                    if let Some(init) = inits.remove(&r.task) {
                        let tid = tid_of(r.task, &mut tids);
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"X\",\
                                 \"pid\":{},\"tid\":{tid},\"ts\":{},\"dur\":{}}}",
                                json_escape(&format!("task {}", r.task)),
                                init.pe,
                                init.ticks,
                                r.ticks.saturating_sub(init.ticks),
                            ),
                        );
                    }
                }
                _ => {}
            }
        }

        // Instant events for every record, plus thread metadata on first
        // sight of each task.
        let mut named: Vec<TaskId> = Vec::new();
        for (i, r) in self.nodes.iter().enumerate() {
            let tid = tid_of(r.task, &mut tids);
            if !named.contains(&r.task) {
                named.push(r.task);
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        r.pe,
                        json_escape(&r.task.to_string())
                    ),
                );
            }
            let cat = if on_path[i] { "event.critical" } else { "event" };
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":{},\"tid\":{tid},\"ts\":{},\
                     \"args\":{{\"seq\":{},\"info\":\"{}\"}}}}",
                    json_escape(r.kind.label()),
                    r.pe,
                    r.ticks,
                    r.seq,
                    json_escape(&r.info)
                ),
            );
        }

        // Flow arrows for cross-PE message edges.
        for e in &self.edges {
            if e.kind != EdgeKind::Cause {
                continue;
            }
            let from = &self.nodes[e.from];
            let to = &self.nodes[e.to];
            if to.kind != TraceEventKind::MsgAccept || !is_send_like(from.kind) {
                continue;
            }
            if from.pe == to.pe {
                continue;
            }
            let cat = if on_path[e.from] && on_path[e.to] {
                "msg.critical"
            } else {
                "msg"
            };
            let (ftid, ttid) = (tid_of(from.task, &mut tids), tid_of(to.task, &mut tids));
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"message\",\"cat\":\"{cat}\",\"ph\":\"s\",\"id\":{},\
                     \"pid\":{},\"tid\":{ftid},\"ts\":{}}}",
                    from.seq, from.pe, from.ticks
                ),
            );
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"message\",\"cat\":\"{cat}\",\"ph\":\"f\",\"bp\":\"e\",\
                     \"id\":{},\"pid\":{},\"tid\":{ttid},\"ts\":{}}}",
                    from.seq,
                    to.pe,
                    to.ticks.max(from.ticks)
                ),
            );
        }

        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        seq: u64,
        kind: TraceEventKind,
        task: TaskId,
        pe: u16,
        ticks: u64,
        parent: Option<u64>,
        cause: Option<u64>,
    ) -> TraceRecord {
        TraceRecord {
            seq,
            kind,
            task,
            pe,
            ticks,
            info: format!("{} #{seq}", kind.label()),
            parent,
            cause,
        }
    }

    fn send_accept_trace() -> Vec<TraceRecord> {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(2, 2, 1);
        vec![
            rec(0, TraceEventKind::TaskInit, a, 1, 0, None, None),
            rec(1, TraceEventKind::TaskInit, b, 4, 150, None, None),
            rec(2, TraceEventKind::MsgSend, a, 1, 100, None, None),
            rec(3, TraceEventKind::MsgAccept, b, 4, 180, None, Some(2)),
            rec(4, TraceEventKind::TaskTerm, b, 4, 300, Some(1), None),
            rec(5, TraceEventKind::TaskTerm, a, 1, 120, Some(0), None),
        ]
    }

    #[test]
    fn graph_is_acyclic_and_edges_resolve() {
        let g = CausalGraph::new(&send_accept_trace());
        assert!(g.is_acyclic(), "{:?}", g.violations);
        assert!(g.accepts_without_send_cause().is_empty());
        // Program edges: a-lane 0->2->5, b-lane 1->3->4. Parent: 0->5,
        // 1->4. Cause: 2->3.
        assert_eq!(g.edges.len(), 7);
    }

    #[test]
    fn forward_reference_is_a_violation() {
        let a = TaskId::new(1, 2, 1);
        let records = vec![
            rec(0, TraceEventKind::MsgSend, a, 1, 10, None, Some(1)),
            rec(1, TraceEventKind::MsgAccept, a, 1, 20, None, None),
        ];
        let g = CausalGraph::new(&records);
        assert!(!g.is_acyclic());
        assert_eq!(g.violations.len(), 1);
    }

    #[test]
    fn missing_reference_is_a_violation() {
        let a = TaskId::new(1, 2, 1);
        let records = vec![rec(5, TraceEventKind::MsgAccept, a, 1, 20, None, Some(99))];
        let g = CausalGraph::new(&records);
        assert!(!g.is_acyclic());
        assert_eq!(g.accepts_without_send_cause(), vec![5]);
    }

    #[test]
    fn critical_path_follows_message_edge() {
        let g = CausalGraph::new(&send_accept_trace());
        let cp = g.critical_path();
        // Longest chain: init a (t0) -> send (t100) -> accept (t180)
        // -> term b (t300): span 300.
        assert_eq!(cp.span, 300);
        let kinds: Vec<TraceEventKind> = cp.nodes.iter().map(|&i| g.nodes[i].kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::TaskInit,
                TraceEventKind::MsgSend,
                TraceEventKind::MsgAccept,
                TraceEventKind::TaskTerm,
            ]
        );
        // The send->accept hop is message-wait blame on the receiver.
        assert!(cp
            .blame
            .iter()
            .any(|b| b.blame == Blame::MessageWait && b.ticks == 80));
    }

    #[test]
    fn critical_path_is_deterministic() {
        let records = send_accept_trace();
        let g1 = CausalGraph::new(&records);
        let g2 = CausalGraph::new(&records);
        assert_eq!(g1.render_critical_path(5), g2.render_critical_path(5));
    }

    #[test]
    fn barrier_release_is_barrier_wait_blame() {
        let t = TaskId::new(1, 2, 1);
        let records = vec![
            rec(0, TraceEventKind::ForceSplit, t, 1, 0, None, None),
            rec(1, TraceEventKind::Barrier, t, 1, 50, Some(0), None),
            rec(2, TraceEventKind::Barrier, t, 4, 90, None, Some(0)),
            rec(3, TraceEventKind::BarrierRelease, t, 4, 90, None, Some(2)),
        ];
        let g = CausalGraph::new(&records);
        let cp = g.critical_path();
        assert!(cp
            .blame
            .iter()
            .any(|b| b.blame == Blame::BarrierWait && b.ticks > 0));
    }

    #[test]
    fn render_mentions_span_and_blame() {
        let g = CausalGraph::new(&send_accept_trace());
        let s = g.render_critical_path(5);
        assert!(s.contains("CRITICAL PATH"), "{s}");
        assert!(s.contains("total span: 300 ticks"), "{s}");
        assert!(s.contains("message-wait"), "{s}");
    }

    #[test]
    fn perfetto_export_has_flows_and_balanced_json() {
        let g = CausalGraph::new(&send_accept_trace());
        let json = g.to_perfetto();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"), "{json}");
        // The cross-PE send->accept pair yields one flow start and one
        // flow finish, both on the critical path.
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("msg.critical"), "{json}");
        // Crude balance check (no serde_json offline): every brace pairs.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn perfetto_escapes_info_strings() {
        let a = TaskId::new(1, 2, 1);
        let mut r = rec(0, TraceEventKind::MsgSend, a, 1, 0, None, None);
        r.info = "quote \" backslash \\ newline \n".into();
        let g = CausalGraph::new(&[r]);
        let json = g.to_perfetto();
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"), "{json}");
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let g = CausalGraph::new(&[]);
        assert!(g.is_acyclic());
        let cp = g.critical_path();
        assert_eq!(cp.span, 0);
        assert!(cp.nodes.is_empty());
        assert!(g.render_critical_path(5).contains("too small"));
    }
}
