//! # pisces-exec — the PISCES 2 execution environment
//!
//! "If the user requests program execution from the configuration
//! environment, the loadfile is downloaded to the appropriate set of MMOS
//! PE's, and control transfers to the PISCES execution environment, a
//! program that runs on the 'main' MMOS PE. This program displays a menu
//! with the options:
//!
//! ```text
//! 0 TERMINATE THE RUN          5 DISPLAY RUNNING TASKS
//! 1 INITIATE A TASK            6 DISPLAY MESSAGE QUEUE
//! 2 KILL A TASK                7 DUMP SYSTEM STATE
//! 3 SEND A MESSAGE             8 DISPLAY PE LOADING
//! 4 DELETE MESSAGES            9 CHANGE TRACE OPTIONS
//! ```
//! " (paper, Section 11)
//!
//! [`menu::ExecMenu`] implements all ten options over a running
//! [`pisces_core::Pisces`] machine, line-scriptable for tests and usable
//! as an interactive REPL. [`figure1`] renders the virtual-machine
//! organization diagram (the paper's Figure 1) from live machine state,
//! and [`analysis`] performs the off-line study of trace files that
//! Section 12 describes ("sending trace output to a file allows the user
//! to study trace information and make timing analyses off-line").
//! [`report`] consolidates that study into per-PE utilization timelines
//! and latency histograms, available live through menu options 10/11 or
//! off-line via `pisces report <trace.jsonl>`.

//! [`jobs`] routes each service-mode job's trace into its own artifact
//! pair so tenants' executions stay separable.

pub mod analysis;
pub mod causality;
pub mod figure1;
pub mod jobs;
pub mod menu;
pub mod report;
pub mod watchdog;

pub use analysis::TraceAnalysis;
pub use causality::CausalGraph;
pub use jobs::{write_job_artifacts, JobArtifacts};
pub use menu::ExecMenu;
pub use report::Report;
pub use watchdog::{Watchdog, WatchdogConfig};
