//! Stall and deadlock watchdog over a live [`Pisces`] machine.
//!
//! The watchdog is sampling-based and *explicitly driven*: the embedder
//! (a test harness, the execution menu, a monitoring thread) calls
//! [`Watchdog::sample`] at whatever cadence it likes, and the watchdog
//! compares consecutive samples. Nothing here spawns threads or installs
//! timers, so every verdict is reproducible under test control.
//!
//! ## Detection model
//!
//! Each sample takes a *progress fingerprint* of the machine: the sum of
//! all PE clocks and CPU acquisitions plus the machine-wide message
//! send/accept counters. Any forward progress — a tick charged, a
//! message moved, a CPU grabbed — changes the fingerprint. Blocked
//! ACCEPTs park on a condvar and barrier waiters spin without ticking,
//! so a genuinely wedged machine has a *frozen* fingerprint.
//!
//! A task is a stall **suspect** while it is either
//!
//! * a non-controller task `Blocked` with an empty in-queue (waiting in
//!   ACCEPT for a message that has not arrived), or
//! * split into a force (`in_force`), where a missing member freezes
//!   every sibling at the next barrier.
//!
//! A suspect is only *reported* once the machine fingerprint has been
//! frozen for [`WatchdogConfig::stall_samples`] consecutive samples with
//! the suspect present throughout. A busy machine resets the counters
//! every sample, so transient waits — however long the sampler watches
//! them — are never reported: zero false positives on any run that is
//! still making progress.
//!
//! ## Classification
//!
//! A confirmed stall is classified [`StallClass::FaultInduced`] when the
//! armed fault plan schedules a PE fail-stop (the stall is degradation
//! caused by injected failure — e.g. a barrier member lost with its PE),
//! and [`StallClass::Deadlock`] otherwise (a genuine wait-for cycle or a
//! member that simply never arrives). The distinction comes from
//! [substrate fault-plan queries](pisces_core::substrate::Substrate::faults),
//! not from guessing at symptoms.

use pisces_core::machine::Pisces;
use pisces_core::task::TaskRunState;
use pisces_core::taskid::TaskId;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Tuning knobs for [`Watchdog`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Consecutive frozen samples a suspect must survive before it is
    /// reported. Higher values trade detection latency for robustness
    /// against slow-but-live phases.
    pub stall_samples: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { stall_samples: 3 }
    }
}

/// What shape the stall took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Blocked in ACCEPT with an empty in-queue and no machine progress.
    AcceptStall,
    /// Frozen inside a force — a barrier or join missing a member.
    ForceStall,
}

/// Why the stall happened, as far as the fault plan can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallClass {
    /// No injected PE failure explains it: a genuine deadlock (wait-for
    /// cycle, or a member that never reaches its barrier).
    Deadlock,
    /// The armed fault plan fail-stops a PE; the stall is degradation
    /// induced by that failure, not a program bug.
    FaultInduced,
}

/// One confirmed stall.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// The stalled task.
    pub task: TaskId,
    /// PE it is stalled on.
    pub pe: u16,
    /// Shape of the stall.
    pub kind: StallKind,
    /// Deadlock vs. fault-induced classification.
    pub class: StallClass,
    /// Consecutive frozen samples the suspect survived.
    pub samples: u32,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let class = match self.class {
            StallClass::Deadlock => "DEADLOCK",
            StallClass::FaultInduced => "FAULT-INDUCED",
        };
        write!(
            f,
            "{class}: task {} on PE{} — {} ({} frozen samples)",
            self.task, self.pe, self.detail, self.samples
        )
    }
}

/// Sampling stall detector. Create once, call [`sample`](Self::sample)
/// repeatedly against the same machine.
pub struct Watchdog {
    cfg: WatchdogConfig,
    machine: Arc<Pisces>,
    fingerprint: Option<u64>,
    frozen_samples: u32,
    suspect_streak: HashMap<TaskId, u32>,
}

impl Watchdog {
    /// Watch `machine` with the given config.
    pub fn new(machine: Arc<Pisces>, cfg: WatchdogConfig) -> Self {
        Self {
            cfg,
            machine,
            fingerprint: None,
            frozen_samples: 0,
            suspect_streak: HashMap::new(),
        }
    }

    /// Progress fingerprint: changes whenever any PE ticks, any CPU is
    /// acquired, or any message is sent or accepted.
    fn take_fingerprint(&self) -> u64 {
        let mut fp = 0u64;
        for load in self.machine.pe_loading() {
            fp = fp
                .wrapping_add(load.ticks)
                .wrapping_add(load.cpu_acquisitions.wrapping_mul(0x9e37_79b9));
        }
        let st = self.machine.stats().snapshot();
        fp.wrapping_add(st.messages_sent.wrapping_mul(0x0001_0001))
            .wrapping_add(st.messages_accepted.wrapping_mul(0x0100_0001))
    }

    /// Take one sample. Returns confirmed stalls (empty while the
    /// machine is making progress or suspects are still within the
    /// persistence threshold). Reports repeat on subsequent samples for
    /// as long as the stall persists.
    pub fn sample(&mut self) -> Vec<StallReport> {
        let fp = self.take_fingerprint();
        let frozen = self.fingerprint == Some(fp);
        self.fingerprint = Some(fp);
        if !frozen {
            // Forward progress since last sample: everyone is absolved.
            self.frozen_samples = 0;
            self.suspect_streak.clear();
            return Vec::new();
        }
        self.frozen_samples = self.frozen_samples.saturating_add(1);

        let tasks = self.machine.snapshot_tasks();
        let mut current: Vec<(TaskId, u16, StallKind)> = Vec::new();
        for t in &tasks {
            if t.is_controller {
                continue;
            }
            if t.in_force {
                current.push((t.id, t.pe, StallKind::ForceStall));
            } else if t.state == TaskRunState::Blocked
                && t.queued_messages == 0
                && !t.timed_wait
            {
                // A DELAY-armed accept is a timed wait: it will wake on
                // its own, so it is never a stall suspect.
                current.push((t.id, t.pe, StallKind::AcceptStall));
            }
        }

        // Advance streaks for present suspects, forget the rest.
        let mut next: HashMap<TaskId, u32> = HashMap::new();
        for &(id, _, _) in &current {
            let streak = self.suspect_streak.get(&id).copied().unwrap_or(0) + 1;
            next.insert(id, streak);
        }
        self.suspect_streak = next;

        let user_tasks = tasks.iter().filter(|t| !t.is_controller).count();
        let all_stuck = user_tasks > 0 && current.len() == user_tasks;

        let fault_induced = self
            .machine
            .substrate()
            .faults()
            .map(|inj| !inj.planned_pe_failures().is_empty())
            .unwrap_or(false);

        let mut out = Vec::new();
        for (id, pe, kind) in current {
            let samples = self.suspect_streak.get(&id).copied().unwrap_or(0);
            if samples < self.cfg.stall_samples {
                continue;
            }
            let class = if fault_induced {
                StallClass::FaultInduced
            } else {
                StallClass::Deadlock
            };
            let detail = match (kind, all_stuck, class) {
                (StallKind::AcceptStall, true, StallClass::Deadlock) => {
                    "blocked in ACCEPT with empty queue; every user task is \
                     stuck (wait-for cycle)"
                        .to_string()
                }
                (StallKind::AcceptStall, _, StallClass::Deadlock) => {
                    "blocked in ACCEPT with empty queue and no in-flight send"
                        .to_string()
                }
                (StallKind::AcceptStall, _, StallClass::FaultInduced) => {
                    "blocked in ACCEPT; the fault plan fail-stops a PE, so the \
                     awaited sender is likely dead"
                        .to_string()
                }
                (StallKind::ForceStall, _, StallClass::Deadlock) => {
                    "force frozen: a member never reached the barrier or join"
                        .to_string()
                }
                (StallKind::ForceStall, _, StallClass::FaultInduced) => {
                    "force frozen: a member was lost with a fail-stopped PE"
                        .to_string()
                }
            };
            out.push(StallReport {
                task: id,
                pe,
                kind,
                class,
                samples,
                detail,
            });
        }
        out.sort_by_key(|r| r.task);
        if let Some(first) = out.first() {
            // A confirmed stall is exactly the moment the flight
            // recorder exists for: dump the retained window (no-op
            // unless the machine was booted with a flight directory,
            // and at most once per run).
            self.machine.flight_dump(&format!("watchdog: {first}"));
        }
        out
    }

    /// Consecutive samples the machine fingerprint has been frozen.
    pub fn frozen_samples(&self) -> u32 {
        self.frozen_samples
    }
}
