//! Off-line trace analysis.
//!
//! "Sending trace output to a file allows the user to study trace
//! information and make timing analyses off-line." (paper, Section 12)
//!
//! [`TraceAnalysis`] consumes the trace records of a run (in memory or
//! parsed back from a JSONL trace file) and derives the timing views a
//! 1987 user would compute by hand: task lifetimes, per-PE activity,
//! message-type histograms, send→accept matching, and barrier-round
//! spreads.
//!
//! A caveat the paper's users faced too: each PE has its own tick clock
//! and the clocks are not synchronized, so cross-PE tick differences are
//! approximations; same-PE differences are exact.

use pisces_core::taskid::TaskId;
use pisces_core::trace::{TraceEventKind, TraceRecord};
use std::collections::{BTreeMap, HashMap};

/// Lifetime of one task as seen in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskLifetime {
    /// Tasktype (from the TASK-INIT info field).
    pub tasktype: String,
    /// PE the task ran on.
    pub pe: u16,
    /// Clock reading at initiation.
    pub init_ticks: u64,
    /// Clock reading at termination (`None` if the task never terminated
    /// within the trace).
    pub term_ticks: Option<u64>,
    /// Messages this task sent.
    pub sends: usize,
    /// Messages this task accepted.
    pub accepts: usize,
}

impl TaskLifetime {
    /// Ticks from initiation to termination (same PE, so exact).
    pub fn lifetime_ticks(&self) -> Option<u64> {
        self.term_ticks.map(|t| t.saturating_sub(self.init_ticks))
    }
}

/// A send matched with its acceptance.
#[derive(Debug, Clone)]
pub struct MatchedMessage {
    /// Message type.
    pub mtype: String,
    /// Sending task.
    pub from: TaskId,
    /// Receiving task.
    pub to: TaskId,
    /// Tick reading at the send, on the sender's PE.
    pub send_ticks: u64,
    /// Tick reading at the accept, on the receiver's PE.
    pub accept_ticks: u64,
    /// Whether both readings are from the same PE (exact latency).
    pub same_pe: bool,
}

impl MatchedMessage {
    /// Approximate queueing+transfer latency in ticks (exact when
    /// `same_pe`).
    pub fn latency_ticks(&self) -> i64 {
        self.accept_ticks as i64 - self.send_ticks as i64
    }
}

/// The derived analysis of one trace.
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    /// Per-task lifetimes, in taskid order.
    pub tasks: BTreeMap<TaskId, TaskLifetime>,
    /// Events per kind.
    pub by_kind: BTreeMap<TraceEventKind, usize>,
    /// MSG-SEND counts per message type.
    pub sends_by_type: BTreeMap<String, usize>,
    /// Highest tick reading observed per PE (activity horizon).
    pub pe_horizon: BTreeMap<u16, u64>,
    /// Matched send→accept pairs.
    pub matched: Vec<MatchedMessage>,
    /// Barrier entries per task.
    pub barrier_entries: BTreeMap<TaskId, usize>,
}

fn split_info<'a>(info: &'a str, arrow: &str) -> Option<(&'a str, &'a str)> {
    let (mtype, rest) = info.split_once(arrow)?;
    Some((mtype.trim(), rest.trim()))
}

impl TraceAnalysis {
    /// Analyze a run's trace records.
    pub fn new(records: &[TraceRecord]) -> Self {
        let mut a = TraceAnalysis::default();
        // Pending sends keyed by (from, to, mtype) in emission order.
        let mut pending: HashMap<(TaskId, String, String), Vec<&TraceRecord>> = HashMap::new();

        for r in records {
            *a.by_kind.entry(r.kind).or_insert(0) += 1;
            let horizon = a.pe_horizon.entry(r.pe).or_insert(0);
            *horizon = (*horizon).max(r.ticks);
            match r.kind {
                TraceEventKind::TaskInit => {
                    let tasktype = r.info.split_whitespace().next().unwrap_or("?").to_string();
                    a.tasks.insert(
                        r.task,
                        TaskLifetime {
                            tasktype,
                            pe: r.pe,
                            init_ticks: r.ticks,
                            term_ticks: None,
                            sends: 0,
                            accepts: 0,
                        },
                    );
                }
                TraceEventKind::TaskTerm => {
                    if let Some(t) = a.tasks.get_mut(&r.task) {
                        t.term_ticks = Some(r.ticks);
                    }
                }
                TraceEventKind::MsgSend => {
                    if let Some(t) = a.tasks.get_mut(&r.task) {
                        t.sends += 1;
                    }
                    if let Some((mtype, to)) = split_info(&r.info, "->") {
                        *a.sends_by_type.entry(mtype.to_string()).or_insert(0) += 1;
                        pending
                            .entry((r.task, to.to_string(), mtype.to_string()))
                            .or_default()
                            .push(r);
                    }
                }
                TraceEventKind::MsgAccept => {
                    if let Some(t) = a.tasks.get_mut(&r.task) {
                        t.accepts += 1;
                    }
                    if let Some((mtype, from)) = split_info(&r.info, "<-") {
                        // Match with the oldest unmatched send from that
                        // sender to this task of this type.
                        let key = (
                            match crate::menu::parse_taskid(from) {
                                Ok(t) => t,
                                Err(_) => continue,
                            },
                            r.task.to_string(),
                            mtype.to_string(),
                        );
                        if let Some(queue) = pending.get_mut(&key) {
                            if !queue.is_empty() {
                                let send = queue.remove(0);
                                a.matched.push(MatchedMessage {
                                    mtype: mtype.to_string(),
                                    from: send.task,
                                    to: r.task,
                                    send_ticks: send.ticks,
                                    accept_ticks: r.ticks,
                                    same_pe: send.pe == r.pe,
                                });
                            }
                        }
                    }
                }
                TraceEventKind::Barrier => {
                    *a.barrier_entries.entry(r.task).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        a
    }

    /// Analyze a JSONL trace file's contents.
    pub fn from_jsonl(data: &str) -> Result<Self, serde_json::Error> {
        Ok(Self::new(&pisces_core::trace::Tracer::parse_jsonl(data)?))
    }

    /// Per-PE busy/idle profiles derived from the task lifetimes (the
    /// full report lives in [`crate::report`]).
    pub fn utilization(&self) -> Vec<crate::report::PeUtilization> {
        crate::report::pe_utilization(self)
    }

    /// Mean latency (ticks) of matched same-PE messages, if any.
    pub fn mean_same_pe_latency(&self) -> Option<f64> {
        let same: Vec<i64> = self
            .matched
            .iter()
            .filter(|m| m.same_pe)
            .map(MatchedMessage::latency_ticks)
            .collect();
        if same.is_empty() {
            None
        } else {
            Some(same.iter().sum::<i64>() as f64 / same.len() as f64)
        }
    }

    /// An ASCII Gantt chart of task lifetimes, one lane per task, grouped
    /// by PE and drawn against that PE's own tick clock (per-PE clocks are
    /// not synchronized, so lanes are only comparable within a PE group —
    /// the same caveat the 1987 user faced).
    pub fn gantt(&self, width: usize) -> String {
        use std::fmt::Write;
        let width = width.max(20);
        let mut s = String::from("TASK TIMELINES (per-PE tick clocks)\n");
        let mut by_pe: BTreeMap<u16, Vec<(&TaskId, &TaskLifetime)>> = BTreeMap::new();
        for (id, t) in &self.tasks {
            by_pe.entry(t.pe).or_default().push((id, t));
        }
        for (pe, mut tasks) in by_pe {
            let horizon = self.pe_horizon.get(&pe).copied().unwrap_or(0).max(1);
            let _ = writeln!(s, "PE{pe} (0..{horizon} ticks)");
            tasks.sort_by_key(|(_, t)| t.init_ticks);
            for (id, t) in tasks {
                let start = (t.init_ticks * width as u64 / horizon) as usize;
                let end_ticks = t.term_ticks.unwrap_or(horizon);
                let end = ((end_ticks * width as u64).div_ceil(horizon) as usize).max(start + 1);
                let mut lane = vec![b' '; width.max(end)];
                for c in lane.iter_mut().take(end.min(width)).skip(start.min(width)) {
                    *c = b'#';
                }
                let bar = String::from_utf8(lane).expect("ascii");
                let _ = writeln!(
                    s,
                    "  {:<12} {:<10} |{}|{}",
                    id.to_string(),
                    t.tasktype,
                    &bar[..width],
                    if t.term_ticks.is_none() {
                        " (running)"
                    } else {
                        ""
                    }
                );
            }
        }
        s
    }

    /// Render the analysis as the off-line report a user would print.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("TRACE ANALYSIS\n");
        let _ = writeln!(s, "events by kind:");
        for (k, n) in &self.by_kind {
            let _ = writeln!(s, "  {:<12} {n}", k.label());
        }
        let _ = writeln!(s, "task lifetimes (ticks, exact — same-PE clock):");
        for (id, t) in &self.tasks {
            let _ = writeln!(
                s,
                "  {:<12} {:<14} PE{:<3} init@{:<8} life {:<8} sends {:<4} accepts {}",
                id.to_string(),
                t.tasktype,
                t.pe,
                t.init_ticks,
                t.lifetime_ticks()
                    .map_or("(running)".to_string(), |l| l.to_string()),
                t.sends,
                t.accepts
            );
        }
        let _ = writeln!(s, "message sends by type:");
        for (mtype, n) in &self.sends_by_type {
            let _ = writeln!(s, "  {mtype:<16} {n}");
        }
        let _ = writeln!(
            s,
            "matched messages: {} ({} same-PE{})",
            self.matched.len(),
            self.matched.iter().filter(|m| m.same_pe).count(),
            self.mean_same_pe_latency()
                .map_or(String::new(), |l| format!(", mean latency {l:.1} ticks"))
        );
        let _ = writeln!(s, "PE activity horizon (ticks):");
        for (pe, t) in &self.pe_horizon {
            let _ = writeln!(s, "  PE{pe:<3} {t}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisces_core::prelude::*;
    use std::time::Duration;

    /// Run a real traced program and analyze it.
    fn traced_run() -> Vec<TraceRecord> {
        let mut config = MachineConfig::simple(2, 4);
        config.trace = pisces_core::trace::TraceSettings::all();
        let p = Pisces::boot(config).unwrap();
        p.register("child", |ctx: &TaskCtx| {
            ctx.work(25)?;
            ctx.send(To::Parent, "DONE", args![1i64])
        });
        p.register("main", |ctx: &TaskCtx| {
            ctx.initiate(Where::Other, "child", vec![])?;
            ctx.initiate(Where::Other, "child", vec![])?;
            ctx.accept().of(2).signal("DONE").run()?;
            Ok(())
        });
        p.initiate_top_level(1, "main", vec![]).unwrap();
        assert!(p.wait_quiescent(Duration::from_secs(30)));
        let records = p.tracer().records();
        p.shutdown();
        records
    }

    #[test]
    fn lifetimes_and_counts_from_real_run() {
        let records = traced_run();
        let a = TraceAnalysis::new(&records);
        // Three user tasks, all with complete lifetimes.
        let user_tasks: Vec<_> = a
            .tasks
            .values()
            .filter(|t| t.tasktype == "main" || t.tasktype == "child")
            .collect();
        assert_eq!(user_tasks.len(), 3);
        for t in &user_tasks {
            assert!(t.lifetime_ticks().is_some(), "{t:?}");
            assert!(t.lifetime_ticks().unwrap() > 0);
        }
        // The DONE sends are matched to their accepts.
        assert_eq!(a.sends_by_type.get("DONE"), Some(&2));
        let done_matches: Vec<_> = a.matched.iter().filter(|m| m.mtype == "DONE").collect();
        assert_eq!(done_matches.len(), 2);
        // Children ran on PE4 (cluster 2), main on PE3: cross-PE matches.
        assert!(done_matches.iter().all(|m| !m.same_pe));
        assert!(a.by_kind[&TraceEventKind::TaskInit] >= 3);
    }

    #[test]
    fn jsonl_roundtrip_analysis() {
        let records = traced_run();
        let mut jsonl = String::new();
        for r in &records {
            jsonl.push_str(&serde_json::to_string(r).unwrap());
            jsonl.push('\n');
        }
        let a = TraceAnalysis::from_jsonl(&jsonl).unwrap();
        assert_eq!(a.by_kind, TraceAnalysis::new(&records).by_kind);
    }

    #[test]
    fn report_mentions_key_sections() {
        let records = traced_run();
        let report = TraceAnalysis::new(&records).report();
        assert!(report.contains("task lifetimes"));
        assert!(report.contains("message sends by type"));
        assert!(report.contains("DONE"));
        assert!(report.contains("PE activity"));
    }

    #[test]
    fn same_pe_latency_exact() {
        // Synthetic: send and accept on the same PE, 30 ticks apart.
        let t1 = TaskId::new(1, 2, 1);
        let t2 = TaskId::new(1, 3, 1);
        let records = vec![
            TraceRecord {
                seq: 0,
                kind: TraceEventKind::MsgSend,
                task: t1,
                pe: 3,
                ticks: 100,
                info: format!("PING -> {t2}"),
                parent: None,
                cause: None,
            },
            TraceRecord {
                seq: 1,
                kind: TraceEventKind::MsgAccept,
                task: t2,
                pe: 3,
                ticks: 130,
                info: format!("PING <- {t1}"),
                parent: None,
                cause: Some(0),
            },
        ];
        let a = TraceAnalysis::new(&records);
        assert_eq!(a.matched.len(), 1);
        assert!(a.matched[0].same_pe);
        assert_eq!(a.matched[0].latency_ticks(), 30);
        assert_eq!(a.mean_same_pe_latency(), Some(30.0));
    }

    #[test]
    fn unmatched_sends_stay_unmatched() {
        let t1 = TaskId::new(1, 2, 1);
        let t2 = TaskId::new(1, 3, 1);
        let records = vec![TraceRecord {
            seq: 0,
            kind: TraceEventKind::MsgSend,
            task: t1,
            pe: 3,
            ticks: 100,
            info: format!("PING -> {t2}"),
            parent: None,
            cause: None,
        }];
        let a = TraceAnalysis::new(&records);
        assert!(a.matched.is_empty());
        assert_eq!(a.sends_by_type["PING"], 1);
    }
}

#[cfg(test)]
mod gantt_tests {
    use super::*;
    use pisces_core::trace::TraceEventKind;

    fn rec(kind: TraceEventKind, task: TaskId, pe: u16, ticks: u64, info: &str) -> TraceRecord {
        TraceRecord {
            seq: ticks,
            kind,
            task,
            pe,
            ticks,
            info: info.into(),
            parent: None,
            cause: None,
        }
    }

    #[test]
    fn gantt_draws_lanes_per_pe() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        let c = TaskId::new(2, 2, 1);
        let records = vec![
            rec(TraceEventKind::TaskInit, a, 3, 0, "alpha parent=c0.s0#0"),
            rec(TraceEventKind::TaskInit, b, 3, 50, "beta parent=c0.s0#0"),
            rec(TraceEventKind::TaskTerm, a, 3, 60, "ok"),
            rec(TraceEventKind::TaskTerm, b, 3, 100, "ok"),
            rec(TraceEventKind::TaskInit, c, 4, 10, "gamma parent=c0.s0#0"),
            // c never terminates in the trace.
        ];
        let g = TraceAnalysis::new(&records).gantt(40);
        assert!(g.contains("PE3"), "{g}");
        assert!(g.contains("PE4"), "{g}");
        assert!(g.contains("alpha") && g.contains("beta") && g.contains("gamma"));
        assert!(g.contains("(running)"), "unterminated task marked: {g}");
        // alpha's bar starts at the left edge; beta's starts mid-chart.
        let alpha_line = g.lines().find(|l| l.contains("alpha")).unwrap();
        let beta_line = g.lines().find(|l| l.contains("beta")).unwrap();
        let bar_start = |l: &str| l.find('|').map(|p| l[p..].find('#').unwrap()).unwrap();
        assert!(bar_start(alpha_line) < bar_start(beta_line), "{g}");
    }

    #[test]
    fn gantt_of_empty_trace_is_headers_only() {
        let g = TraceAnalysis::new(&[]).gantt(40);
        assert!(g.contains("TASK TIMELINES"));
        assert!(!g.contains('#'));
    }
}

#[cfg(test)]
mod matching_tests {
    use super::*;
    use pisces_core::trace::TraceEventKind;

    fn rec(kind: TraceEventKind, task: TaskId, pe: u16, ticks: u64, info: String) -> TraceRecord {
        TraceRecord {
            seq: ticks,
            kind,
            task,
            pe,
            ticks,
            info,
            parent: None,
            cause: None,
        }
    }

    /// When one sender mails the same type repeatedly, the k-th send must
    /// match the k-th accept (FIFO per (sender, receiver, type) — the
    /// in-queue's arrival-order guarantee).
    #[test]
    fn repeated_sends_match_in_fifo_order() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        let mut records = Vec::new();
        for k in 0..3u64 {
            records.push(rec(
                TraceEventKind::MsgSend,
                a,
                3,
                100 + 10 * k,
                format!("PING -> {b}"),
            ));
        }
        for k in 0..3u64 {
            records.push(rec(
                TraceEventKind::MsgAccept,
                b,
                3,
                200 + 10 * k,
                format!("PING <- {a}"),
            ));
        }
        let an = TraceAnalysis::new(&records);
        assert_eq!(an.matched.len(), 3);
        for (k, m) in an.matched.iter().enumerate() {
            assert_eq!(m.send_ticks, 100 + 10 * k as u64);
            assert_eq!(m.accept_ticks, 200 + 10 * k as u64);
            assert_eq!(m.latency_ticks(), 100);
        }
    }

    /// Accepts without a prior send (e.g. the trace started mid-run) are
    /// simply not matched — no panic, no bogus pairing.
    #[test]
    fn orphan_accepts_are_ignored() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        let records = vec![rec(
            TraceEventKind::MsgAccept,
            b,
            3,
            50,
            format!("PING <- {a}"),
        )];
        let an = TraceAnalysis::new(&records);
        assert!(an.matched.is_empty());
        assert_eq!(an.tasks.len(), 0);
    }

    /// Sends to different receivers never cross-match even with the same
    /// type name.
    #[test]
    fn matching_is_per_receiver() {
        let a = TaskId::new(1, 2, 1);
        let b = TaskId::new(1, 3, 1);
        let c = TaskId::new(2, 2, 1);
        let records = vec![
            rec(TraceEventKind::MsgSend, a, 3, 10, format!("X -> {b}")),
            rec(TraceEventKind::MsgSend, a, 3, 20, format!("X -> {c}")),
            rec(TraceEventKind::MsgAccept, c, 4, 90, format!("X <- {a}")),
        ];
        let an = TraceAnalysis::new(&records);
        assert_eq!(an.matched.len(), 1);
        assert_eq!(an.matched[0].to, c);
        assert_eq!(an.matched[0].send_ticks, 20);
    }
}
