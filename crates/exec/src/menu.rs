//! The ten-option run-control menu.
//!
//! Each command line starts with the menu number (or its name) followed by
//! the additional information the paper says each choice collects. Output
//! is returned as text, so the menu is equally usable from an interactive
//! REPL and from a test script.

use parking_lot::Mutex;
use pisces_core::prelude::*;
use pisces_core::trace::TraceEventKind;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// The execution environment's run-control menu over one machine.
pub struct ExecMenu {
    p: Arc<Pisces>,
    /// Snapshot taken by the previous `stats` command, so option 11 can
    /// show per-interval deltas alongside totals.
    last_stats: Mutex<Option<StatsSnapshot>>,
}

/// Parse a taskid written as it is displayed: `c<cluster>.s<slot>#<unique>`.
pub fn parse_taskid(s: &str) -> Result<TaskId> {
    let err = || PiscesError::BadConfiguration(format!("bad taskid {s:?}; format c1.s2#3"));
    let rest = s.strip_prefix('c').ok_or_else(err)?;
    let (cluster, rest) = rest.split_once(".s").ok_or_else(err)?;
    let (slot, unique) = rest.split_once('#').ok_or_else(err)?;
    Ok(TaskId::new(
        cluster.parse().map_err(|_| err())?,
        slot.parse().map_err(|_| err())?,
        unique.parse().map_err(|_| err())?,
    ))
}

/// Parse a message/initiation argument: INTEGER, then REAL, then TASKID,
/// else CHARACTER.
pub fn parse_value(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(r) = s.parse::<f64>() {
        return Value::Real(r);
    }
    if let Ok(t) = parse_taskid(s) {
        return Value::TaskId(t);
    }
    match s {
        ".TRUE." => Value::Logical(true),
        ".FALSE." => Value::Logical(false),
        other => Value::Str(other.to_string()),
    }
}

impl ExecMenu {
    /// A menu over a booted machine.
    pub fn new(p: Arc<Pisces>) -> Self {
        Self {
            p,
            last_stats: Mutex::new(None),
        }
    }

    /// The machine under control.
    pub fn machine(&self) -> &Arc<Pisces> {
        &self.p
    }

    /// The menu text itself, as the paper lists it.
    pub fn help(&self) -> String {
        "0 TERMINATE THE RUN\n\
         1 INITIATE A TASK        1 <cluster> <tasktype> [args…]\n\
         2 KILL A TASK            2 <taskid>\n\
         3 SEND A MESSAGE         3 <taskid> <msgtype> [args…]\n\
         4 DELETE MESSAGES        4 <taskid> <msgtype>\n\
         5 DISPLAY RUNNING TASKS\n\
         6 DISPLAY MESSAGE QUEUE  6 <taskid>\n\
         7 DUMP SYSTEM STATE\n\
         8 DISPLAY PE LOADING\n\
         9 CHANGE TRACE OPTIONS   9 on|off <event>|all [<taskid>]\n\
         10 TRACE REPORT          10 [width]   (utilization timeline, latency histograms)\n\
         11 RUN STATISTICS        11           (counter totals and deltas since last call)\n"
            .to_string()
    }

    /// Execute one menu command; returns the display text.
    pub fn execute(&self, line: &str) -> Result<String> {
        let mut words = line.split_whitespace();
        let Some(cmd) = words.next() else {
            return Ok(String::new());
        };
        let rest: Vec<&str> = words.collect();
        let need = |n: usize| -> Result<()> {
            if rest.len() < n {
                Err(PiscesError::BadConfiguration(format!(
                    "option {cmd}: expected at least {n} argument(s)"
                )))
            } else {
                Ok(())
            }
        };
        match cmd {
            "0" | "terminate" => {
                self.p.shutdown();
                Ok("run terminated".into())
            }
            "1" | "initiate" => {
                need(2)?;
                let cluster: u8 = rest[0].parse().map_err(|_| PiscesError::NoSuchCluster(0))?;
                let args: Vec<Value> = rest[2..].iter().map(|s| parse_value(s)).collect();
                self.p.initiate_top_level(cluster, rest[1], args)?;
                Ok(format!(
                    "initiate request for {:?} sent to cluster {cluster}",
                    rest[1]
                ))
            }
            "2" | "kill" => {
                need(1)?;
                let id = parse_taskid(rest[0])?;
                self.p.kill_task(id)?;
                Ok(format!("kill requested for {id}"))
            }
            "3" | "send" => {
                need(2)?;
                let id = parse_taskid(rest[0])?;
                let args: Vec<Value> = rest[2..].iter().map(|s| parse_value(s)).collect();
                self.p.user_send(id, rest[1], args)?;
                Ok(format!("{} sent to {id}", rest[1]))
            }
            "4" | "delete" => {
                need(2)?;
                let id = parse_taskid(rest[0])?;
                let n = self.p.delete_messages(id, rest[1])?;
                Ok(format!("{n} message(s) deleted from {id}"))
            }
            "5" | "tasks" => {
                let mut s = String::from("RUNNING TASKS\n");
                for t in self.p.snapshot_tasks() {
                    let _ = writeln!(
                        s,
                        "  {:<12} {:<16} PE{:<3} {:<8} {} queued{}",
                        t.id.to_string(),
                        t.tasktype,
                        t.pe,
                        format!("{:?}", t.state),
                        t.queued_messages,
                        if t.is_controller {
                            "  [controller]"
                        } else {
                            ""
                        }
                    );
                }
                Ok(s)
            }
            "6" | "queue" => {
                need(1)?;
                let id = parse_taskid(rest[0])?;
                let q = self.p.queue_snapshot(id)?;
                let mut s = format!("MESSAGE QUEUE OF {id} ({} message(s))\n", q.len());
                for (mtype, sender, bytes) in q {
                    let _ = writeln!(s, "  {mtype:<16} from {sender:<12} {bytes} B");
                }
                Ok(s)
            }
            "7" | "dump" => Ok(self.p.dump_state()),
            "8" | "loading" => {
                let mut s = String::from("PE LOADING\n");
                let _ = writeln!(
                    s,
                    "  {:<5} {:>5} {:>6} {:>10} {:>10} {:>10}",
                    "PE", "procs", "ready", "ticks", "cpu-acq", "contended"
                );
                for l in self.p.pe_loading() {
                    let _ = writeln!(
                        s,
                        "  PE{:<3} {:>5} {:>6} {:>10} {:>10} {:>10}",
                        l.pe, l.live, l.ready, l.ticks, l.cpu_acquisitions, l.cpu_contended
                    );
                }
                Ok(s)
            }
            "9" | "trace" => {
                need(2)?;
                let on = match rest[0] {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(PiscesError::BadConfiguration(format!(
                            "trace: expected on/off, got {other:?}"
                        )))
                    }
                };
                let kinds: Vec<TraceEventKind> = if rest[1].eq_ignore_ascii_case("all") {
                    TraceEventKind::ALL.to_vec()
                } else {
                    TraceEventKind::ALL
                        .into_iter()
                        .filter(|k| k.label().eq_ignore_ascii_case(rest[1]))
                        .collect()
                };
                if kinds.is_empty() {
                    return Err(PiscesError::BadConfiguration(format!(
                        "unknown trace event {:?}",
                        rest[1]
                    )));
                }
                match rest.get(2) {
                    Some(tid) => {
                        let id = parse_taskid(tid)?;
                        for k in &kinds {
                            self.p.tracer().set_for_task(id, *k, on);
                        }
                        Ok(format!(
                            "trace {} for {id}: {} kind(s)",
                            rest[0],
                            kinds.len()
                        ))
                    }
                    None => {
                        for k in &kinds {
                            self.p.tracer().set_global(*k, on);
                        }
                        Ok(format!(
                            "trace {} globally: {} kind(s)",
                            rest[0],
                            kinds.len()
                        ))
                    }
                }
            }
            // Beyond the paper's ten options: the Section 12 off-line
            // views, available live.
            "10" | "report" => {
                let width: usize = rest.first().and_then(|s| s.parse().ok()).unwrap_or(60);
                let report = crate::report::Report::new(&self.p.tracer().records());
                let mut s = report.render(width);
                let dropped = self.p.tracer().dropped();
                if dropped > 0 {
                    let _ = writeln!(s, "(trace rings dropped {dropped} record(s))");
                }
                s.push('\n');
                s.push_str(&self.p.metrics().report());
                Ok(s)
            }
            "11" | "stats" => {
                let now = self.p.stats().snapshot();
                let mut s = format!("RUN STATISTICS (totals)\n{now}");
                if let Some(prev) = self.last_stats.lock().replace(now) {
                    let _ = write!(s, "since last display\n{}", now.diff(&prev));
                }
                Ok(s)
            }
            "help" | "?" => Ok(self.help()),
            // Convenience beyond the paper's ten options: redraw the
            // Figure-1 organization diagram from live state.
            "figure" => Ok(crate::figure1::render(&self.p)),
            "wait" => {
                // Scripting convenience: wait for quiescence (not a paper
                // menu entry; interactive users simply watch the displays).
                let secs: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(10);
                if self.p.wait_quiescent(Duration::from_secs(secs)) {
                    Ok("quiescent".into())
                } else {
                    Ok("still running".into())
                }
            }
            other => Err(PiscesError::BadConfiguration(format!(
                "unknown menu option {other:?} (try help)"
            ))),
        }
    }

    /// Run a script of menu lines, collecting all output. Errors abort.
    pub fn run_script<'a>(&self, lines: impl IntoIterator<Item = &'a str>) -> Result<String> {
        let mut out = String::new();
        for line in lines {
            let text = self.execute(line)?;
            if !text.is_empty() {
                out.push_str(&text);
                if !text.ends_with('\n') {
                    out.push('\n');
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> ExecMenu {
        let p = Pisces::boot(MachineConfig::simple(2, 4)).unwrap();
        p.register("echoer", |ctx: &TaskCtx| {
            let out = ctx
                .accept()
                .signal_count("STOP", 1)
                .delay_then(Duration::from_secs(20), || {})
                .run()?;
            assert!(!out.timed_out);
            Ok(())
        });
        ExecMenu::new(p)
    }

    fn find_task(menu: &ExecMenu, tasktype: &str) -> TaskId {
        for _ in 0..200 {
            std::thread::sleep(Duration::from_millis(10));
            if let Some(t) = menu
                .machine()
                .snapshot_tasks()
                .into_iter()
                .find(|t| t.tasktype == tasktype)
            {
                return t.id;
            }
        }
        panic!("{tasktype} never appeared");
    }

    #[test]
    fn taskid_parsing_roundtrip() {
        let id = TaskId::new(3, 2, 17);
        assert_eq!(parse_taskid(&id.to_string()).unwrap(), id);
        assert!(parse_taskid("nonsense").is_err());
    }

    #[test]
    fn value_parsing() {
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("2.5"), Value::Real(2.5));
        assert_eq!(parse_value(".TRUE."), Value::Logical(true));
        assert_eq!(parse_value("c1.s2#3"), Value::TaskId(TaskId::new(1, 2, 3)));
        assert_eq!(parse_value("hello"), Value::Str("hello".into()));
    }

    #[test]
    fn initiate_send_queue_delete_kill_through_menu() {
        let menu = boot();
        menu.execute("1 1 echoer").unwrap();
        let id = find_task(&menu, "echoer");

        // Send junk, inspect the queue, delete it.
        menu.execute(&format!("3 {id} JUNK 1 2.5 hello")).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let q = menu.execute(&format!("6 {id}")).unwrap();
        assert!(q.contains("JUNK"), "{q}");
        let del = menu.execute(&format!("4 {id} JUNK")).unwrap();
        assert!(del.contains("1 message(s)"));

        // Displays work.
        let tasks = menu.execute("5").unwrap();
        assert!(tasks.contains("echoer") && tasks.contains("[controller]"));
        let fig = menu.execute("figure").unwrap();
        assert!(fig.contains("CLUSTER 1") && fig.contains("echoer"));
        let loading = menu.execute("8").unwrap();
        let first = pisces_core::substrate::SubstrateSpec::default()
            .topology()
            .first_task_pe;
        assert!(loading.contains(&format!("PE{first}")), "{loading}");
        let dump = menu.execute("7").unwrap();
        assert!(dump.contains("SYSTEM STATE"));

        // Release it via STOP, then kill an already-gone task errors.
        menu.execute(&format!("3 {id} STOP")).unwrap();
        assert_eq!(menu.execute("wait 10").unwrap(), "quiescent");
        assert!(menu.execute(&format!("2 {id}")).is_err());
        menu.execute("0").unwrap();
    }

    #[test]
    fn trace_options_through_menu() {
        let menu = boot();
        menu.execute("9 on all").unwrap();
        assert!(menu
            .machine()
            .tracer()
            .is_enabled(TraceEventKind::MsgSend, TaskId::new(1, 2, 1)));
        menu.execute("9 off MSG-SEND").unwrap();
        assert!(!menu
            .machine()
            .tracer()
            .is_enabled(TraceEventKind::MsgSend, TaskId::new(1, 2, 1)));
        // Per-task override.
        menu.execute("9 on MSG-SEND c1.s2#1").unwrap();
        assert!(menu
            .machine()
            .tracer()
            .is_enabled(TraceEventKind::MsgSend, TaskId::new(1, 2, 1)));
        assert!(menu.execute("9 on NOPE").is_err());
        menu.execute("0").unwrap();
    }

    #[test]
    fn help_lists_all_ten_options() {
        let menu = boot();
        let h = menu.execute("help").unwrap();
        for n in 0..=9 {
            assert!(h.contains(&format!("{n} ")), "menu option {n} listed");
        }
        menu.execute("0").unwrap();
    }

    #[test]
    fn report_and_stats_options() {
        let menu = boot();
        menu.execute("9 on all").unwrap();
        menu.execute("1 1 echoer").unwrap();
        let id = find_task(&menu, "echoer");
        menu.execute(&format!("3 {id} STOP")).unwrap();
        assert_eq!(menu.execute("wait 10").unwrap(), "quiescent");

        let report = menu.execute("10").unwrap();
        assert!(report.contains("PE UTILIZATION"), "{report}");
        assert!(report.contains("msg_latency"), "{report}");
        assert!(report.contains("histograms:"), "{report}");

        let first = menu.execute("11").unwrap();
        assert!(first.contains("RUN STATISTICS"), "{first}");
        assert!(!first.contains("since last display"), "{first}");
        let second = menu.execute("stats").unwrap();
        assert!(second.contains("since last display"), "{second}");
        menu.execute("0").unwrap();
    }

    #[test]
    fn script_runner_aborts_on_error() {
        let menu = boot();
        assert!(menu.run_script(["5", "bogus", "8"]).is_err());
        let out = menu.run_script(["5", "8"]).unwrap();
        assert!(out.contains("RUNNING TASKS") && out.contains("PE LOADING"));
        menu.execute("0").unwrap();
    }
}
