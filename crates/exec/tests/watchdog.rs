//! Watchdog integration tests: seeded deadlocks and hangs are detected
//! and classified correctly, and recovery clears the verdict.

use pisces_core::prelude::*;
use pisces_exec::watchdog::{StallClass, StallKind, StallReport, Watchdog, WatchdogConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn boot(cfg: MachineConfig) -> Arc<Pisces> {
    Pisces::boot(cfg).expect("boot")
}

fn two_cluster_config() -> MachineConfig {
    MachineConfig::builder()
        .clusters([
            ClusterConfig::new(1, 3, 2).with_terminal(),
            ClusterConfig::new(2, 4, 2),
        ])
        .build()
}

fn force_config() -> MachineConfig {
    MachineConfig::builder()
        .clusters([ClusterConfig::new(1, 3, 2)
            .with_terminal()
            .with_secondaries(4..=7)])
        .build()
}

/// Sample every couple of milliseconds until the watchdog reports
/// something, for at most `limit` samples. A genuine deadlock freezes
/// the machine forever, so the bound is generous, not load-sensitive.
fn sample_until_report(wd: &mut Watchdog, limit: usize) -> Vec<StallReport> {
    for _ in 0..limit {
        let r = wd.sample();
        if !r.is_empty() {
            return r;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Vec::new()
}

/// Two tasks, each ACCEPTing first and sending second: the classic
/// send/accept deadlock. No fault plan is armed, so the watchdog must
/// call it a genuine deadlock — and must see every user task stuck
/// (the wait-for cycle diagnosis).
#[test]
fn detects_send_accept_deadlock() {
    let p = boot(two_cluster_config());

    // Child: waits for a GO$ its parent never sends (the parent is
    // symmetrically waiting for this task's HELLO).
    p.register("pong", |ctx| {
        let _ = ctx.accept().of(1).signal("GO$").run()?;
        ctx.send(To::Parent, "HELLO", vec![])?;
        Ok(())
    });
    p.register("ping", |ctx| {
        ctx.initiate(Where::Cluster(2), "pong", vec![])?;
        // Deadlock: HELLO only arrives after we send GO$, which we only
        // do after receiving HELLO.
        let _ = ctx.accept().of(1).signal("HELLO").run()?;
        Ok(())
    });
    p.initiate_top_level(1, "ping", vec![]).expect("initiate");

    let mut wd = Watchdog::new(p.clone(), WatchdogConfig::default());
    let reports = sample_until_report(&mut wd, 5_000);
    assert!(
        !reports.is_empty(),
        "watchdog failed to detect the send/accept deadlock"
    );
    assert_eq!(reports.len(), 2, "both tasks are stuck: {reports:?}");
    for r in &reports {
        assert_eq!(r.kind, StallKind::AcceptStall, "{r}");
        assert_eq!(r.class, StallClass::Deadlock, "{r}");
        assert!(r.detail.contains("wait-for cycle"), "{r}");
    }

    // The machine cannot quiesce; tear it down hard.
    p.shutdown();
}

/// A force where one member skips the barrier the others arrive at: the
/// survivors spin/park forever. The watchdog must flag the frozen force
/// as a deadlock (no fault plan involved), and the verdict must clear
/// once the missing member finally arrives.
#[test]
fn detects_dead_barrier_member_and_clears_after_recovery() {
    let p = boot(force_config());
    let release = Arc::new(AtomicBool::new(false));
    let r2 = release.clone();

    p.register("skew", move |ctx| {
        let r = r2.clone();
        ctx.forcesplit(move |fc| {
            if fc.member() == 2 {
                // The "dead" member: holds off its barrier arrival until
                // the test releases it.
                while !r.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            fc.barrier()?;
            Ok(())
        })?;
        Ok(())
    });
    p.initiate_top_level(1, "skew", vec![]).expect("initiate");

    let mut wd = Watchdog::new(p.clone(), WatchdogConfig::default());
    let reports = sample_until_report(&mut wd, 5_000);
    assert!(
        !reports.is_empty(),
        "watchdog failed to detect the dead-barrier-member hang"
    );
    assert_eq!(reports[0].kind, StallKind::ForceStall, "{}", reports[0]);
    assert_eq!(reports[0].class, StallClass::Deadlock, "{}", reports[0]);

    // Recovery: let the straggler arrive; the barrier releases and the
    // machine drains cleanly — and the watchdog stops reporting.
    release.store(true, Ordering::Release);
    assert!(p.wait_quiescent(Duration::from_secs(30)), "did not recover");
    let after = wd.sample();
    assert!(
        after.is_empty(),
        "watchdog still reporting after recovery: {after:?}"
    );
    p.shutdown();
}

/// A receiver waiting forever on a sender whose PE the fault plan
/// fail-stopped: the stall is real, but it is fault-induced degradation,
/// not a program deadlock — the classifier must say so.
#[test]
fn classifies_fault_induced_stall() {
    let p = boot(two_cluster_config());
    p.arm_faults(FaultPlan::new(0xD0A).fail_pe(4, 500));

    // Victim on PE4: dies in the work call when its clock crosses the
    // planned fail tick, so HELLO is never sent.
    p.register("victim", |ctx| {
        ctx.work(10_000)?;
        ctx.send(To::Parent, "HELLO", vec![])?;
        Ok(())
    });
    p.register("waiter", |ctx| {
        ctx.initiate(Where::Cluster(2), "victim", vec![])?;
        let _ = ctx.accept().of(1).signal("HELLO").run()?;
        Ok(())
    });
    p.initiate_top_level(1, "waiter", vec![]).expect("initiate");

    let mut wd = Watchdog::new(p.clone(), WatchdogConfig::default());
    let reports = sample_until_report(&mut wd, 5_000);
    assert!(!reports.is_empty(), "watchdog missed the induced stall");
    assert_eq!(reports[0].kind, StallKind::AcceptStall, "{}", reports[0]);
    assert_eq!(
        reports[0].class,
        StallClass::FaultInduced,
        "a planned PE fail-stop must not be diagnosed as a deadlock: {}",
        reports[0]
    );
    p.shutdown();
}

/// Regression: a DELAY-armed ACCEPT is a timed wait — it wakes on its
/// own, so it must stay exempt from stall suspicion even when a slow-PE
/// fault stretches the wait far past the persistence threshold and the
/// machine fingerprint freezes around it. (The exemption comes from the
/// `timed_wait` flag in the task snapshot; a fault plan being armed must
/// not override it.)
#[test]
fn delay_armed_accept_under_slow_pe_stays_exempt() {
    let p = boot(two_cluster_config());
    // Slow PE4 (cluster 2's primary) from the start: everything there
    // crawls, making the timed wait below span many watchdog samples.
    p.arm_faults(FaultPlan::new(0x51_0D).slow_pe(4, 1, 4));

    p.register("dawdler", |ctx| {
        // Nobody ever sends NEVER$: the accept always rides its DELAY
        // out. 300ms of wall-clock timed wait, stretched by the slow PE.
        let _ = ctx
            .accept()
            .of(1)
            .signal("NEVER$")
            .delay(Duration::from_millis(300))
            .run()?;
        Ok(())
    });
    p.initiate_top_level(2, "dawdler", vec![]).expect("initiate");

    // Sample densely for the whole window. The fingerprint freezes (the
    // dawdler is parked, nothing else runs), but the timed wait must
    // never be promoted to a suspect — zero reports throughout.
    let mut wd = Watchdog::new(p.clone(), WatchdogConfig { stall_samples: 2 });
    let deadline = std::time::Instant::now() + Duration::from_millis(250);
    while std::time::Instant::now() < deadline {
        let r = wd.sample();
        assert!(
            r.is_empty(),
            "DELAY-armed accept reported as a stall: {r:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // The delay expires and the machine drains on its own.
    assert!(p.wait_quiescent(Duration::from_secs(30)), "did not finish");
    p.shutdown();
}

/// Healthy cross-cluster ping-pong on the lock-free backends, sampled
/// densely for the whole run: acceptors spin briefly and then park on
/// the eventcount, and the machine fingerprint keeps moving while
/// messages flow — so the watchdog must never report an `AcceptStall`.
/// This is the deflake guarantee for the backend-selectable hot path:
/// a parked lock-free acceptor is indistinguishable from a parked
/// mutex-queue acceptor as far as stall detection is concerned.
#[test]
fn busy_lockfree_acceptors_never_trip_accept_stall() {
    const ROUNDS: usize = 300;
    for backend in [MsgBackend::Mpsc, MsgBackend::Spsc] {
        let mut cfg = two_cluster_config();
        cfg.msg_backend = backend;
        let p = boot(cfg);

        p.register("echo", |ctx| {
            ctx.send(To::Parent, "HELLO", vec![])?;
            for _ in 0..ROUNDS {
                ctx.accept().of(1).signal("PING").run()?;
                ctx.send(To::Parent, "PONG", vec![])?;
            }
            Ok(())
        });
        p.register("driver", |ctx| {
            ctx.initiate(Where::Cluster(2), "echo", vec![])?;
            let mut child = None;
            ctx.accept()
                .of(1)
                .handle("HELLO", |m| {
                    child = Some(m.sender);
                    Ok(())
                })
                .run()?;
            let child = child.expect("HELLO carried the echo id");
            for _ in 0..ROUNDS {
                ctx.send(To::Task(child), "PING", vec![])?;
                ctx.accept().of(1).signal("PONG").run()?;
            }
            Ok(())
        });
        p.initiate_top_level(1, "driver", vec![]).expect("initiate");

        let mut wd = Watchdog::new(p.clone(), WatchdogConfig::default());
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let r = wd.sample();
            assert!(
                r.is_empty(),
                "{backend:?}: false positive on healthy ping-pong traffic: {r:?}"
            );
            if p.wait_quiescent(Duration::from_millis(3)) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{backend:?}: ping-pong failed to finish"
            );
        }
        // Drained and still silent.
        for _ in 0..20 {
            let r = wd.sample();
            assert!(r.is_empty(), "{backend:?}: report after quiescence: {r:?}");
        }
        p.shutdown();
    }
}

/// A machine that finishes its workload must never trip the watchdog,
/// no matter how long it is sampled afterwards: quiescent-but-healthy
/// (only controllers blocked) is not a stall.
#[test]
fn quiescent_machine_is_never_flagged() {
    let p = boot(two_cluster_config());
    p.register("quick", |ctx| {
        ctx.work(500)?;
        ctx.send(To::User, "DONE", vec![])?;
        Ok(())
    });
    p.initiate_top_level(1, "quick", vec![]).expect("initiate");
    assert!(p.wait_quiescent(Duration::from_secs(30)), "did not finish");

    let mut wd = Watchdog::new(p.clone(), WatchdogConfig { stall_samples: 1 });
    for _ in 0..50 {
        let r = wd.sample();
        assert!(r.is_empty(), "false positive on a quiescent machine: {r:?}");
    }
    p.shutdown();
}
