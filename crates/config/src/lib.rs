//! # pisces-config — the PISCES 2 configuration environment
//!
//! "When the user has created and successfully compiled his Pisces Fortran
//! tasktype definitions…, then the command `pisces` brings up the PISCES
//! configuration environment. This environment provides a series of menus
//! that allow the user to build or edit a configuration for a particular
//! run. A menu also drives the creation of an appropriate MMOS loadfile for
//! the run. The configuration includes an execution time limit, trace
//! settings for execution monitoring, and related information, in addition
//! to the virtual machine to actual machine mapping." (paper, Section 11)
//!
//! This crate provides the pieces around the configuration data
//! (which itself lives in `pisces_core::config`):
//!
//! * [`library`] — saving, loading, listing, and editing named
//!   configurations on the Unix-PE file system ("configurations may be
//!   saved on files and reused or edited as desired for later runs");
//! * [`loadfile`] — building the MMOS load image (kernel + runtime + user
//!   code, all loaded to every selected PE) and downloading it into the
//!   PEs' local memories, the source of the paper's "<2.5% of local
//!   memory" measurement;
//! * [`menu`] — a line-oriented equivalent of the configuration menus,
//!   scriptable for tests and usable interactively from an example binary;
//! * [`programs`] — loadfile lookup by name: a library of Pisces Fortran
//!   programs on the host file system, so service-mode clients can submit
//!   a program name instead of shipping source.

pub mod library;
pub mod loadfile;
pub mod menu;
pub mod programs;

pub use library::ConfigLibrary;
pub use loadfile::{LoadFile, ProgramImage};
pub use menu::ConfigMenu;
pub use programs::{ProgramLibrary, ProgramLookupError};
