//! Loadfile lookup by name: a library of Pisces Fortran programs on the
//! host file system.
//!
//! The paper's configuration environment builds "an appropriate MMOS
//! loadfile for the run" from the user's compiled tasktype definitions;
//! in service mode (`piscesd`) clients name a program instead of shipping
//! its source, and the server resolves the name against a directory of
//! `.pf` files (by default the repository's `programs/`). Names are bare
//! stems — `heat`, not `programs/heat.pf` — and must not contain path
//! separators, so a remote tenant can never escape the library directory.

use std::path::{Path, PathBuf};

/// Why a program name failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramLookupError {
    /// The name contains a path separator, `..`, or other character that
    /// could escape the library directory.
    BadName(String),
    /// No `<name>.pf` in the library directory.
    NotFound {
        /// The requested program name.
        name: String,
        /// The directory that was searched.
        dir: PathBuf,
    },
    /// The file exists but could not be read.
    Io {
        /// The requested program name.
        name: String,
        /// The I/O error, rendered.
        error: String,
    },
}

impl std::fmt::Display for ProgramLookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadName(n) => write!(f, "bad program name {n:?} (bare names only)"),
            Self::NotFound { name, dir } => {
                write!(f, "no program {name:?} in {}", dir.display())
            }
            Self::Io { name, error } => write!(f, "cannot read program {name:?}: {error}"),
        }
    }
}

impl std::error::Error for ProgramLookupError {}

/// A directory of named Pisces Fortran programs (`<name>.pf`).
#[derive(Debug, Clone)]
pub struct ProgramLibrary {
    dir: PathBuf,
}

impl ProgramLibrary {
    /// A library over `dir`. The directory need not exist yet; lookups
    /// against a missing directory report `NotFound`.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The library directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Program names available, sorted. A name is the file stem of each
    /// `*.pf` file in the directory.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let p = e.path();
                (p.extension().and_then(|x| x.to_str()) == Some("pf"))
                    .then(|| p.file_stem()?.to_str().map(str::to_string))
                    .flatten()
            })
            .collect();
        names.sort();
        names
    }

    /// Validate `name` and return the path it resolves to, whether or not
    /// the file exists.
    fn path_of(&self, name: &str) -> Result<PathBuf, ProgramLookupError> {
        let ok = !name.is_empty()
            && name != "."
            && name != ".."
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            && !name.contains("..");
        if !ok {
            return Err(ProgramLookupError::BadName(name.to_string()));
        }
        Ok(self.dir.join(format!("{name}.pf")))
    }

    /// Resolve `name` to the path of an existing program file.
    pub fn resolve(&self, name: &str) -> Result<PathBuf, ProgramLookupError> {
        let path = self.path_of(name)?;
        if path.is_file() {
            Ok(path)
        } else {
            Err(ProgramLookupError::NotFound {
                name: name.to_string(),
                dir: self.dir.clone(),
            })
        }
    }

    /// Read the source of program `name`.
    pub fn read(&self, name: &str) -> Result<String, ProgramLookupError> {
        let path = self.resolve(name)?;
        std::fs::read_to_string(&path).map_err(|e| ProgramLookupError::Io {
            name: name.to_string(),
            error: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_with(names: &[&str]) -> (ProgramLibrary, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "pisces-programs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for n in names {
            std::fs::write(dir.join(format!("{n}.pf")), "PROGRAM STUB\n").unwrap();
        }
        (ProgramLibrary::open(&dir), dir)
    }

    #[test]
    fn lists_sorted_stems() {
        let (lib, dir) = lib_with(&["zeta", "alpha"]);
        std::fs::write(dir.join("notes.txt"), "not a program").unwrap();
        assert_eq!(lib.list(), vec!["alpha", "zeta"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolves_and_reads() {
        let (lib, dir) = lib_with(&["pi"]);
        assert!(lib.resolve("pi").unwrap().ends_with("pi.pf"));
        assert_eq!(lib.read("pi").unwrap(), "PROGRAM STUB\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_name_is_not_found() {
        let (lib, dir) = lib_with(&[]);
        assert!(matches!(
            lib.resolve("ghost"),
            Err(ProgramLookupError::NotFound { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn path_escapes_are_rejected() {
        let (lib, dir) = lib_with(&["pi"]);
        for bad in ["../pi", "a/b", "", "..", "pi\0", "über"] {
            assert!(
                matches!(lib.resolve(bad), Err(ProgramLookupError::BadName(_))),
                "{bad:?} should be rejected"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_reports_not_found() {
        let lib = ProgramLibrary::open("/nonexistent/pisces-programs");
        assert!(matches!(
            lib.resolve("pi"),
            Err(ProgramLookupError::NotFound { .. })
        ));
        assert!(lib.list().is_empty());
    }
}
