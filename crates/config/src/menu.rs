//! The configuration menus, as a scriptable command processor.
//!
//! The paper's configuration environment "provides a series of menus that
//! allow the user to build or edit a configuration for a particular run"
//! (Section 11), choosing: how many clusters and their numbers, the
//! primary PE of each cluster, the secondary PEs that run its forces, and
//! the slots per cluster (Section 9) — plus the execution time limit and
//! trace settings.
//!
//! [`ConfigMenu`] accepts one command per line, so it can drive an
//! interactive session (see `examples/configurator.rs`) or a scripted test
//! identically. Commands:
//!
//! ```text
//! clusters <n1> <n2> …          declare the cluster numbers in use
//! primary <cluster> <pe>        set a cluster's primary PE
//! secondaries <cluster> <pes>   set force PEs, e.g. 7-15 or 16,17,20
//! slots <cluster> <n>           set user slots
//! terminal <cluster>            attach the user terminal
//! timelimit <ticks>|off         execution time limit
//! trace on|off <event>|all      initial trace settings
//! show                          render the working configuration
//! validate                      check the working configuration
//! save <name>                   save to the configuration library
//! load <name>                   load from the library into the editor
//! list                          list saved configurations
//! ```

use crate::library::ConfigLibrary;
use pisces_core::substrate::Substrate;
use pisces_core::config::{ClusterConfig, MachineConfig};
use pisces_core::error::{PiscesError, Result};
use pisces_core::trace::TraceEventKind;
use std::sync::Arc;

/// A menu session editing one working configuration.
pub struct ConfigMenu {
    lib: ConfigLibrary,
    working: MachineConfig,
}

/// Parse a PE list: `7-15`, `16,17,20`, `4`, or combinations `3,7-9`.
fn parse_pe_list(s: &str) -> Result<Vec<u16>> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if let Some((a, b)) = part.split_once('-') {
            let a: u16 = a.trim().parse().map_err(|_| bad_num(part))?;
            let b: u16 = b.trim().parse().map_err(|_| bad_num(part))?;
            if a > b {
                return Err(PiscesError::BadConfiguration(format!(
                    "empty PE range {part}"
                )));
            }
            out.extend(a..=b);
        } else {
            out.push(part.parse().map_err(|_| bad_num(part))?);
        }
    }
    Ok(out)
}

fn bad_num(s: &str) -> PiscesError {
    PiscesError::BadConfiguration(format!("not a number: {s:?}"))
}

fn parse_event(s: &str) -> Result<TraceEventKind> {
    TraceEventKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            PiscesError::BadConfiguration(format!(
                "unknown trace event {s:?}; one of {}",
                TraceEventKind::ALL.map(|k| k.label()).join(", ")
            ))
        })
}

impl ConfigMenu {
    /// A fresh session over the machine's configuration library, starting
    /// from an empty working configuration.
    pub fn new(sub: Arc<dyn Substrate>) -> Self {
        Self {
            lib: ConfigLibrary::new(sub),
            working: MachineConfig::builder().build(),
        }
    }

    /// The current working configuration (may be incomplete/invalid until
    /// `validate` passes).
    pub fn working(&self) -> &MachineConfig {
        &self.working
    }

    /// Take the working configuration, validated, ready to boot.
    pub fn build(&self) -> Result<MachineConfig> {
        self.working.validate()?;
        Ok(self.working.clone())
    }

    fn cluster_mut(&mut self, n: u8) -> Result<&mut ClusterConfig> {
        self.working
            .clusters
            .iter_mut()
            .find(|c| c.number == n)
            .ok_or(PiscesError::NoSuchCluster(n))
    }

    /// Execute one menu command; returns the text the menu would display.
    pub fn execute(&mut self, line: &str) -> Result<String> {
        let mut words = line.split_whitespace();
        let Some(cmd) = words.next() else {
            return Ok(String::new());
        };
        let rest: Vec<&str> = words.collect();
        let need = |n: usize| -> Result<()> {
            if rest.len() < n {
                Err(PiscesError::BadConfiguration(format!(
                    "{cmd}: expected {n} argument(s)"
                )))
            } else {
                Ok(())
            }
        };
        match cmd {
            "clusters" => {
                need(1)?;
                let numbers = parse_pe_list(&rest.join(","))?;
                self.working.clusters = numbers
                    .iter()
                    .map(|&n| ClusterConfig::new(n as u8, 0, 4))
                    .collect();
                Ok(format!("{} cluster(s) declared", numbers.len()))
            }
            "primary" => {
                need(2)?;
                let n = rest[0].parse().map_err(|_| bad_num(rest[0]))?;
                let pe = rest[1].parse().map_err(|_| bad_num(rest[1]))?;
                self.cluster_mut(n)?.primary_pe = pe;
                Ok(format!("cluster {n}: primary PE{pe}"))
            }
            "secondaries" => {
                need(2)?;
                let n = rest[0].parse().map_err(|_| bad_num(rest[0]))?;
                let pes = parse_pe_list(&rest[1..].join(","))?;
                let count = pes.len();
                self.cluster_mut(n)?.secondary_pes = pes;
                Ok(format!("cluster {n}: {count} secondary PE(s)"))
            }
            "slots" => {
                need(2)?;
                let n = rest[0].parse().map_err(|_| bad_num(rest[0]))?;
                let s = rest[1].parse().map_err(|_| bad_num(rest[1]))?;
                self.cluster_mut(n)?.slots = s;
                Ok(format!("cluster {n}: {s} slot(s)"))
            }
            "terminal" => {
                need(1)?;
                let n = rest[0].parse().map_err(|_| bad_num(rest[0]))?;
                for c in &mut self.working.clusters {
                    c.has_terminal = false;
                }
                self.cluster_mut(n)?.has_terminal = true;
                Ok(format!("terminal attached to cluster {n}"))
            }
            "timelimit" => {
                need(1)?;
                if rest[0] == "off" {
                    self.working.time_limit_ticks = None;
                    Ok("time limit off".into())
                } else {
                    let t = rest[0].parse().map_err(|_| bad_num(rest[0]))?;
                    self.working.time_limit_ticks = Some(t);
                    Ok(format!("time limit {t} ticks"))
                }
            }
            "trace" => {
                need(2)?;
                let on = match rest[0] {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(PiscesError::BadConfiguration(format!(
                            "trace: expected on/off, got {other:?}"
                        )))
                    }
                };
                let kinds: Vec<TraceEventKind> = if rest[1].eq_ignore_ascii_case("all") {
                    TraceEventKind::ALL.to_vec()
                } else {
                    vec![parse_event(rest[1])?]
                };
                for k in kinds {
                    let enabled = &mut self.working.trace.enabled;
                    if on && !enabled.contains(&k) {
                        enabled.push(k);
                    } else if !on {
                        enabled.retain(|&e| e != k);
                    }
                }
                Ok(format!(
                    "tracing: {}",
                    if self.working.trace.enabled.is_empty() {
                        "(none)".to_string()
                    } else {
                        self.working
                            .trace
                            .enabled
                            .iter()
                            .map(|k| k.label())
                            .collect::<Vec<_>>()
                            .join(", ")
                    }
                ))
            }
            "show" => Ok(self.render()),
            "validate" => {
                self.working.validate()?;
                Ok("configuration is valid".into())
            }
            "save" => {
                need(1)?;
                self.lib.save(rest[0], &self.working)?;
                Ok(format!("saved as {:?}", rest[0]))
            }
            "load" => {
                need(1)?;
                self.working = self.lib.load(rest[0])?;
                Ok(format!("loaded {:?}", rest[0]))
            }
            "list" => Ok(self.lib.list().join("\n")),
            other => Err(PiscesError::BadConfiguration(format!(
                "unknown menu command {other:?}"
            ))),
        }
    }

    /// Render the working configuration as the menus would show it.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("PISCES 2 CONFIGURATION\n");
        for c in &self.working.clusters {
            let _ = writeln!(
                s,
                "  cluster {:>2}: primary PE{:<2} slots {:<2} secondaries {:?}{}",
                c.number,
                c.primary_pe,
                c.slots,
                c.secondary_pes,
                if c.has_terminal { "  [terminal]" } else { "" }
            );
        }
        let _ = writeln!(
            s,
            "  time limit: {}",
            self.working
                .time_limit_ticks
                .map_or("none".to_string(), |t| format!("{t} ticks"))
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn menu() -> ConfigMenu {
        ConfigMenu::new(pisces_core::substrate::SubstrateSpec::default().build())
    }

    /// Drive the menu through the paper's Section 9 example and check the
    /// result equals the built-in constructor.
    #[test]
    fn scripted_section9_example() {
        let mut m = menu();
        for line in [
            "clusters 1-4",
            "primary 1 3",
            "primary 2 4",
            "primary 3 5",
            "primary 4 6",
            "slots 1 4",
            "slots 2 4",
            "slots 3 4",
            "slots 4 4",
            "secondaries 2 16-20",
            "secondaries 3 7-15",
            "secondaries 4 7-15",
            "terminal 1",
        ] {
            m.execute(line).unwrap();
        }
        let built = m.build().unwrap();
        assert_eq!(built.clusters, MachineConfig::section9_example().clusters);
    }

    #[test]
    fn pe_list_parsing() {
        assert_eq!(parse_pe_list("7-9").unwrap(), vec![7, 8, 9]);
        assert_eq!(parse_pe_list("3,7-8,20").unwrap(), vec![3, 7, 8, 20]);
        assert_eq!(parse_pe_list("4").unwrap(), vec![4]);
        assert!(parse_pe_list("9-7").is_err());
        assert!(parse_pe_list("x").is_err());
    }

    #[test]
    fn validate_catches_incomplete_config() {
        let mut m = menu();
        m.execute("clusters 1").unwrap();
        // primary still 0 (unset) → invalid
        assert!(m.execute("validate").is_err());
        m.execute("primary 1 3").unwrap();
        assert_eq!(m.execute("validate").unwrap(), "configuration is valid");
    }

    #[test]
    fn save_load_through_menu() {
        let mut m = menu();
        m.execute("clusters 1,2").unwrap();
        m.execute("primary 1 3").unwrap();
        m.execute("primary 2 4").unwrap();
        m.execute("save duo").unwrap();
        m.execute("clusters 1").unwrap();
        m.execute("primary 1 5").unwrap();
        assert_eq!(m.working().clusters.len(), 1);
        m.execute("load duo").unwrap();
        assert_eq!(m.working().clusters.len(), 2);
        assert_eq!(m.execute("list").unwrap(), "duo");
    }

    #[test]
    fn trace_and_timelimit_commands() {
        let mut m = menu();
        m.execute("clusters 1").unwrap();
        m.execute("primary 1 3").unwrap();
        m.execute("trace on MSG-SEND").unwrap();
        m.execute("trace on all").unwrap();
        assert_eq!(m.working().trace.enabled.len(), 8);
        m.execute("trace off BARRIER").unwrap();
        assert_eq!(m.working().trace.enabled.len(), 7);
        m.execute("timelimit 5000").unwrap();
        assert_eq!(m.working().time_limit_ticks, Some(5000));
        m.execute("timelimit off").unwrap();
        assert_eq!(m.working().time_limit_ticks, None);
    }

    #[test]
    fn unknown_command_and_bad_args() {
        let mut m = menu();
        assert!(m.execute("frobnicate").is_err());
        assert!(m.execute("slots 1").is_err(), "missing argument");
        assert!(m.execute("primary 1 3").is_err(), "no such cluster yet");
        assert_eq!(m.execute("").unwrap(), "", "blank lines are ignored");
    }

    #[test]
    fn show_renders_clusters() {
        let mut m = menu();
        m.execute("clusters 1").unwrap();
        m.execute("primary 1 3").unwrap();
        m.execute("terminal 1").unwrap();
        let shown = m.execute("show").unwrap();
        assert!(shown.contains("cluster  1") && shown.contains("[terminal]"));
    }
}
