//! Saved configurations.
//!
//! "Configurations may be saved on files and reused or edited as desired
//! for later runs. … Experimentation with different mappings from PISCES
//! clusters to hardware resources is straightforward, by editing and
//! saving several variants of a configuration mapping." (paper, Section 9)
//!
//! Configurations are stored as JSON under `configs/` on the Unix-PE file
//! system, one file per name.

use pisces_core::substrate::Substrate;
use pisces_core::config::MachineConfig;
use pisces_core::error::{PiscesError, Result};
use std::sync::Arc;

/// Directory on the Unix-PE file system holding saved configurations.
pub const CONFIG_DIR: &str = "configs";

/// A library of named, saved configurations.
pub struct ConfigLibrary {
    sub: Arc<dyn Substrate>,
}

impl ConfigLibrary {
    /// A library over the machine's file system.
    pub fn new(sub: Arc<dyn Substrate>) -> Self {
        Self { sub }
    }

    fn path(name: &str) -> String {
        format!("{CONFIG_DIR}/{name}.json")
    }

    /// Save a configuration under a name (validating it first — the menus
    /// never let an invalid mapping be saved).
    pub fn save(&self, name: &str, config: &MachineConfig) -> Result<()> {
        config.validate()?;
        let json = serde_json::to_vec_pretty(config)
            .map_err(|e| PiscesError::Internal(format!("serialize configuration: {e}")))?;
        self.sub.fs().write(&Self::path(name), &json)?;
        Ok(())
    }

    /// Load a saved configuration by name.
    pub fn load(&self, name: &str) -> Result<MachineConfig> {
        let bytes = self.sub.fs().read(&Self::path(name))?;
        let config: MachineConfig = serde_json::from_slice(&bytes).map_err(|e| {
            PiscesError::BadConfiguration(format!("configuration file {name} is corrupt: {e}"))
        })?;
        config.validate()?;
        Ok(config)
    }

    /// Edit a saved configuration in place: load, apply `edit`, validate,
    /// save back. On validation failure the saved file is untouched.
    pub fn edit(&self, name: &str, edit: impl FnOnce(&mut MachineConfig)) -> Result<MachineConfig> {
        let mut config = self.load(name)?;
        edit(&mut config);
        self.save(name, &config)?;
        Ok(config)
    }

    /// Copy a saved configuration under a new name (the paper's "several
    /// variants of a configuration mapping").
    pub fn copy(&self, from: &str, to: &str) -> Result<()> {
        let config = self.load(from)?;
        self.save(to, &config)
    }

    /// Names of all saved configurations, sorted.
    pub fn list(&self) -> Vec<String> {
        self.sub
            .fs()
            .list(CONFIG_DIR)
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(&format!("{CONFIG_DIR}/"))
                    .and_then(|f| f.strip_suffix(".json"))
                    .map(str::to_string)
            })
            .collect()
    }

    /// Delete a saved configuration.
    pub fn delete(&self, name: &str) -> Result<()> {
        Ok(self.sub.fs().remove(&Self::path(name))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisces_core::config::ClusterConfig;

    fn lib() -> ConfigLibrary {
        ConfigLibrary::new(pisces_core::substrate::SubstrateSpec::default().build())
    }

    #[test]
    fn save_load_roundtrip() {
        let lib = lib();
        let c = MachineConfig::section9_example();
        lib.save("sec9", &c).unwrap();
        assert_eq!(lib.load("sec9").unwrap(), c);
        assert_eq!(lib.list(), vec!["sec9".to_string()]);
    }

    #[test]
    fn invalid_configuration_not_saved() {
        let lib = lib();
        let bad = MachineConfig::builder().clusters([ClusterConfig::new(1, 1, 4)]).build(); // Unix PE
        assert!(lib.save("bad", &bad).is_err());
        assert!(lib.list().is_empty());
    }

    #[test]
    fn edit_roundtrips_and_validates() {
        let lib = lib();
        lib.save("base", &MachineConfig::simple(2, 4)).unwrap();
        let edited = lib.edit("base", |c| c.clusters[0].slots = 8).unwrap();
        assert_eq!(edited.clusters[0].slots, 8);
        assert_eq!(lib.load("base").unwrap().clusters[0].slots, 8);
        // An edit that breaks validation is rejected and leaves the file.
        let err = lib.edit("base", |c| c.clusters[0].primary_pe = 1);
        assert!(err.is_err());
        assert_eq!(lib.load("base").unwrap().clusters[0].primary_pe, 3);
    }

    #[test]
    fn copy_creates_variant() {
        let lib = lib();
        lib.save("a", &MachineConfig::simple(1, 2)).unwrap();
        lib.copy("a", "b").unwrap();
        assert_eq!(lib.list(), vec!["a".to_string(), "b".to_string()]);
        lib.delete("a").unwrap();
        assert_eq!(lib.list(), vec!["b".to_string()]);
    }

    #[test]
    fn load_missing_or_corrupt() {
        let lib = lib();
        assert!(lib.load("nope").is_err());
        lib.sub
            .fs()
            .write("configs/junk.json", b"{not json")
            .unwrap();
        assert!(matches!(
            lib.load("junk"),
            Err(PiscesError::BadConfiguration(_))
        ));
    }
}
