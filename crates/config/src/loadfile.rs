//! MMOS load files.
//!
//! "The user may select any subset of the MMOS PE's for loading; all
//! selected PE's are loaded with the same code, which includes the MMOS
//! kernel and all user code." (paper, Section 11)
//!
//! A load file is built from the configuration (which PEs are selected)
//! and the program image (how much user code there is). Downloading it
//! reserves the image in each selected PE's 1 MB local memory, which is
//! what the paper's Section 13 measurement divides by: "the PISCES 2
//! system uses less than 2.5% of each PE's local memory (for system code
//! and data)".

use pisces_core::config::MachineConfig;
use pisces_core::substrate::Substrate;
use pisces_substrate::pe::PeId;
use pisces_core::error::Result;
use pisces_core::machine::SYSTEM_IMAGE_BYTES;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Estimated size of one compiled tasktype (object code + constants).
/// The NS32032 f77 compiler produced compact code; this is an average for
/// accounting purposes.
pub const BYTES_PER_TASKTYPE: usize = 2048;

/// Estimated size of one compiled handler or ordinary subprogram.
pub const BYTES_PER_SUBPROGRAM: usize = 1024;

/// Description of the compiled user program, from which the user-code
/// portion of the load image is computed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramImage {
    /// Tasktype names in the program.
    pub tasktypes: Vec<String>,
    /// Handler subroutines and ordinary Fortran subprograms.
    pub subprograms: Vec<String>,
    /// Extra bytes of user data statically linked into the image.
    pub static_data_bytes: usize,
}

impl ProgramImage {
    /// An image for a program with the given tasktypes and no extras.
    pub fn with_tasktypes<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        Self {
            tasktypes: names.into_iter().map(Into::into).collect(),
            ..Self::default()
        }
    }

    /// Size of the user code + static data in bytes.
    pub fn user_bytes(&self) -> usize {
        self.tasktypes.len() * BYTES_PER_TASKTYPE
            + self.subprograms.len() * BYTES_PER_SUBPROGRAM
            + self.static_data_bytes
    }
}

/// A built MMOS load file: which PEs get loaded and with how many bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadFile {
    /// PEs selected for loading (every PE the configuration touches).
    pub pes: Vec<u16>,
    /// System portion: MMOS kernel + PISCES runtime code and data.
    pub system_bytes: usize,
    /// User portion: compiled tasktypes, subprograms, static data.
    pub user_bytes: usize,
    /// Per-PE local memory of the target machine, the denominator of
    /// [`LoadFile::local_fraction`]. Old descriptors without the field
    /// default to the FLEX/32's 1 MB.
    #[serde(default = "default_local_mem")]
    pub local_mem_bytes: usize,
}

fn default_local_mem() -> usize {
    1024 * 1024
}

impl LoadFile {
    /// Build a load file for a configuration and program. All selected PEs
    /// receive the same image.
    pub fn build(config: &MachineConfig, program: &ProgramImage) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            pes: config.pes_in_use(),
            system_bytes: SYSTEM_IMAGE_BYTES,
            user_bytes: program.user_bytes(),
            local_mem_bytes: config.substrate.topology().local_mem_bytes,
        })
    }

    /// Total image bytes per PE.
    pub fn image_bytes(&self) -> usize {
        self.system_bytes + self.user_bytes
    }

    /// Fraction of a PE's local memory the image occupies.
    pub fn local_fraction(&self) -> f64 {
        self.image_bytes() as f64 / self.local_mem_bytes as f64
    }

    /// Download the *user* portion of the image to every selected PE.
    ///
    /// The system portion is reserved by [`pisces_core::machine::Pisces::boot`]
    /// itself (the kernel and runtime are always loaded); calling this
    /// after boot adds the user code, completing the paper's load step.
    pub fn download_user_code(&self, sub: &Arc<dyn Substrate>) -> Result<()> {
        if self.user_bytes == 0 {
            return Ok(());
        }
        for &n in &self.pes {
            let pe = PeId::new(n)?;
            sub.pe(pe).local.reserve(self.user_bytes, pe)?;
        }
        Ok(())
    }

    /// Serialize the load file descriptor to the file system (the menu
    /// "drives the creation of an appropriate MMOS loadfile for the run").
    pub fn save(&self, sub: &Arc<dyn Substrate>, path: &str) -> Result<()> {
        let json = serde_json::to_vec_pretty(self)
            .map_err(|e| pisces_core::error::PiscesError::Internal(e.to_string()))?;
        sub.fs().write(path, &json)?;
        Ok(())
    }

    /// Read a load file descriptor back.
    pub fn load(sub: &Arc<dyn Substrate>, path: &str) -> Result<Self> {
        let bytes = sub.fs().read(path)?;
        serde_json::from_slice(&bytes).map_err(|e| {
            pisces_core::error::PiscesError::BadConfiguration(format!(
                "load file {path} is corrupt: {e}"
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_sizes_add_up() {
        let prog = ProgramImage {
            tasktypes: vec!["main".into(), "worker".into()],
            subprograms: vec!["handler1".into()],
            static_data_bytes: 500,
        };
        assert_eq!(prog.user_bytes(), 2 * 2048 + 1024 + 500);
        let lf = LoadFile::build(&MachineConfig::simple(2, 4), &prog).unwrap();
        assert_eq!(lf.pes, vec![3, 4]);
        assert_eq!(lf.image_bytes(), SYSTEM_IMAGE_BYTES + prog.user_bytes());
    }

    #[test]
    fn system_image_is_under_the_papers_bound() {
        // Section 13: "the PISCES 2 system uses less than 2.5% of each
        // PE's local memory (for system code and data)".
        let lf = LoadFile::build(&MachineConfig::simple(1, 1), &ProgramImage::default()).unwrap();
        assert!(
            lf.local_fraction() < 0.025,
            "system image fraction {:.4} must stay under 2.5%",
            lf.local_fraction()
        );
    }

    #[test]
    fn download_reserves_user_code_on_all_pes() {
        let flex = pisces_core::substrate::SubstrateSpec::default().build();
        let config = MachineConfig::section9_example();
        let prog = ProgramImage::with_tasktypes(["main", "worker", "leaf"]);
        let lf = LoadFile::build(&config, &prog).unwrap();
        lf.download_user_code(&flex).unwrap();
        for &pe in &lf.pes {
            assert_eq!(
                flex.pe(PeId::new(pe).unwrap()).local.used(),
                prog.user_bytes(),
                "PE{pe}"
            );
        }
        // PEs outside the configuration got nothing.
        assert_eq!(flex.pe(PeId::new(1).unwrap()).local.used(), 0);
    }

    #[test]
    fn save_load_roundtrip() {
        let flex = pisces_core::substrate::SubstrateSpec::default().build();
        let lf = LoadFile::build(&MachineConfig::simple(3, 2), &ProgramImage::default()).unwrap();
        lf.save(&flex, "loads/run1.json").unwrap();
        assert_eq!(LoadFile::load(&flex, "loads/run1.json").unwrap(), lf);
    }
}
