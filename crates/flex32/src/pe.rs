//! Processing elements.
//!
//! The FLEX/32 at NASA Langley had 20 PEs. PEs 1 and 2 run Unix (file
//! system, program development) and are *not* available for PISCES user
//! tasks; PEs 3–20 run MMOS and are loaded with the PISCES runtime plus the
//! user program for each run.

use crate::clock::{ClockReading, TickClock};
use crate::cpu::{CpuGuard, CpuToken};
use crate::fault::FaultCell;
use crate::mmos::Console;
use crate::{FIRST_MMOS_PE, LAST_MMOS_PE, LOCAL_MEM_BYTES, NUM_PES};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Identifier of a processing element, 1–20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(u8);

impl PeId {
    /// Construct a PE id; `n` must be in 1..=20.
    pub fn new(n: u8) -> Result<Self, PeError> {
        if (1..=NUM_PES as u8).contains(&n) {
            Ok(Self(n))
        } else {
            Err(PeError::NoSuchPe(n))
        }
    }

    /// The raw PE number (1–20).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this PE runs MMOS and may host PISCES tasks.
    pub fn is_mmos(self) -> bool {
        (FIRST_MMOS_PE..=LAST_MMOS_PE).contains(&self.0)
    }

    /// Whether this PE runs Unix (PEs 1 and 2).
    pub fn is_unix(self) -> bool {
        !self.is_mmos()
    }

    /// All PE ids on the machine, in order.
    pub fn all() -> impl Iterator<Item = PeId> {
        (1..=NUM_PES as u8).map(PeId)
    }

    /// All MMOS PE ids (3–20), the ones PISCES may use.
    pub fn mmos() -> impl Iterator<Item = PeId> {
        (FIRST_MMOS_PE..=LAST_MMOS_PE).map(PeId)
    }
}

impl std::fmt::Display for PeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// What kernel a PE runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeKind {
    /// Unix PE (1 or 2): file system, development, user queueing.
    Unix,
    /// MMOS PE (3–20): allocatable to one PISCES run at a time.
    Mmos,
}

/// Errors raised by PE-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeError {
    /// PE number outside 1–20.
    NoSuchPe(u8),
    /// Local memory request exceeded the 1 MB capacity.
    LocalMemoryExhausted {
        /// PE on which the reservation failed.
        pe: u8,
        /// Bytes requested.
        requested: usize,
        /// Bytes still free.
        available: usize,
    },
    /// The PE is fail-stopped (see [`crate::fault`]) and refuses to run
    /// anything.
    PeFailed {
        /// The failed PE's number.
        pe: u8,
    },
}

impl std::fmt::Display for PeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeError::NoSuchPe(n) => write!(f, "no such PE: {n} (valid: 1-20)"),
            PeError::LocalMemoryExhausted {
                pe,
                requested,
                available,
            } => write!(
                f,
                "PE{pe} local memory exhausted: requested {requested} B, {available} B free"
            ),
            PeError::PeFailed { pe } => write!(f, "PE{pe} is fail-stopped"),
        }
    }
}

impl std::error::Error for PeError {}

/// Byte-accounted local memory of one PE (1 Mbyte on the FLEX/32).
///
/// PISCES never shares local memory between PEs, so a capacity counter is a
/// faithful model; what the paper measures is the *fraction of the 1 MB*
/// consumed by system code and data.
#[derive(Debug)]
pub struct LocalMemory {
    capacity: usize,
    used: AtomicUsize,
}

impl LocalMemory {
    fn new() -> Self {
        Self {
            capacity: LOCAL_MEM_BYTES,
            used: AtomicUsize::new(0),
        }
    }

    /// Reserve `bytes` of local memory. Fails if the PE would exceed 1 MB.
    pub fn reserve(&self, bytes: usize, pe: PeId) -> Result<(), PeError> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur + bytes;
            if new > self.capacity {
                return Err(PeError::LocalMemoryExhausted {
                    pe: pe.number(),
                    requested: bytes,
                    available: self.capacity - cur,
                });
            }
            match self
                .used
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release a previous reservation.
    pub fn release(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "local memory release underflow");
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Total capacity in bytes (1 MB).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fraction of local memory in use, 0.0–1.0.
    pub fn utilization(&self) -> f64 {
        self.used() as f64 / self.capacity as f64
    }
}

/// An opaque per-PE activity word for sampling profilers.
///
/// The substrate stores whatever 64-bit word the runtime packs into it
/// (task identity + current primitive in the PISCES case) and hands it
/// back on demand; the encoding is entirely the writer's business. A
/// zero word means "nothing published". Reads and writes are single
/// relaxed atomics, so publishing an activity costs the same as bumping
/// a counter.
#[derive(Debug, Default)]
pub struct ActivityCell(AtomicU64);

impl ActivityCell {
    /// A cell with nothing published.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish an activity word (0 clears).
    #[inline]
    pub fn set(&self, word: u64) {
        self.0.store(word, Ordering::Relaxed);
    }

    /// The last published word (0 when nothing is published).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One processing element of the simulated FLEX/32.
#[derive(Debug)]
pub struct Pe {
    id: PeId,
    kind: PeKind,
    /// 1 MB local memory accounting.
    pub local: LocalMemory,
    /// Tick clock, reported in trace lines.
    pub clock: TickClock,
    /// CPU arbitration token (multiprogramming).
    pub cpu: CpuToken,
    /// Terminal console attached to the PE.
    pub console: Console,
    /// Injected-fault state (healthy unless a fault plan is armed).
    pub fault: FaultCell,
    /// Activity word sampled by profilers (see [`ActivityCell`]).
    pub activity: ActivityCell,
}

impl Pe {
    pub(crate) fn new(id: PeId) -> Self {
        let kind = if id.is_unix() {
            PeKind::Unix
        } else {
            PeKind::Mmos
        };
        Self {
            id,
            kind,
            local: LocalMemory::new(),
            clock: TickClock::new(),
            cpu: CpuToken::new(),
            console: Console::new(id),
            fault: FaultCell::new(),
            activity: ActivityCell::new(),
        }
    }

    /// Acquire the CPU token, unless the PE is fail-stopped. A failed PE
    /// behaves like powered-off hardware: nothing can be scheduled on it.
    /// The check is repeated after acquisition so a fault that fires while
    /// we were queued on the token is still honoured.
    pub fn acquire_cpu(&self) -> Result<CpuGuard<'_>, PeError> {
        if self.fault.is_failed() {
            return Err(PeError::PeFailed {
                pe: self.id.number(),
            });
        }
        let guard = self.cpu.acquire();
        if self.fault.is_failed() {
            return Err(PeError::PeFailed {
                pe: self.id.number(),
            });
        }
        Ok(guard)
    }

    /// This PE's id.
    pub fn id(&self) -> PeId {
        self.id
    }

    /// Which kernel the PE runs.
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// Take a clock reading on this PE (for trace lines).
    pub fn reading(&self) -> ClockReading {
        ClockReading {
            pe: self.id.number(),
            ticks: self.clock.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_id_bounds() {
        assert!(PeId::new(0).is_err());
        assert!(PeId::new(21).is_err());
        assert!(PeId::new(1).is_ok());
        assert!(PeId::new(20).is_ok());
    }

    #[test]
    fn unix_vs_mmos_split() {
        assert!(PeId::new(1).unwrap().is_unix());
        assert!(PeId::new(2).unwrap().is_unix());
        assert!(PeId::new(3).unwrap().is_mmos());
        assert!(PeId::new(20).unwrap().is_mmos());
        assert_eq!(PeId::mmos().count(), 18);
        assert_eq!(PeId::all().count(), 20);
    }

    #[test]
    fn local_memory_reserve_release() {
        let pe = PeId::new(3).unwrap();
        let m = LocalMemory::new();
        m.reserve(1024, pe).unwrap();
        assert_eq!(m.used(), 1024);
        m.release(1024);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn local_memory_capacity_enforced() {
        let pe = PeId::new(3).unwrap();
        let m = LocalMemory::new();
        m.reserve(LOCAL_MEM_BYTES, pe).unwrap();
        let err = m.reserve(1, pe).unwrap_err();
        match err {
            PeError::LocalMemoryExhausted { available, .. } => assert_eq!(available, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn utilization_fraction() {
        let pe = PeId::new(4).unwrap();
        let m = LocalMemory::new();
        m.reserve(LOCAL_MEM_BYTES / 4, pe).unwrap();
        assert!((m.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn failed_pe_rejects_cpu_acquisition() {
        let pe = Pe::new(PeId::new(5).unwrap());
        assert!(pe.acquire_cpu().is_ok());
        pe.fault.fail();
        match pe.acquire_cpu() {
            Err(PeError::PeFailed { pe: n }) => assert_eq!(n, 5),
            Err(other) => panic!("expected PeFailed, got {other:?}"),
            Ok(_) => panic!("expected PeFailed, got a CPU guard"),
        }
        pe.fault.heal();
        assert!(pe.acquire_cpu().is_ok());
    }

    #[test]
    fn activity_cell_publishes_and_clears() {
        let pe = Pe::new(PeId::new(9).unwrap());
        assert_eq!(pe.activity.get(), 0);
        pe.activity.set(0xCAFE_F00D);
        assert_eq!(pe.activity.get(), 0xCAFE_F00D);
        pe.activity.set(0);
        assert_eq!(pe.activity.get(), 0);
    }

    #[test]
    fn pe_reading_carries_pe_number() {
        let pe = Pe::new(PeId::new(7).unwrap());
        pe.clock.advance(13);
        let r = pe.reading();
        assert_eq!(r.pe, 7);
        assert_eq!(r.ticks, 13);
    }
}
