//! # flex32 — a software model of the Flexible FLEX/32 multicomputer
//!
//! The PISCES 2 environment (Pratt, ICPP 1987) was implemented on the
//! Flexible FLEX/32 at NASA Langley Research Center:
//!
//! * 20 processors, each a National Semiconductor 32032;
//! * 1 Mbyte of local memory on each processor;
//! * 2.25 Mbyte of shared memory, accessible by all processors;
//! * disks attached to processors 1 and 2;
//! * PEs 1 and 2 run Unix and maintain the file system; PEs 3–20 run MMOS,
//!   a simple Unix-like kernel providing multiprogramming, I/O, storage
//!   allocation, and process creation/termination.
//!
//! Since the substrate refactor, the machine-neutral machinery — PEs,
//! clocks, the shared-memory arena, pools, faults, process tables — lives
//! in the `pisces-substrate` crate; this crate is the FLEX/32 *shape*: the
//! 20-PE (or, scaled, n-PE) topology, the Unix/MMOS service split, and a
//! free link model (every PE is one shared-bus reference from every
//! other). [`Flex32`] implements [`pisces_substrate::Substrate`], and the
//! familiar module paths (`flex32::shmem`, `flex32::fault`, …) re-export
//! the substrate modules so existing code keeps compiling.
//!
//! Concurrency model: the simulated machine is driven by ordinary OS
//! threads. A thread that wants to execute *on* a PE must hold that PE's CPU
//! token ([`cpu::CpuToken`]); tasks multiprogrammed on one PE therefore
//! serialize at runtime-call granularity, while activities on distinct PEs
//! run genuinely in parallel — the same concurrency structure as the FLEX.

pub mod machine;

// The machine-neutral machinery moved to `pisces-substrate`; these
// re-exports keep the historical `flex32::…` paths alive.
pub use pisces_substrate::affinity;
pub use pisces_substrate::clock;
pub use pisces_substrate::cpu;
pub use pisces_substrate::fault;
pub use pisces_substrate::fs;
pub use pisces_substrate::mmos;
pub use pisces_substrate::pe;
pub use pisces_substrate::pool;
pub use pisces_substrate::shmem;

pub use fault::{
    FaultAction, FaultCell, FaultEvent, FaultInjector, FaultPlan, MessageFault, PeFaultState,
};
pub use machine::Flex32;
pub use pe::{ActivityCell, PeId, PeKind};
pub use pisces_substrate::{LinkCost, MachineCore, Substrate, Topology};
pub use pool::{PoolReport, ShmPool};
pub use shmem::{SharedMemory, ShmError, ShmHandle};

/// Number of processing elements in the NASA Langley FLEX/32.
pub const NUM_PES: usize = 20;

/// Local memory per PE: 1 Mbyte.
pub const LOCAL_MEM_BYTES: usize = 1 << 20;

/// Shared memory accessible by all PEs: 2.25 Mbyte.
pub const SHARED_MEM_BYTES: usize = 2_359_296;

/// PEs 1 and 2 run Unix and are not available for PISCES user tasks.
pub const UNIX_PES: [u16; 2] = [1, 2];

/// First PE running MMOS (available to PISCES).
pub const FIRST_MMOS_PE: u16 = 3;

/// Last PE running MMOS (available to PISCES) on the historical 20-PE
/// machine. Scaled machines ([`Flex32::with_pes`]) run MMOS on every PE
/// from [`FIRST_MMOS_PE`] up to their own size.
pub const LAST_MMOS_PE: u16 = 20;
