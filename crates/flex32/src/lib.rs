//! # flex32 — a software model of the Flexible FLEX/32 multicomputer
//!
//! The PISCES 2 environment (Pratt, ICPP 1987) was implemented on the
//! Flexible FLEX/32 at NASA Langley Research Center:
//!
//! * 20 processors, each a National Semiconductor 32032;
//! * 1 Mbyte of local memory on each processor;
//! * 2.25 Mbyte of shared memory, accessible by all processors;
//! * disks attached to processors 1 and 2;
//! * PEs 1 and 2 run Unix and maintain the file system; PEs 3–20 run MMOS,
//!   a simple Unix-like kernel providing multiprogramming, I/O, storage
//!   allocation, and process creation/termination.
//!
//! This crate models that machine faithfully enough that the paper's
//! storage measurements (Section 13) can be *measured* rather than asserted:
//! the shared memory is a real arena managed by a real first-fit free-list
//! allocator, local memory is per-PE byte accounting against the 1 MB
//! capacity, and every PE carries the tick clock that PISCES trace lines
//! report ("PE number and ticks count").
//!
//! Concurrency model: the simulated machine is driven by ordinary OS
//! threads. A thread that wants to execute *on* a PE must hold that PE's CPU
//! token ([`cpu::CpuToken`]); tasks multiprogrammed on one PE therefore
//! serialize at runtime-call granularity, while activities on distinct PEs
//! run genuinely in parallel — the same concurrency structure as the FLEX.

pub mod affinity;
pub mod clock;
pub mod cpu;
pub mod fault;
pub mod fs;
pub mod machine;
pub mod mmos;
pub mod pe;
pub mod pool;
pub mod shmem;

pub use fault::{
    FaultAction, FaultCell, FaultEvent, FaultInjector, FaultPlan, MessageFault, PeFaultState,
};
pub use machine::Flex32;
pub use pe::{ActivityCell, PeId, PeKind};
pub use pool::{PoolReport, ShmPool};
pub use shmem::{SharedMemory, ShmError, ShmHandle};

/// Number of processing elements in the NASA Langley FLEX/32.
pub const NUM_PES: usize = 20;

/// Local memory per PE: 1 Mbyte.
pub const LOCAL_MEM_BYTES: usize = 1 << 20;

/// Shared memory accessible by all PEs: 2.25 Mbyte.
pub const SHARED_MEM_BYTES: usize = 2_359_296;

/// PEs 1 and 2 run Unix and are not available for PISCES user tasks.
pub const UNIX_PES: [u8; 2] = [1, 2];

/// First PE running MMOS (available to PISCES).
pub const FIRST_MMOS_PE: u8 = 3;

/// Last PE running MMOS (available to PISCES).
pub const LAST_MMOS_PE: u8 = 20;
