//! The assembled FLEX/32 machine.
//!
//! One [`Flex32`] value owns the 20 PEs, the shared-memory arena, the
//! Unix-PE file system, and the per-PE MMOS process tables. The PISCES
//! runtime (the `pisces-core` crate) runs "as just another program" on top
//! of this, exactly as the paper describes the real system.

use crate::fs::FileSystem;
use crate::mmos::ProcessTable;
use crate::pe::{Pe, PeError, PeId};
use crate::pool::ShmPool;
use crate::shmem::{SharedMemory, ShmError, ShmHandle, ShmTag};
use crate::NUM_PES;
use std::sync::Arc;

/// The simulated machine. Cheap to share: wrap in an [`Arc`] (see
/// [`Flex32::new_shared`]).
pub struct Flex32 {
    pes: Vec<Pe>,
    procs: Vec<ProcessTable>,
    /// The 2.25 MB shared memory.
    pub shmem: SharedMemory,
    /// Per-PE size-class front-end over `shmem` (see [`crate::pool`]).
    pub pool: ShmPool,
    /// File system maintained by the Unix PEs.
    pub fs: FileSystem,
}

impl std::fmt::Debug for Flex32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flex32")
            .field("pes", &self.pes.len())
            .field("shmem", &self.shmem)
            .finish_non_exhaustive()
    }
}

impl Default for Flex32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Flex32 {
    /// A freshly booted machine with the NASA Langley configuration.
    pub fn new() -> Self {
        Self {
            pes: PeId::all().map(Pe::new).collect(),
            procs: (0..NUM_PES).map(|_| ProcessTable::new()).collect(),
            shmem: SharedMemory::flex32(),
            pool: ShmPool::new(NUM_PES),
            fs: FileSystem::new(),
        }
    }

    /// A shared handle to a fresh machine.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Access a PE by id.
    pub fn pe(&self, id: PeId) -> &Pe {
        &self.pes[(id.number() - 1) as usize]
    }

    /// Access a PE by raw number (1–20).
    pub fn pe_n(&self, n: u8) -> Result<&Pe, PeError> {
        Ok(self.pe(PeId::new(n)?))
    }

    /// All PEs in order.
    pub fn pes(&self) -> &[Pe] {
        &self.pes
    }

    /// MMOS process table of a PE.
    pub fn procs(&self, id: PeId) -> &ProcessTable {
        &self.procs[(id.number() - 1) as usize]
    }

    /// Allocate shared memory through `pe`'s allocation pool. Returns the
    /// handle and whether the request was a magazine hit (no global heap
    /// lock taken).
    pub fn shm_alloc(
        &self,
        pe: PeId,
        bytes: usize,
        tag: ShmTag,
    ) -> Result<(ShmHandle, bool), ShmError> {
        self.pool
            .alloc(&self.shmem, (pe.number() - 1) as usize, bytes, tag)
    }

    /// Free shared memory through `pe`'s allocation pool. `tag` must be
    /// the tag the block was allocated with (magazines are tag-segregated).
    pub fn shm_free(&self, pe: PeId, handle: ShmHandle, tag: ShmTag) -> Result<(), ShmError> {
        self.pool
            .free(&self.shmem, (pe.number() - 1) as usize, handle, tag)
    }

    /// Reboot the MMOS PEs between runs, as the FLEX does: clear process
    /// tables, local-memory reservations, clocks, and consoles on PEs 3–20.
    /// (Unix PEs and the file system persist across runs.) The allocation
    /// pool is flushed so the arena starts the run with truthful accounting.
    pub fn reboot_mmos(&self) {
        self.pool.flush(&self.shmem);
        for id in PeId::mmos() {
            let pe = self.pe(id);
            let used = pe.local.used();
            if used > 0 {
                pe.local.release(used);
            }
            pe.clock.reset();
            pe.console.clear();
            self.procs(id).reboot();
        }
    }

    /// Charge `ticks` of work to a PE's clock and return the new reading.
    pub fn tick(&self, id: PeId, ticks: u64) -> u64 {
        self.pe(id).clock.advance(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::ShmTag;

    #[test]
    fn machine_has_twenty_pes() {
        let m = Flex32::new();
        assert_eq!(m.pes().len(), 20);
        assert_eq!(m.pe_n(1).unwrap().id().number(), 1);
        assert!(m.pe_n(0).is_err());
        assert!(m.pe_n(21).is_err());
    }

    #[test]
    fn shared_memory_is_machine_wide() {
        let m = Flex32::new();
        let h = m.shmem.alloc(64, ShmTag::Other).unwrap();
        m.shmem.store(h, 0, 7).unwrap();
        assert_eq!(m.shmem.load(h, 0).unwrap(), 7);
        m.shmem.free(h).unwrap();
    }

    #[test]
    fn reboot_resets_mmos_only() {
        let m = Flex32::new();
        let unix = PeId::new(1).unwrap();
        let mmos = PeId::new(5).unwrap();
        m.pe(unix).clock.advance(10);
        m.pe(mmos).clock.advance(10);
        m.pe(mmos).local.reserve(1000, mmos).unwrap();
        m.procs(mmos).spawn("t");
        m.reboot_mmos();
        assert_eq!(m.pe(unix).clock.now(), 10, "Unix PE untouched");
        assert_eq!(m.pe(mmos).clock.now(), 0);
        assert_eq!(m.pe(mmos).local.used(), 0);
        assert_eq!(m.procs(mmos).live(), 0);
    }

    #[test]
    fn pooled_alloc_hits_after_free_on_same_pe() {
        let m = Flex32::new();
        let pe = PeId::new(5).unwrap();
        let (h, hit) = m.shm_alloc(pe, 32, ShmTag::Message).unwrap();
        assert!(!hit);
        m.shm_free(pe, h, ShmTag::Message).unwrap();
        let (h2, hit) = m.shm_alloc(pe, 32, ShmTag::Message).unwrap();
        assert!(hit, "freed block must be recycled on the same PE");
        assert_eq!(h, h2);
        m.shm_free(pe, h2, ShmTag::Message).unwrap();
        assert!(m.shmem.report().in_use > 0, "cached block stays accounted");
        m.reboot_mmos();
        assert_eq!(m.shmem.report().in_use, 0, "reboot flushes the pool");
        m.shmem.validate().unwrap();
    }

    #[test]
    fn tick_advances_named_pe() {
        let m = Flex32::new();
        let id = PeId::new(9).unwrap();
        assert_eq!(m.tick(id, 4), 4);
        assert_eq!(m.pe(id).clock.now(), 4);
        assert_eq!(m.pe_n(10).unwrap().clock.now(), 0);
    }
}
