//! The assembled FLEX/32 machine.
//!
//! One [`Flex32`] value owns the machine body ([`MachineCore`]): PEs, the
//! shared-memory arena, the Unix-PE file system, and the per-PE MMOS
//! process tables. The PISCES runtime (the `pisces-core` crate) runs "as
//! just another program" on top of this through the
//! [`pisces_substrate::Substrate`] trait, exactly as the paper describes
//! the real system.
//!
//! The FLEX/32 is a *shared-bus* machine: every PE reaches every other
//! PE's mailbox through the common shared memory, so its link model is
//! free — [`Substrate::charge_link`] keeps its zero-hop default and the
//! runtime's uniform send/accept tick costs are the whole story. That is
//! what makes the trait implementation behaviour-identical to the
//! pre-refactor hard-wired machine.

use pisces_substrate::fault::{FaultInjector, FaultPlan};
use pisces_substrate::pe::{Pe, PeError, PeId};
use pisces_substrate::shmem::{ShmError, ShmHandle, ShmTag};
use pisces_substrate::{MachineCore, Substrate, Topology};
use std::sync::Arc;

/// The simulated machine. Cheap to share: wrap in an [`Arc`] (see
/// [`Flex32::new_shared`]).
#[derive(Debug)]
pub struct Flex32 {
    core: MachineCore,
}

impl Default for Flex32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Flex32 {
    /// A freshly booted machine with the NASA Langley configuration
    /// (20 PEs; PEs 1–2 Unix, 3–20 MMOS; 2.25 MB shared memory).
    pub fn new() -> Self {
        Self::with_pes(crate::NUM_PES as u16)
    }

    /// A FLEX/32-family machine scaled to `pes` processing elements
    /// (minimum 3: the two Unix PEs plus at least one MMOS PE). PEs 1–2
    /// run Unix, `3..=pes` run MMOS. The shared-memory arena scales with
    /// the PE count so a big machine keeps the same per-PE arena share as
    /// the historical 20-PE one.
    pub fn with_pes(pes: u16) -> Self {
        Self {
            core: MachineCore::new(Self::topology_for(pes)),
        }
    }

    /// The shape of a FLEX machine scaled to `pes` PEs, without building
    /// it (configuration validation runs against this).
    pub fn topology_for(pes: u16) -> Topology {
        assert!(pes >= 3, "a FLEX machine needs 2 Unix PEs + 1 MMOS PE");
        let shared = if pes as usize <= crate::NUM_PES {
            crate::SHARED_MEM_BYTES
        } else {
            crate::SHARED_MEM_BYTES / crate::NUM_PES * pes as usize
        };
        Topology {
            name: "flex32",
            num_pes: pes,
            first_task_pe: crate::FIRST_MMOS_PE,
            local_mem_bytes: crate::LOCAL_MEM_BYTES,
            shared_mem_bytes: shared,
        }
    }

    /// A shared handle to a fresh machine.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// A shared handle to a machine scaled to `pes` PEs.
    pub fn shared_with_pes(pes: u16) -> Arc<Self> {
        Arc::new(Self::with_pes(pes))
    }

    // Inherent conveniences mirroring the Substrate methods, so direct
    // users of `Flex32` (benches, configuration tools) need not import
    // the trait.

    /// Access a PE by id.
    pub fn pe(&self, id: PeId) -> &Pe {
        self.core.pe(id)
    }

    /// Access a PE by raw number.
    pub fn pe_n(&self, n: u16) -> Result<&Pe, PeError> {
        self.core.pe_n(n)
    }

    /// All PEs in order.
    pub fn pes(&self) -> &[Pe] {
        self.core.pes()
    }

    /// MMOS process table of a PE.
    pub fn procs(&self, id: PeId) -> &pisces_substrate::mmos::ProcessTable {
        self.core.procs(id)
    }

    /// The shared-memory arena.
    pub fn shmem(&self) -> &pisces_substrate::SharedMemory {
        self.core.shmem()
    }

    /// The per-PE pool front-end.
    pub fn pool(&self) -> &pisces_substrate::ShmPool {
        self.core.pool()
    }

    /// The Unix-PE file system.
    pub fn fs(&self) -> &pisces_substrate::fs::FileSystem {
        self.core.fs()
    }

    /// Allocate shared memory through `pe`'s allocation pool.
    pub fn shm_alloc(
        &self,
        pe: PeId,
        bytes: usize,
        tag: ShmTag,
    ) -> Result<(ShmHandle, bool), ShmError> {
        self.core.shm_alloc(pe, bytes, tag)
    }

    /// Free shared memory through `pe`'s allocation pool.
    pub fn shm_free(&self, pe: PeId, handle: ShmHandle, tag: ShmTag) -> Result<(), ShmError> {
        self.core.shm_free(pe, handle, tag)
    }

    /// Reboot the MMOS PEs between runs, as the FLEX does.
    pub fn reboot_mmos(&self) {
        self.core.reboot_task_pes()
    }

    /// Charge `ticks` of work to a PE's clock and return the new reading.
    pub fn tick(&self, id: PeId, ticks: u64) -> u64 {
        self.core.tick(id, ticks)
    }

    /// Arm a fault plan.
    pub fn arm_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        self.core.arm_faults(plan)
    }

    /// Disarm fault injection and heal every PE.
    pub fn disarm_faults(&self) {
        self.core.disarm_faults()
    }

    /// The armed injector, if any.
    pub fn faults(&self) -> Option<Arc<FaultInjector>> {
        self.core.faults()
    }

    /// Whether a fault plan is armed.
    #[inline]
    pub fn faults_armed(&self) -> bool {
        self.core.faults_armed()
    }

    /// Fail-stop a PE now.
    pub fn fail_pe(&self, n: u16) {
        self.core.fail_pe(n)
    }
}

impl Substrate for Flex32 {
    fn machine(&self) -> &MachineCore {
        &self.core
    }
    // Link model: the default. A shared-bus send is zero hops; the
    // runtime's SEND_BASE/SEND_PER_WORD charge covers the whole cost,
    // exactly as before the trait existed.
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisces_substrate::shmem::ShmTag;

    #[test]
    fn machine_has_twenty_pes() {
        let m = Flex32::new();
        assert_eq!(m.pes().len(), 20);
        assert_eq!(m.pe_n(1).unwrap().id().number(), 1);
        assert!(m.pe_n(0).is_err());
        assert!(m.pe_n(21).is_err());
    }

    #[test]
    fn scaled_machine_boots_hundreds_of_pes() {
        let m = Flex32::with_pes(256);
        assert_eq!(m.pes().len(), 256);
        assert_eq!(m.topology().task_pes(), 254);
        assert!(m.pe_n(256).is_ok());
        assert!(m.pe_n(257).is_err());
        // Arena scaled with the machine.
        assert!(m.shmem().capacity() >= crate::SHARED_MEM_BYTES * 12);
        let pe = m.pe_n(200).unwrap().id();
        assert_eq!(m.tick(pe, 5), 5);
    }

    #[test]
    fn boundary_at_the_historical_cap() {
        // 20 PEs was a hard cap before the substrate refactor; 20, 21 and
        // 19 must all boot now, with the Unix/MMOS split preserved.
        for n in [19u16, 20, 21] {
            let m = Flex32::with_pes(n);
            assert_eq!(m.pes().len(), n as usize);
            assert_eq!(m.topology().first_task_pe, 3);
            assert!(m.pe_n(n).is_ok());
            assert!(m.pe_n(n + 1).is_err());
        }
    }

    #[test]
    fn shared_memory_is_machine_wide() {
        let m = Flex32::new();
        let h = m.shmem().alloc(64, ShmTag::Other).unwrap();
        m.shmem().store(h, 0, 7).unwrap();
        assert_eq!(m.shmem().load(h, 0).unwrap(), 7);
        m.shmem().free(h).unwrap();
    }

    #[test]
    fn reboot_resets_mmos_only() {
        let m = Flex32::new();
        let unix = m.pe_n(1).unwrap().id();
        let mmos = m.pe_n(5).unwrap().id();
        m.pe(unix).clock.advance(10);
        m.pe(mmos).clock.advance(10);
        m.pe(mmos).local.reserve(1000, mmos).unwrap();
        m.procs(mmos).spawn("t");
        m.reboot_mmos();
        assert_eq!(m.pe(unix).clock.now(), 10, "Unix PE untouched");
        assert_eq!(m.pe(mmos).clock.now(), 0);
        assert_eq!(m.pe(mmos).local.used(), 0);
        assert_eq!(m.procs(mmos).live(), 0);
    }

    #[test]
    fn pooled_alloc_hits_after_free_on_same_pe() {
        let m = Flex32::new();
        let pe = m.pe_n(5).unwrap().id();
        let (h, hit) = m.shm_alloc(pe, 32, ShmTag::Message).unwrap();
        assert!(!hit);
        m.shm_free(pe, h, ShmTag::Message).unwrap();
        let (h2, hit) = m.shm_alloc(pe, 32, ShmTag::Message).unwrap();
        assert!(hit, "freed block must be recycled on the same PE");
        assert_eq!(h, h2);
        m.shm_free(pe, h2, ShmTag::Message).unwrap();
        assert!(m.shmem().report().in_use > 0, "cached block stays accounted");
        m.reboot_mmos();
        assert_eq!(m.shmem().report().in_use, 0, "reboot flushes the pool");
        m.shmem().validate().unwrap();
    }

    #[test]
    fn tick_advances_named_pe() {
        let m = Flex32::new();
        let id = m.pe_n(9).unwrap().id();
        assert_eq!(m.tick(id, 4), 4);
        assert_eq!(m.pe(id).clock.now(), 4);
        assert_eq!(m.pe_n(10).unwrap().clock.now(), 0);
    }

    #[test]
    fn slow_pe_multiplies_charged_ticks() {
        let m = Flex32::new();
        let id = m.pe_n(6).unwrap().id();
        m.arm_faults(FaultPlan::new(2).slow_pe(6, 10, 3));
        m.tick(id, 10); // fires the slow fault at tick 10
        assert_eq!(m.pe(id).clock.now(), 10);
        m.tick(id, 4); // charged 3x
        assert_eq!(m.pe(id).clock.now(), 22);
        m.disarm_faults();
        m.tick(id, 4);
        assert_eq!(m.pe(id).clock.now(), 26);
    }

    #[test]
    fn healthy_machine_never_consults_injector() {
        let m = Flex32::new();
        assert!(!m.faults_armed());
        assert!(m.faults().is_none());
        let id = m.pe_n(8).unwrap().id();
        assert_eq!(m.tick(id, 5), 5);
    }

    #[test]
    fn substrate_trait_reports_free_links() {
        use pisces_substrate::LinkCost;
        let m = Flex32::new();
        let s: &dyn Substrate = &m;
        let a = m.pe_n(3).unwrap().id();
        let b = m.pe_n(17).unwrap().id();
        assert_eq!(s.charge_link(a, b, 64), 0);
        assert_eq!(s.link_cost(a, b), LinkCost::default());
        assert!(s.link_stats().is_none());
        assert_eq!(s.name(), "flex32");
    }
}
