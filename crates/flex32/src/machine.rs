//! The assembled FLEX/32 machine.
//!
//! One [`Flex32`] value owns the 20 PEs, the shared-memory arena, the
//! Unix-PE file system, and the per-PE MMOS process tables. The PISCES
//! runtime (the `pisces-core` crate) runs "as just another program" on top
//! of this, exactly as the paper describes the real system.

use crate::fault::{FaultInjector, FaultPlan, TickFault};
use crate::fs::FileSystem;
use crate::mmos::ProcessTable;
use crate::pe::{Pe, PeError, PeId};
use crate::pool::ShmPool;
use crate::shmem::{SharedMemory, ShmError, ShmHandle, ShmTag};
use crate::NUM_PES;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The simulated machine. Cheap to share: wrap in an [`Arc`] (see
/// [`Flex32::new_shared`]).
pub struct Flex32 {
    pes: Vec<Pe>,
    procs: Vec<ProcessTable>,
    /// The 2.25 MB shared memory.
    pub shmem: SharedMemory,
    /// Per-PE size-class front-end over `shmem` (see [`crate::pool`]).
    pub pool: ShmPool,
    /// File system maintained by the Unix PEs.
    pub fs: FileSystem,
    /// Armed fault injector, if a chaos plan is active.
    faults: RwLock<Option<Arc<FaultInjector>>>,
    /// Fast-path guard: one relaxed load decides whether any fault hook
    /// runs. False on a healthy machine, so injection costs nothing.
    faults_armed: AtomicBool,
}

impl std::fmt::Debug for Flex32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flex32")
            .field("pes", &self.pes.len())
            .field("shmem", &self.shmem)
            .finish_non_exhaustive()
    }
}

impl Default for Flex32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Flex32 {
    /// A freshly booted machine with the NASA Langley configuration.
    pub fn new() -> Self {
        Self {
            pes: PeId::all().map(Pe::new).collect(),
            procs: (0..NUM_PES).map(|_| ProcessTable::new()).collect(),
            shmem: SharedMemory::flex32(),
            pool: ShmPool::new(NUM_PES),
            fs: FileSystem::new(),
            faults: RwLock::new(None),
            faults_armed: AtomicBool::new(false),
        }
    }

    /// A shared handle to a fresh machine.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Access a PE by id.
    pub fn pe(&self, id: PeId) -> &Pe {
        &self.pes[(id.number() - 1) as usize]
    }

    /// Access a PE by raw number (1–20).
    pub fn pe_n(&self, n: u8) -> Result<&Pe, PeError> {
        Ok(self.pe(PeId::new(n)?))
    }

    /// All PEs in order.
    pub fn pes(&self) -> &[Pe] {
        &self.pes
    }

    /// MMOS process table of a PE.
    pub fn procs(&self, id: PeId) -> &ProcessTable {
        &self.procs[(id.number() - 1) as usize]
    }

    /// Allocate shared memory through `pe`'s allocation pool. Returns the
    /// handle and whether the request was a magazine hit (no global heap
    /// lock taken).
    pub fn shm_alloc(
        &self,
        pe: PeId,
        bytes: usize,
        tag: ShmTag,
    ) -> Result<(ShmHandle, bool), ShmError> {
        if self.faults_armed.load(Ordering::Relaxed) {
            if let Some(e) = self.alloc_fault(bytes) {
                return Err(e);
            }
        }
        self.pool
            .alloc(&self.shmem, (pe.number() - 1) as usize, bytes, tag)
    }

    /// Slow path of [`Flex32::shm_alloc`]: consult the armed plan's
    /// allocation-ordinal faults and synthesise an out-of-memory error
    /// reporting the arena's *real* occupancy.
    #[cold]
    fn alloc_fault(&self, bytes: usize) -> Option<ShmError> {
        let inj = self.faults.read().clone()?;
        if inj.alloc_should_fail() {
            Some(self.shmem.synthetic_oom(bytes))
        } else {
            None
        }
    }

    /// Free shared memory through `pe`'s allocation pool. `tag` must be
    /// the tag the block was allocated with (magazines are tag-segregated).
    pub fn shm_free(&self, pe: PeId, handle: ShmHandle, tag: ShmTag) -> Result<(), ShmError> {
        self.pool
            .free(&self.shmem, (pe.number() - 1) as usize, handle, tag)
    }

    /// Reboot the MMOS PEs between runs, as the FLEX does: clear process
    /// tables, local-memory reservations, clocks, and consoles on PEs 3–20.
    /// (Unix PEs and the file system persist across runs.) The allocation
    /// pool is flushed so the arena starts the run with truthful accounting.
    pub fn reboot_mmos(&self) {
        self.pool.flush(&self.shmem);
        for id in PeId::mmos() {
            let pe = self.pe(id);
            let used = pe.local.used();
            if used > 0 {
                pe.local.release(used);
            }
            pe.clock.reset();
            pe.console.clear();
            self.procs(id).reboot();
        }
    }

    /// Charge `ticks` of work to a PE's clock and return the new reading.
    pub fn tick(&self, id: PeId, ticks: u64) -> u64 {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return self.pe(id).clock.advance(ticks);
        }
        self.tick_faulty(id, ticks)
    }

    /// Slow path of [`Flex32::tick`] when a fault plan is armed: the ticks
    /// are multiplied by the PE's slow factor, and the new reading is
    /// checked against the plan's tick-triggered faults (any PE crossing a
    /// trigger fires it — a blocked or dead PE never reads its own clock).
    #[cold]
    fn tick_faulty(&self, id: PeId, ticks: u64) -> u64 {
        let pe = self.pe(id);
        let charged = ticks.saturating_mul(pe.fault.slow_factor());
        let now = pe.clock.advance(charged);
        if let Some(inj) = self.faults.read().as_ref() {
            if inj.tick_faults_pending() {
                for fault in inj.on_tick(now) {
                    match fault {
                        TickFault::Fail(n) => self.fail_pe(n),
                        TickFault::Slow(n, factor) => {
                            if let Ok(target) = self.pe_n(n) {
                                target.fault.slow(factor);
                            }
                        }
                    }
                }
            }
        }
        now
    }

    /// Arm a fault plan: all subsequent ticks, sends, and allocations are
    /// checked against it. Returns the injector so callers can register an
    /// observer and read the fired-event trace.
    pub fn arm_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let inj = Arc::new(FaultInjector::new(plan));
        *self.faults.write() = Some(inj.clone());
        self.faults_armed.store(true, Ordering::Release);
        inj
    }

    /// Disarm fault injection and heal every PE (recovery: the machine is
    /// serviceable again, though killed processes stay gone).
    pub fn disarm_faults(&self) {
        self.faults_armed.store(false, Ordering::Release);
        *self.faults.write() = None;
        for pe in &self.pes {
            pe.fault.heal();
        }
    }

    /// The armed injector, if any.
    pub fn faults(&self) -> Option<Arc<FaultInjector>> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return None;
        }
        self.faults.read().clone()
    }

    /// Whether a fault plan is armed (one relaxed load).
    #[inline]
    pub fn faults_armed(&self) -> bool {
        self.faults_armed.load(Ordering::Relaxed)
    }

    /// Fail-stop a PE *now*: mark its fault cell, kill every MMOS process
    /// on it, and flush its pool magazines back to the arena so the
    /// shared-memory accounting stays truthful (a dead PE cannot hold
    /// cached blocks). Idempotent; unknown PE numbers are ignored.
    pub fn fail_pe(&self, n: u8) {
        let Ok(pe) = self.pe_n(n) else { return };
        if pe.fault.is_failed() {
            return;
        }
        pe.fault.fail();
        self.procs(pe.id()).fail_all();
        self.pool.flush_pe(&self.shmem, (n - 1) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::ShmTag;

    #[test]
    fn machine_has_twenty_pes() {
        let m = Flex32::new();
        assert_eq!(m.pes().len(), 20);
        assert_eq!(m.pe_n(1).unwrap().id().number(), 1);
        assert!(m.pe_n(0).is_err());
        assert!(m.pe_n(21).is_err());
    }

    #[test]
    fn shared_memory_is_machine_wide() {
        let m = Flex32::new();
        let h = m.shmem.alloc(64, ShmTag::Other).unwrap();
        m.shmem.store(h, 0, 7).unwrap();
        assert_eq!(m.shmem.load(h, 0).unwrap(), 7);
        m.shmem.free(h).unwrap();
    }

    #[test]
    fn reboot_resets_mmos_only() {
        let m = Flex32::new();
        let unix = PeId::new(1).unwrap();
        let mmos = PeId::new(5).unwrap();
        m.pe(unix).clock.advance(10);
        m.pe(mmos).clock.advance(10);
        m.pe(mmos).local.reserve(1000, mmos).unwrap();
        m.procs(mmos).spawn("t");
        m.reboot_mmos();
        assert_eq!(m.pe(unix).clock.now(), 10, "Unix PE untouched");
        assert_eq!(m.pe(mmos).clock.now(), 0);
        assert_eq!(m.pe(mmos).local.used(), 0);
        assert_eq!(m.procs(mmos).live(), 0);
    }

    #[test]
    fn pooled_alloc_hits_after_free_on_same_pe() {
        let m = Flex32::new();
        let pe = PeId::new(5).unwrap();
        let (h, hit) = m.shm_alloc(pe, 32, ShmTag::Message).unwrap();
        assert!(!hit);
        m.shm_free(pe, h, ShmTag::Message).unwrap();
        let (h2, hit) = m.shm_alloc(pe, 32, ShmTag::Message).unwrap();
        assert!(hit, "freed block must be recycled on the same PE");
        assert_eq!(h, h2);
        m.shm_free(pe, h2, ShmTag::Message).unwrap();
        assert!(m.shmem.report().in_use > 0, "cached block stays accounted");
        m.reboot_mmos();
        assert_eq!(m.shmem.report().in_use, 0, "reboot flushes the pool");
        m.shmem.validate().unwrap();
    }

    #[test]
    fn tick_advances_named_pe() {
        let m = Flex32::new();
        let id = PeId::new(9).unwrap();
        assert_eq!(m.tick(id, 4), 4);
        assert_eq!(m.pe(id).clock.now(), 4);
        assert_eq!(m.pe_n(10).unwrap().clock.now(), 0);
    }

    #[test]
    fn armed_fail_pe_fires_from_any_clock() {
        use crate::fault::FaultPlan;
        let m = Flex32::new();
        m.arm_faults(FaultPlan::new(1).fail_pe(7, 100));
        let other = PeId::new(4).unwrap();
        m.tick(other, 99);
        assert!(!m.pe_n(7).unwrap().fault.is_failed());
        // PE 4's clock crossing the trigger fails PE 7: virtual time is
        // machine-wide, and a dead PE never reads its own clock.
        m.tick(other, 1);
        assert!(m.pe_n(7).unwrap().fault.is_failed());
        assert!(m.pe_n(7).unwrap().acquire_cpu().is_err());
        m.disarm_faults();
        assert!(m.pe_n(7).unwrap().acquire_cpu().is_ok(), "healed on disarm");
    }

    #[test]
    fn slow_pe_multiplies_charged_ticks() {
        use crate::fault::FaultPlan;
        let m = Flex32::new();
        let id = PeId::new(6).unwrap();
        m.arm_faults(FaultPlan::new(2).slow_pe(6, 10, 3));
        m.tick(id, 10); // fires the slow fault at tick 10
        assert_eq!(m.pe(id).clock.now(), 10);
        m.tick(id, 4); // charged 3x
        assert_eq!(m.pe(id).clock.now(), 22);
        m.disarm_faults();
        m.tick(id, 4);
        assert_eq!(m.pe(id).clock.now(), 26);
    }

    #[test]
    fn fail_pe_flushes_pool_and_keeps_accounting_clean() {
        use crate::fault::FaultPlan;
        let m = Flex32::new();
        let pe = PeId::new(5).unwrap();
        let (h, _) = m.shm_alloc(pe, 32, ShmTag::Message).unwrap();
        m.shm_free(pe, h, ShmTag::Message).unwrap();
        assert!(m.shmem.report().in_use > 0, "block cached in magazine");
        m.arm_faults(FaultPlan::new(3).fail_pe(5, 1));
        m.tick(pe, 1);
        assert_eq!(
            m.shmem.report().in_use,
            0,
            "failed PE's magazines flushed back to the arena"
        );
        m.shmem.validate().unwrap();
        assert_eq!(m.procs(pe).live(), 0);
    }

    #[test]
    fn planned_alloc_fault_reports_real_occupancy() {
        use crate::fault::FaultPlan;
        let m = Flex32::new();
        let pe = PeId::new(5).unwrap();
        m.arm_faults(FaultPlan::new(4).fail_alloc(2));
        let (h, _) = m.shm_alloc(pe, 32, ShmTag::Other).unwrap();
        let err = m.shm_alloc(pe, 32, ShmTag::Other).unwrap_err();
        match err {
            ShmError::OutOfMemory { requested, free, .. } => {
                assert_eq!(requested, 32);
                assert!(free < crate::SHARED_MEM_BYTES, "occupancy is real");
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        m.shm_alloc(pe, 32, ShmTag::Other).unwrap();
        m.shm_free(pe, h, ShmTag::Other).unwrap();
        m.shmem.validate().unwrap();
    }

    #[test]
    fn healthy_machine_never_consults_injector() {
        let m = Flex32::new();
        assert!(!m.faults_armed());
        assert!(m.faults().is_none());
        let id = PeId::new(8).unwrap();
        assert_eq!(m.tick(id, 5), 5);
    }
}
