//! Property tests for the shared-memory allocator.
//!
//! The allocator is the foundation of every storage measurement in the
//! reproduction, so we check its structural invariants under arbitrary
//! alloc/free interleavings: free + allocated blocks always tile the arena
//! exactly, adjacent free blocks are always coalesced, accounting matches
//! the block map, and data written to a live block survives unrelated
//! traffic.

use flex32::shmem::{SharedMemory, ShmHandle, ShmTag};
use proptest::prelude::*;

/// A scripted allocator operation.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes (1..=2048).
    Alloc(usize),
    /// Free the live block at this index (modulo the live count).
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..=2048).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn alloc_free_interleavings_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let m = SharedMemory::with_capacity(64 * 1024);
        let mut live: Vec<(ShmHandle, u64)> = Vec::new();
        let mut stamp = 0u64;

        for op in ops {
            match op {
                Op::Alloc(sz) => {
                    if let Ok(h) = m.alloc(sz, ShmTag::Other) {
                        stamp += 1;
                        m.store(h, 0, stamp).unwrap();
                        live.push((h, stamp));
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (h, _) = live.swap_remove(i % live.len());
                        m.free(h).unwrap();
                    }
                }
            }
            m.check_invariants().unwrap();
        }

        // Every live block still holds the stamp written at allocation:
        // no block ever overlapped another.
        for (h, s) in &live {
            prop_assert_eq!(m.load(*h, 0).unwrap(), *s);
        }

        // Freeing everything returns the arena to one maximal block.
        for (h, _) in live {
            m.free(h).unwrap();
        }
        m.check_invariants().unwrap();
        let r = m.report();
        prop_assert_eq!(r.in_use, 0);
        prop_assert_eq!(r.free_fragments, 1);
        prop_assert_eq!(r.largest_free_block, 64 * 1024);
    }

    #[test]
    fn in_use_equals_sum_of_live_blocks(sizes in prop::collection::vec(1usize..=512, 1..40)) {
        let m = SharedMemory::with_capacity(64 * 1024);
        let mut total = 0usize;
        let mut handles = Vec::new();
        for sz in sizes {
            let h = m.alloc(sz, ShmTag::Message).unwrap();
            total += h.bytes();
            handles.push(h);
        }
        let r = m.report();
        prop_assert_eq!(r.in_use, total);
        prop_assert_eq!(r.tag_bytes(ShmTag::Message), total);
        for h in handles {
            m.free(h).unwrap();
        }
        prop_assert_eq!(m.report().in_use, 0);
    }
}
