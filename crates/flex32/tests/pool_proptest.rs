//! Property tests for the per-PE allocation pool.
//!
//! The pool caches freed blocks in per-PE magazines, so the hazard it
//! introduces over the raw allocator is bookkeeping drift: a block counted
//! twice (double free into a magazine), a block lost (neither live, cached,
//! nor free), or a flush that returns something the arena doesn't own. We
//! drive arbitrary alloc/free interleavings across PEs, tags, and size
//! classes — including oversize requests that bypass the pool — and then
//! require that a full flush leaves the arena exactly as it started:
//! `validate()` clean, zero bytes in use, every tag account at zero.

use flex32::pool::ShmPool;
use flex32::shmem::{SharedMemory, ShmHandle, ShmTag};
use proptest::prelude::*;

const PES: usize = 4;

/// A scripted pool operation.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate `bytes` on PE `pe` with tag index `tag`.
    Alloc { pe: usize, bytes: usize, tag: usize },
    /// Free the live block at index `idx` (modulo the live count) from
    /// PE `pe` — often a *different* PE than allocated it, as happens
    /// when a message is accepted on the receiver's PE.
    Free { pe: usize, idx: usize },
}

const TAGS: [ShmTag; 3] = [ShmTag::Message, ShmTag::SharedCommon, ShmTag::SystemTable];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Sizes straddle the class boundaries (1..=64 words) and include
        // oversize requests (> 512 bytes) that bypass the magazines.
        (0usize..PES, 1usize..=700, 0usize..TAGS.len()).prop_map(|(pe, bytes, tag)| Op::Alloc {
            pe,
            bytes,
            tag
        }),
        (0usize..PES, 0usize..64).prop_map(|(pe, idx)| Op::Free { pe, idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn pool_never_leaks_or_double_frees(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let m = SharedMemory::with_capacity(256 * 1024);
        let pool = ShmPool::new(PES);
        let mut live: Vec<(ShmHandle, ShmTag, u64)> = Vec::new();
        let mut stamp = 0u64;

        for op in ops {
            match op {
                Op::Alloc { pe, bytes, tag } => {
                    let tag = TAGS[tag];
                    if let Ok((h, _hit)) = pool.alloc(&m, pe, bytes, tag) {
                        // Pool hits must hand back zeroed storage, like
                        // the arena does.
                        prop_assert_eq!(m.load(h, 0).unwrap(), 0);
                        stamp += 1;
                        m.store(h, 0, stamp).unwrap();
                        live.push((h, tag, stamp));
                    }
                }
                Op::Free { pe, idx } => {
                    if !live.is_empty() {
                        let (h, tag, _) = live.swap_remove(idx % live.len());
                        pool.free(&m, pe, h, tag).unwrap();
                    }
                }
            }
            m.validate().unwrap();
        }

        // No magazine traffic ever overlapped a live block.
        for (h, _, s) in &live {
            prop_assert_eq!(m.load(*h, 0).unwrap(), *s);
        }

        // Release everything through the pool, then flush the magazines:
        // the arena must be back to its pristine state with every byte
        // and every tag account returned.
        for (h, tag, _) in live {
            pool.free(&m, 0, h, tag).unwrap();
        }
        pool.flush(&m);
        prop_assert_eq!(pool.cached_blocks(), 0);
        m.validate().unwrap();
        let r = m.report();
        prop_assert_eq!(r.in_use, 0);
        prop_assert_eq!(r.free_fragments, 1);
        prop_assert_eq!(r.largest_free_block, 256 * 1024);
        for tag in TAGS {
            prop_assert_eq!(r.tag_bytes(tag), 0);
        }
    }

    #[test]
    fn recycled_blocks_match_what_was_freed(rounds in 1usize..40, words in 1usize..=64) {
        // Single-PE ping-pong: after the priming miss, every allocation
        // must be a hit on exactly the block just freed.
        let m = SharedMemory::with_capacity(64 * 1024);
        let pool = ShmPool::new(1);
        let (first, hit) = pool.alloc(&m, 0, words * 8, ShmTag::Message).unwrap();
        prop_assert!(!hit);
        pool.free(&m, 0, first, ShmTag::Message).unwrap();
        for _ in 0..rounds {
            let (h, hit) = pool.alloc(&m, 0, words * 8, ShmTag::Message).unwrap();
            prop_assert!(hit);
            prop_assert_eq!(h, first);
            pool.free(&m, 0, h, ShmTag::Message).unwrap();
        }
        pool.flush(&m);
        m.validate().unwrap();
        prop_assert_eq!(m.report().in_use, 0);
    }
}
