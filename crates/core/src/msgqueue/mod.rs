//! Pluggable in-queue backends for the send→accept hot path.
//!
//! The paper's message primitives put one shared structure at the center
//! of every cluster, force, and window operation: the per-task in-queue
//! ("Messages are queued in an in-queue for the receiver in order of
//! arrival", Section 6). This module makes that structure
//! backend-selectable behind the [`MsgQueue`] trait:
//!
//! * [`MsgBackend::Mutex`] — the reference backend: one mutex + condvar
//!   over a `VecDeque`, exactly the original implementation.
//! * [`MsgBackend::Mpsc`] — a lock-free multi-producer inbox (Vyukov
//!   intrusive list: one `XCHG` + one store per send) drained in batches
//!   by the accepting task, with spin-then-park waiting.
//! * [`MsgBackend::Spsc`] — a bounded single-producer ring for
//!   point-to-point PE pairs. The queue promotes the *first* sender it
//!   sees to the ring; later senders (and ring overflow) fall back to a
//!   lock-free inbox, merged by arrival number, so promotion is safe
//!   even when the single-sender guess turns out wrong.
//!
//! Every backend preserves PISCES semantics: typed accept-by-mtype
//! selection, per-sender arrival-order FIFO, fault-injection hooks
//! (which interpose *before* the push and therefore work unchanged),
//! causal trace edges (the stored `cause` seq rides through any
//! backend), queue-depth metrics (`len` is exact, counting undrained
//! inbox messages), and the watchdog's progress fingerprints.
//!
//! ## Waiting without lost wakeups
//!
//! Lock-free pushes cannot rely on a queue lock to order "scan, then
//! sleep" against "push, then wake", so waiting is expressed as an
//! *eventcount*: the consumer reads [`MsgQueue::epoch`] **before**
//! scanning, and [`MsgQueue::wait_epoch`] blocks only while the epoch is
//! still the one it saw. A push that lands between the scan and the wait
//! bumps the epoch and the wait returns immediately. (This also closes a
//! window in the original mutex queue, where a push between a scan and
//! `wait` could strand the acceptor until the next message.)

pub mod mpsc;
pub mod mutex;
pub mod spsc;

use crate::message::StoredMessage;
use crate::taskid::TaskId;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

pub use mpsc::MpscQueue;
pub use mutex::MutexQueue;
pub use spsc::SpscQueue;

/// Which in-queue implementation a machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum MsgBackend {
    /// Mutex + condvar over a `VecDeque` (the reference backend).
    Mutex,
    /// Lock-free multi-producer inbox with spin-then-park acceptors.
    Mpsc,
    /// Bounded single-producer ring with automatic promotion and a
    /// lock-free fallback for extra senders.
    Spsc,
}

impl MsgBackend {
    /// All selectable backends, for sweeps and equivalence tests.
    pub const ALL: [MsgBackend; 3] = [MsgBackend::Mutex, MsgBackend::Mpsc, MsgBackend::Spsc];

    /// Backend named by the `PISCES_MSG_BACKEND` environment variable,
    /// if set and valid. This is how the CI matrix re-runs unchanged
    /// test suites once per backend.
    pub fn from_env() -> Option<Self> {
        std::env::var("PISCES_MSG_BACKEND").ok()?.parse().ok()
    }

    /// Lowercase name, as accepted by `--msg-backend` and used in bench
    /// metric names.
    pub fn name(self) -> &'static str {
        match self {
            MsgBackend::Mutex => "mutex",
            MsgBackend::Mpsc => "mpsc",
            MsgBackend::Spsc => "spsc",
        }
    }
}

/// `Mutex` unless `PISCES_MSG_BACKEND` overrides it. The environment
/// hook is deliberate: it lets the whole existing test and chaos suite
/// run against a different backend with no code changes.
impl Default for MsgBackend {
    fn default() -> Self {
        Self::from_env().unwrap_or(MsgBackend::Mutex)
    }
}

impl FromStr for MsgBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mutex" => Ok(MsgBackend::Mutex),
            "mpsc" => Ok(MsgBackend::Mpsc),
            "spsc" => Ok(MsgBackend::Spsc),
            other => Err(format!(
                "unknown message backend {other:?} (expected mutex, mpsc, or spsc)"
            )),
        }
    }
}

impl std::fmt::Display for MsgBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a selective scan: the removed message (if any matched) plus
/// how many stored messages the scan examined — the `queue_scan_depth`
/// histogram sample.
#[derive(Debug)]
pub struct Take {
    /// The earliest matching message, removed from the queue.
    pub msg: Option<StoredMessage>,
    /// Messages examined before the match (or the whole queue length if
    /// nothing matched).
    pub scanned: usize,
}

/// Outcome of pushing into a queue (re-exported through
/// [`crate::message`]).
#[derive(Debug)]
pub enum PushOutcome {
    /// Message enqueued.
    Delivered,
    /// The receiver has terminated; the message is handed back so the
    /// sender can release its shared-memory block.
    Closed(StoredMessage),
}

/// One task's in-queue, behind a selectable implementation.
///
/// The object-safe surface mirrors what the runtime needs: fault hooks
/// stay *outside* (the machine interposes before calling [`push`]), and
/// causal trace seqs ride inside [`StoredMessage`], so a backend only
/// has to store and order messages.
///
/// [`push`]: MsgQueue::push
pub trait MsgQueue: Send + Sync + std::fmt::Debug {
    /// Enqueue a message (assigning its arrival number) and wake
    /// waiters. `sent_pe`/`sent_ticks` carry the sender's clock reading
    /// for latency measurement on the accept side; `cause` carries the
    /// trace seq of the send event for the happens-before graph.
    fn push(
        &self,
        mtype: String,
        sender: TaskId,
        handle: pisces_substrate::shmem::ShmHandle,
        sent_pe: u16,
        sent_ticks: u64,
        cause: Option<u64>,
    ) -> PushOutcome;

    /// Remove and return the earliest message for which `want` returns
    /// true, counting how many messages the scan examined.
    fn take_first_matching(&self, want: &mut dyn FnMut(&StoredMessage) -> bool) -> Take;

    /// Current signal epoch. Read this **before** scanning; pass it to
    /// [`MsgQueue::wait_epoch`] so a push that lands between scan and
    /// wait cannot be missed.
    fn epoch(&self) -> u64;

    /// Block until the queue is signalled past `seen` (a push, an
    /// interrupt, or queue closure), or until `deadline` passes.
    /// Returns `false` on timeout. Returns immediately if the epoch has
    /// already moved or the queue is closed.
    ///
    /// Callers re-scan the queue after every wake; this method makes no
    /// promise that a matching message is present.
    fn wait_epoch(&self, seen: u64, deadline: Option<Instant>) -> bool;

    /// Number of threads currently parked in [`MsgQueue::wait_epoch`].
    /// Lets tests (and shutdown diagnostics) rendezvous with a waiter
    /// deterministically instead of sleeping and hoping.
    fn waiters(&self) -> usize;

    /// Wake all waiters without enqueueing (used to deliver kill
    /// requests and machine shutdown to tasks blocked in ACCEPT).
    fn interrupt(&self);

    /// Close the queue (task terminating) and drain everything still
    /// queued so the caller can release the shared-memory blocks.
    fn close_and_drain(&self) -> Vec<StoredMessage>;

    /// Remove all messages of a given type (execution-environment menu
    /// option 4, DELETE MESSAGES), returning them for block release.
    fn delete_type(&self, mtype: &str) -> Vec<StoredMessage>;

    /// Number of messages waiting (including any not yet drained from a
    /// lock-free inbox — the watchdog's AcceptStall check depends on
    /// this being exact).
    fn len(&self) -> usize;

    /// Display snapshot for the execution environment (menu option 6,
    /// DISPLAY MESSAGE QUEUE): (type, sender, packet bytes) in arrival
    /// order.
    fn snapshot(&self) -> Vec<(String, TaskId, usize)>;

    /// Which backend this is (for diagnostics and bench labels).
    fn backend(&self) -> MsgBackend;
}

/// Spin iterations (CPU `pause`) before an acceptor starts yielding.
const SPIN_HINTS: usize = 64;

/// Yields after spinning, before parking on the condvar. Kept short:
/// on a loaded host a parked thread frees the core for the producer.
const SPIN_YIELDS: usize = 4;

/// An eventcount: the spin-then-park wait primitive shared by the
/// lock-free backends.
///
/// Producers [`signal`](EventCount::signal) after publishing; consumers
/// read [`current`](EventCount::current) before scanning and
/// [`wait`](EventCount::wait) on that epoch. The waiter commits itself
/// (increments `waiters`) *before* re-checking the epoch under the park
/// lock, and the producer checks `waiters` *after* bumping the epoch —
/// with both sides sequentially consistent, one of them always sees the
/// other, so a wakeup cannot be lost.
#[derive(Debug, Default)]
pub(crate) struct EventCount {
    epoch: AtomicU64,
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl EventCount {
    pub(crate) fn current(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub(crate) fn waiters(&self) -> usize {
        self.waiters.load(Ordering::SeqCst)
    }

    /// Publish-then-wake. Takes the park lock only when someone is (or
    /// is about to be) parked, so the uncontended push path is two
    /// atomic ops.
    pub(crate) fn signal(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Spin-then-park until the epoch moves past `seen`. `false` on
    /// timeout.
    pub(crate) fn wait(&self, seen: u64, deadline: Option<Instant>) -> bool {
        for _ in 0..SPIN_HINTS {
            if self.epoch.load(Ordering::SeqCst) != seen {
                return true;
            }
            std::hint::spin_loop();
        }
        for _ in 0..SPIN_YIELDS {
            if self.epoch.load(Ordering::SeqCst) != seen {
                return true;
            }
            std::thread::yield_now();
        }
        let mut guard = self.lock.lock();
        loop {
            // Commit as a waiter BEFORE the epoch re-check: a producer
            // that bumped the epoch after this increment will see
            // waiters > 0 and take the lock to notify; one that bumped
            // before is caught by the re-check.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) != seen {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                return true;
            }
            let timed_out = match deadline {
                Some(d) => self.cond.wait_until(&mut guard, d).timed_out(),
                None => {
                    self.cond.wait(&mut guard);
                    false
                }
            };
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) != seen {
                return true;
            }
            if timed_out {
                return false;
            }
        }
    }
}

/// State common to the lock-free backends: the arrival counter, the
/// exact depth, the closed gate, and the eventcount.
#[derive(Debug, Default)]
pub(crate) struct Shared {
    /// Next arrival sequence number (assigned at push).
    arrivals: AtomicU64,
    /// Exact queue depth, counting undrained inbox messages.
    depth: AtomicUsize,
    /// Set once by `close_and_drain`; later pushes bounce.
    closed: AtomicBool,
    /// Producers currently inside a push. `close_and_drain` waits for
    /// this to quiesce so it cannot miss an in-flight message.
    pushing: AtomicUsize,
    /// The spin-then-park wait primitive.
    pub(crate) ec: EventCount,
}

impl Shared {
    /// Enter the push gate. Returns `false` if the queue is closed (the
    /// gate is already released in that case).
    fn enter_push(&self) -> bool {
        self.pushing.fetch_add(1, Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst) {
            self.pushing.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Leave the push gate after publishing, then wake waiters.
    fn exit_push_and_signal(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.pushing.fetch_sub(1, Ordering::SeqCst);
        self.ec.signal();
    }

    /// Assign the next arrival number.
    fn next_arrival(&self) -> u64 {
        self.arrivals.fetch_add(1, Ordering::Relaxed)
    }

    /// Arrival number a bounced (queue-closed) message reports, matching
    /// the mutex backend: the counter is not consumed.
    fn arrival_if_closed(&self) -> u64 {
        self.arrivals.load(Ordering::Relaxed)
    }

    /// Mark closed and wait until no producer is mid-push, so a
    /// subsequent drain observes every delivered message.
    fn close_and_quiesce(&self) {
        self.closed.store(true, Ordering::SeqCst);
        while self.pushing.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// Insert into a `VecDeque` kept sorted by arrival number. Drained
/// batches arrive nearly sorted, so this walks only the (usually empty)
/// tail of inversions.
pub(crate) fn insert_by_arrival(pending: &mut VecDeque<StoredMessage>, msg: StoredMessage) {
    let mut i = pending.len();
    while i > 0 && pending[i - 1].arrival > msg.arrival {
        i -= 1;
    }
    pending.insert(i, msg);
}

/// Scan `pending` for the earliest match, removing it in place.
pub(crate) fn take_from_pending(
    pending: &mut VecDeque<StoredMessage>,
    want: &mut dyn FnMut(&StoredMessage) -> bool,
) -> Take {
    let mut scanned = 0;
    for i in 0..pending.len() {
        scanned += 1;
        if want(&pending[i]) {
            return Take {
                msg: pending.remove(i),
                scanned,
            };
        }
    }
    Take { msg: None, scanned }
}

/// Remove every message of `mtype` from `pending` in place (no rebuild
/// allocation), preserving the order of the survivors.
pub(crate) fn delete_type_in_place(
    pending: &mut VecDeque<StoredMessage>,
    mtype: &str,
) -> Vec<StoredMessage> {
    let mut removed = Vec::new();
    let mut i = 0;
    while i < pending.len() {
        if pending[i].mtype == mtype {
            removed.extend(pending.remove(i));
        } else {
            i += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn backend_names_round_trip() {
        for b in MsgBackend::ALL {
            assert_eq!(b.name().parse::<MsgBackend>().unwrap(), b);
        }
        assert!("flume".parse::<MsgBackend>().is_err());
        assert_eq!("MPSC".parse::<MsgBackend>().unwrap(), MsgBackend::Mpsc);
    }

    #[test]
    fn eventcount_signal_before_wait_returns_immediately() {
        let ec = EventCount::default();
        let seen = ec.current();
        ec.signal();
        // Must not block: the epoch already moved.
        assert!(ec.wait(seen, None));
    }

    #[test]
    fn eventcount_times_out_without_signal() {
        let ec = EventCount::default();
        let seen = ec.current();
        assert!(!ec.wait(seen, Some(Instant::now() + Duration::from_millis(20))));
    }

    #[test]
    fn eventcount_wakes_parked_waiter() {
        let ec = Arc::new(EventCount::default());
        let e2 = ec.clone();
        let seen = ec.current();
        let t = std::thread::spawn(move || e2.wait(seen, Some(Instant::now() + Duration::from_secs(5))));
        while ec.waiters() == 0 {
            std::thread::yield_now();
        }
        ec.signal();
        assert!(t.join().unwrap());
        assert_eq!(ec.waiters(), 0);
    }

    /// The race the eventcount exists for: signals issued while the
    /// consumer is between "read epoch" and "wait" must never strand
    /// the waiter. Hammer the window from a producer thread.
    #[test]
    fn eventcount_no_lost_wakeups_under_races() {
        let ec = Arc::new(EventCount::default());
        let e2 = ec.clone();
        let producer = std::thread::spawn(move || {
            for _ in 0..2_000 {
                e2.signal();
                std::thread::yield_now();
            }
        });
        let deadline_each = Duration::from_secs(5);
        let mut woken = 0;
        for _ in 0..200 {
            let seen = ec.current();
            if ec.wait(seen, Some(Instant::now() + deadline_each)) {
                woken += 1;
            }
        }
        producer.join().unwrap();
        // Every wait either saw a moved epoch or was woken; none may
        // have burned its full 5s deadline (the test would time out).
        assert_eq!(woken, 200);
    }
}
