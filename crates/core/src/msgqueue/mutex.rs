//! The reference in-queue backend: one mutex + condvar over a
//! `VecDeque`, as in the original implementation — now with a signal
//! epoch so acceptors can scan outside the lock without losing wakeups.

use super::{delete_type_in_place, take_from_pending, MsgBackend, MsgQueue, PushOutcome, Take};
use crate::message::StoredMessage;
use crate::taskid::TaskId;
use pisces_substrate::shmem::ShmHandle;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

#[derive(Debug, Default)]
struct QueueState {
    q: VecDeque<StoredMessage>,
    next_arrival: u64,
    closed: bool,
    /// Threads currently blocked in `wait_epoch`. Maintained under the
    /// state lock, so once an observer reads a non-zero value the
    /// waiter is committed to the condvar (the wait atomically releases
    /// the lock) and a subsequent notify cannot be lost.
    waiters: usize,
}

/// Mutex + condvar in-queue ([`MsgBackend::Mutex`]).
#[derive(Debug, Default)]
pub struct MutexQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    /// Signal epoch, bumped under the state lock by every push,
    /// interrupt, and close. Reading it outside the lock is safe: a
    /// stale read just means `wait_epoch` returns one scan early.
    epoch: AtomicU64,
}

impl MutexQueue {
    /// An open, empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MsgQueue for MutexQueue {
    fn push(
        &self,
        mtype: String,
        sender: TaskId,
        handle: ShmHandle,
        sent_pe: u16,
        sent_ticks: u64,
        cause: Option<u64>,
    ) -> PushOutcome {
        let mut st = self.state.lock();
        let msg = StoredMessage {
            mtype,
            sender,
            handle,
            arrival: st.next_arrival,
            sent_pe,
            sent_ticks,
            cause,
        };
        if st.closed {
            return PushOutcome::Closed(msg);
        }
        st.next_arrival += 1;
        st.q.push_back(msg);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(st);
        self.cond.notify_all();
        PushOutcome::Delivered
    }

    fn take_first_matching(&self, want: &mut dyn FnMut(&StoredMessage) -> bool) -> Take {
        let mut st = self.state.lock();
        take_from_pending(&mut st.q, want)
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn wait_epoch(&self, seen: u64, deadline: Option<Instant>) -> bool {
        let mut st = self.state.lock();
        loop {
            // The epoch only changes under the state lock, so this
            // check-then-wait cannot miss a signal.
            if st.closed || self.epoch.load(Ordering::SeqCst) != seen {
                return true;
            }
            st.waiters += 1;
            let timed_out = match deadline {
                Some(d) => self.cond.wait_until(&mut st, d).timed_out(),
                None => {
                    self.cond.wait(&mut st);
                    false
                }
            };
            st.waiters -= 1;
            if timed_out {
                return self.epoch.load(Ordering::SeqCst) != seen;
            }
        }
    }

    fn waiters(&self) -> usize {
        self.state.lock().waiters
    }

    fn interrupt(&self) {
        let st = self.state.lock();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(st);
        self.cond.notify_all();
    }

    fn close_and_drain(&self) -> Vec<StoredMessage> {
        let mut st = self.state.lock();
        st.closed = true;
        let out = st.q.drain(..).collect();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(st);
        self.cond.notify_all();
        out
    }

    fn delete_type(&self, mtype: &str) -> Vec<StoredMessage> {
        let mut st = self.state.lock();
        delete_type_in_place(&mut st.q, mtype)
    }

    fn len(&self) -> usize {
        self.state.lock().q.len()
    }

    fn snapshot(&self) -> Vec<(String, TaskId, usize)> {
        self.state
            .lock()
            .q
            .iter()
            .map(|m| (m.mtype.clone(), m.sender, m.handle.bytes()))
            .collect()
    }

    fn backend(&self) -> MsgBackend {
        MsgBackend::Mutex
    }
}
