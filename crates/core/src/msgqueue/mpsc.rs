//! Lock-free multi-producer in-queue ([`MsgBackend::Mpsc`]).
//!
//! Producers push onto a Vyukov-style intrusive list — one `XCHG` and
//! one store per send, no lock, no CAS loop — and the accepting task
//! drains the list in batches into a private `VecDeque` ordered by
//! arrival number. Waiting uses the module's eventcount
//! (spin-then-park), so a push landing between the acceptor's scan and
//! its park is never lost.

use super::{
    insert_by_arrival, take_from_pending, MsgBackend, MsgQueue, PushOutcome, Shared, Take,
};
use crate::message::StoredMessage;
use crate::taskid::TaskId;
use pisces_substrate::shmem::ShmHandle;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::time::Instant;

struct Node {
    next: AtomicPtr<Node>,
    msg: Option<StoredMessage>,
}

/// Vyukov intrusive MPSC list: `head` is the most recently pushed node
/// (producer side), `tail` the last consumed node, kept as a stub so
/// the list is never empty. Push is wait-free apart from one `XCHG`;
/// the consumer walks `next` pointers and stops at a null, which can
/// only mean either end-of-list or a producer mid-link — and a mid-link
/// producer has not yet signalled the eventcount, so the consumer will
/// be re-woken once the link lands.
pub(crate) struct Inbox {
    head: AtomicPtr<Node>,
    /// Consumer-side cursor. Only ever touched by the thread holding
    /// the backend's consumer lock, hence the `UnsafeCell`.
    tail: UnsafeCell<*mut Node>,
}

// SAFETY: `head` is atomic; `tail` is only dereferenced under the
// owning queue's consumer lock (see `drain`'s safety contract).
unsafe impl Send for Inbox {}
unsafe impl Sync for Inbox {}

impl Inbox {
    pub(crate) fn new() -> Self {
        let stub = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            msg: None,
        }));
        Inbox {
            head: AtomicPtr::new(stub),
            tail: UnsafeCell::new(stub),
        }
    }

    /// Lock-free multi-producer push.
    pub(crate) fn push(&self, msg: StoredMessage) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            msg: Some(msg),
        }));
        let prev = self.head.swap(node, Ordering::AcqRel);
        // Between the swap and this store the list is "cut" at `prev`;
        // the consumer sees a shorter list, which is safe because this
        // producer signals the eventcount only after linking.
        // SAFETY: `prev` cannot be freed yet — the consumer only frees
        // a node after advancing past it, which requires reading the
        // non-null `next` this store publishes.
        unsafe { (*prev).next.store(node, Ordering::Release) };
    }

    /// Drain every linked message into `sink`, freeing consumed nodes.
    ///
    /// # Safety
    /// Caller must hold the owning queue's consumer lock: `tail` is
    /// unsynchronized consumer-only state.
    pub(crate) unsafe fn drain(&self, sink: &mut dyn FnMut(StoredMessage)) {
        let tail_cell = self.tail.get();
        loop {
            let tail = *tail_cell;
            let next = (*tail).next.load(Ordering::Acquire);
            if next.is_null() {
                return;
            }
            let msg = (*next).msg.take().expect("non-stub node carries a message");
            *tail_cell = next;
            drop(Box::from_raw(tail));
            sink(msg);
        }
    }
}

impl Drop for Inbox {
    fn drop(&mut self) {
        // Exclusive access now; free the remaining chain incl. the stub.
        unsafe {
            let mut p = *self.tail.get();
            while !p.is_null() {
                let next = (*p).next.load(Ordering::Relaxed);
                drop(Box::from_raw(p));
                p = next;
            }
        }
    }
}

/// Lock-free MPSC in-queue with spin-then-park acceptors.
pub struct MpscQueue {
    shared: Shared,
    inbox: Inbox,
    /// Messages drained from the inbox, sorted by arrival. The lock is
    /// effectively uncontended: the accepting task is the only hot
    /// user; admin operations (snapshot, delete, close) are cold.
    pending: Mutex<VecDeque<StoredMessage>>,
}

impl Default for MpscQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl MpscQueue {
    /// An open, empty queue.
    pub fn new() -> Self {
        MpscQueue {
            shared: Shared::default(),
            inbox: Inbox::new(),
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// Drain the inbox into `pending`, merging by arrival number.
    /// Caller must hold the `pending` lock (enforced by the `&mut`
    /// guard contents being passed in).
    fn drain_into(&self, pending: &mut VecDeque<StoredMessage>) {
        // SAFETY: holding the `pending` lock is this queue's consumer
        // lock; no other thread touches the inbox tail.
        unsafe {
            self.inbox.drain(&mut |m| insert_by_arrival(pending, m));
        }
    }
}

impl std::fmt::Debug for MpscQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscQueue")
            .field("len", &self.len())
            .field("shared", &self.shared)
            .finish()
    }
}

impl MsgQueue for MpscQueue {
    fn push(
        &self,
        mtype: String,
        sender: TaskId,
        handle: ShmHandle,
        sent_pe: u16,
        sent_ticks: u64,
        cause: Option<u64>,
    ) -> PushOutcome {
        if !self.shared.enter_push() {
            return PushOutcome::Closed(StoredMessage {
                mtype,
                sender,
                handle,
                arrival: self.shared.arrival_if_closed(),
                sent_pe,
                sent_ticks,
                cause,
            });
        }
        let msg = StoredMessage {
            mtype,
            sender,
            handle,
            arrival: self.shared.next_arrival(),
            sent_pe,
            sent_ticks,
            cause,
        };
        self.inbox.push(msg);
        self.shared.exit_push_and_signal();
        PushOutcome::Delivered
    }

    fn take_first_matching(&self, want: &mut dyn FnMut(&StoredMessage) -> bool) -> Take {
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        let take = take_from_pending(&mut pending, want);
        if take.msg.is_some() {
            self.shared.depth.fetch_sub(1, Ordering::Relaxed);
        }
        take
    }

    fn epoch(&self) -> u64 {
        self.shared.ec.current()
    }

    fn wait_epoch(&self, seen: u64, deadline: Option<Instant>) -> bool {
        if self.shared.is_closed() {
            return true;
        }
        self.shared.ec.wait(seen, deadline)
    }

    fn waiters(&self) -> usize {
        self.shared.ec.waiters()
    }

    fn interrupt(&self) {
        self.shared.ec.signal();
    }

    fn close_and_drain(&self) -> Vec<StoredMessage> {
        self.shared.close_and_quiesce();
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        let out: Vec<_> = pending.drain(..).collect();
        self.shared.depth.store(0, Ordering::Relaxed);
        drop(pending);
        self.shared.ec.signal();
        out
    }

    fn delete_type(&self, mtype: &str) -> Vec<StoredMessage> {
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        let removed = super::delete_type_in_place(&mut pending, mtype);
        self.shared.depth.fetch_sub(removed.len(), Ordering::Relaxed);
        removed
    }

    fn len(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Vec<(String, TaskId, usize)> {
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        pending
            .iter()
            .map(|m| (m.mtype.clone(), m.sender, m.handle.bytes()))
            .collect()
    }

    fn backend(&self) -> MsgBackend {
        MsgBackend::Mpsc
    }
}
