//! Point-to-point in-queue ([`MsgBackend::Spsc`]): a bounded
//! single-producer ring with automatic promotion.
//!
//! Most PISCES queues are point-to-point in steady state — a force
//! member streaming window transfers to its neighbour, a child
//! reporting to its parent — so the common case is exactly one sender.
//! The first sender a queue sees is *promoted*: it claims the ring and
//! pushes with two plain stores (slot + producer index). Any other
//! sender — or the promoted sender when the ring is full, or when two
//! threads race on the same sender id — falls back to the lock-free
//! inbox from the MPSC backend. The consumer merges ring and inbox by
//! arrival number, so correctness never depends on the single-sender
//! guess being right; only the fast path does.

use super::mpsc::Inbox;
use super::{
    insert_by_arrival, take_from_pending, MsgBackend, MsgQueue, PushOutcome, Shared, Take,
};
use crate::message::StoredMessage;
use crate::taskid::TaskId;
use pisces_substrate::shmem::ShmHandle;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Ring capacity (messages). Power of two; beyond this depth a
/// point-to-point stream is acceptor-bound anyway and the inbox
/// fallback costs one allocation per message.
const RING_CAP: usize = 256;

/// Sentinel for "no sender promoted yet" (a packed `TaskId` is always
/// well below this).
const SOLO_UNCLAIMED: u64 = u64::MAX;

/// Bounded SPSC ring over monotonic producer/consumer indices.
struct Ring {
    slots: Box<[UnsafeCell<Option<StoredMessage>>]>,
    /// Next slot to write (monotonic, masked on use).
    prod: AtomicUsize,
    /// Next slot to read (monotonic, masked on use).
    cons: AtomicUsize,
}

// SAFETY: each slot is touched by the producer only before the `prod`
// release-store that publishes it, and by the consumer only after the
// matching acquire-load — never concurrently. Producer and consumer
// sides are each serialized externally (`prod_gate` / consumer lock).
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new() -> Self {
        Ring {
            slots: (0..RING_CAP).map(|_| UnsafeCell::new(None)).collect(),
            prod: AtomicUsize::new(0),
            cons: AtomicUsize::new(0),
        }
    }

    /// Publish one message. Hands the message back if the ring is full.
    ///
    /// # Safety
    /// Caller must hold the producer gate.
    unsafe fn try_push(&self, msg: StoredMessage) -> Result<(), StoredMessage> {
        let p = self.prod.load(Ordering::Relaxed);
        if p.wrapping_sub(self.cons.load(Ordering::Acquire)) >= RING_CAP {
            return Err(msg);
        }
        *self.slots[p & (RING_CAP - 1)].get() = Some(msg);
        self.prod.store(p.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pop the oldest message, if any.
    ///
    /// # Safety
    /// Caller must hold the owning queue's consumer lock.
    unsafe fn pop(&self) -> Option<StoredMessage> {
        let c = self.cons.load(Ordering::Relaxed);
        if c == self.prod.load(Ordering::Acquire) {
            return None;
        }
        let msg = (*self.slots[c & (RING_CAP - 1)].get()).take();
        self.cons.store(c.wrapping_add(1), Ordering::Release);
        msg
    }
}

/// SPSC-specialized in-queue with inbox fallback.
pub struct SpscQueue {
    shared: Shared,
    ring: Ring,
    /// Packed `TaskId` of the promoted sender; `SOLO_UNCLAIMED` until
    /// the first push claims it.
    solo: AtomicU64,
    /// Exclusivity for the ring's producer side. A sender id does not
    /// imply a single thread (the user task id, for one, can send from
    /// several), so the fast path additionally try-locks this gate and
    /// falls back to the inbox on contention.
    prod_gate: AtomicBool,
    /// Fallback path: non-promoted senders and ring overflow.
    overflow: Inbox,
    /// Consumer-side merge of ring + overflow, sorted by arrival.
    pending: Mutex<VecDeque<StoredMessage>>,
}

impl Default for SpscQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl SpscQueue {
    /// An open, empty queue; the first sender will claim the ring.
    pub fn new() -> Self {
        SpscQueue {
            shared: Shared::default(),
            ring: Ring::new(),
            solo: AtomicU64::new(SOLO_UNCLAIMED),
            prod_gate: AtomicBool::new(false),
            overflow: Inbox::new(),
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// The promoted sender, if any (diagnostics and tests).
    pub fn promoted_sender(&self) -> Option<TaskId> {
        match self.solo.load(Ordering::SeqCst) {
            SOLO_UNCLAIMED => None,
            packed => Some(TaskId::unpack(packed)),
        }
    }

    /// Drain ring and overflow into `pending`, merging by arrival.
    /// Caller must hold the `pending` lock.
    fn drain_into(&self, pending: &mut VecDeque<StoredMessage>) {
        // SAFETY: the `pending` lock is this queue's consumer lock.
        unsafe {
            while let Some(m) = self.ring.pop() {
                insert_by_arrival(pending, m);
            }
            self.overflow.drain(&mut |m| insert_by_arrival(pending, m));
        }
    }
}

impl std::fmt::Debug for SpscQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscQueue")
            .field("len", &self.len())
            .field("promoted_sender", &self.promoted_sender())
            .field("shared", &self.shared)
            .finish()
    }
}

impl MsgQueue for SpscQueue {
    fn push(
        &self,
        mtype: String,
        sender: TaskId,
        handle: ShmHandle,
        sent_pe: u16,
        sent_ticks: u64,
        cause: Option<u64>,
    ) -> PushOutcome {
        if !self.shared.enter_push() {
            return PushOutcome::Closed(StoredMessage {
                mtype,
                sender,
                handle,
                arrival: self.shared.arrival_if_closed(),
                sent_pe,
                sent_ticks,
                cause,
            });
        }
        let msg = StoredMessage {
            mtype,
            sender,
            handle,
            arrival: self.shared.next_arrival(),
            sent_pe,
            sent_ticks,
            cause,
        };
        let packed = sender.pack();
        let promoted = match self.solo.compare_exchange(
            SOLO_UNCLAIMED,
            packed,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => true,
            Err(current) => current == packed,
        };
        // `leftover` holds the message until some path accepts it.
        let mut leftover = Some(msg);
        if promoted
            && self
                .prod_gate
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            // SAFETY: the gate CAS makes this thread the sole ring
            // producer until the release below.
            let res = unsafe { self.ring.try_push(leftover.take().expect("just set")) };
            self.prod_gate.store(false, Ordering::Release);
            if let Err(back) = res {
                leftover = Some(back);
            }
        }
        if let Some(m) = leftover {
            self.overflow.push(m);
        }
        self.shared.exit_push_and_signal();
        PushOutcome::Delivered
    }

    fn take_first_matching(&self, want: &mut dyn FnMut(&StoredMessage) -> bool) -> Take {
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        let take = take_from_pending(&mut pending, want);
        if take.msg.is_some() {
            self.shared.depth.fetch_sub(1, Ordering::Relaxed);
        }
        take
    }

    fn epoch(&self) -> u64 {
        self.shared.ec.current()
    }

    fn wait_epoch(&self, seen: u64, deadline: Option<Instant>) -> bool {
        if self.shared.is_closed() {
            return true;
        }
        self.shared.ec.wait(seen, deadline)
    }

    fn waiters(&self) -> usize {
        self.shared.ec.waiters()
    }

    fn interrupt(&self) {
        self.shared.ec.signal();
    }

    fn close_and_drain(&self) -> Vec<StoredMessage> {
        self.shared.close_and_quiesce();
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        let out: Vec<_> = pending.drain(..).collect();
        self.shared.depth.store(0, Ordering::Relaxed);
        drop(pending);
        self.shared.ec.signal();
        out
    }

    fn delete_type(&self, mtype: &str) -> Vec<StoredMessage> {
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        let removed = super::delete_type_in_place(&mut pending, mtype);
        self.shared.depth.fetch_sub(removed.len(), Ordering::Relaxed);
        removed
    }

    fn len(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Vec<(String, TaskId, usize)> {
        let mut pending = self.pending.lock();
        self.drain_into(&mut pending);
        pending
            .iter()
            .map(|m| (m.mtype.clone(), m.sender, m.handle.bytes()))
            .collect()
    }

    fn backend(&self) -> MsgBackend {
        MsgBackend::Spsc
    }
}
