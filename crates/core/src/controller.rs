//! The operating-system controller tasks.
//!
//! "The operating system is organized as a static set of tasks running in
//! each cluster. Two kinds of controllers are currently used: task
//! controllers, responsible for initiating, terminating, and monitoring the
//! operation of user tasks within their cluster; and user controllers,
//! responsible for control of communication with user terminals that are
//! directly accessible from their cluster." (paper, Sections 2 and 5)
//!
//! Controllers are real tasks: they occupy dedicated slots, have taskids
//! that every new task receives, and communicate through the same
//! asynchronous message machinery as user tasks.

use crate::cost;
use crate::machine::{sysmsg, PendingInit, Pisces};
use crate::stats::RunStats;
use crate::task::TaskEntry;
use crate::taskid::TaskId;
use crate::trace::TraceEventKind;
use crate::value::Value;
use std::sync::Arc;

/// Receive the next message addressed to a controller, blocking as long
/// as needed. Returns `None` only if the queue was closed underneath us.
/// The last tuple element is the trace seq of the controller's MSG-ACCEPT
/// event, threaded into downstream events it causes (e.g. TASK-INIT).
fn receive(
    p: &Arc<Pisces>,
    entry: &Arc<TaskEntry>,
) -> Option<(String, TaskId, Vec<Value>, Option<u64>)> {
    loop {
        // Epoch before the scan, so a message pushed while we service the
        // queue cannot slip between the miss below and the wait.
        let epoch = entry.inq.epoch();
        if let Some(stored) = entry.inq.take_first_matching(|_| true) {
            let mtype = stored.mtype.clone();
            let sender = stored.sender;
            // Controllers hold their PE's CPU while servicing a message.
            let _cpu = p.sub.pe(entry.pe).cpu.acquire();
            p.sub.tick(entry.pe, cost::ACCEPT_BASE);
            RunStats::bump(&p.stats.messages_accepted);
            let accept_seq = p.tracer.emit_causal(
                TraceEventKind::MsgAccept,
                entry.id,
                entry.pe.number(),
                p.sub.pe(entry.pe).clock.now(),
                format!("{mtype} <- {sender}"),
                None,
                stored.cause,
            );
            match p.open_message(&stored, entry.pe) {
                Ok(args) => return Some((mtype, sender, args, accept_seq)),
                Err(_) => continue, // corrupt message: drop and keep serving
            }
        }
        if entry.killed() {
            return None;
        }
        entry.inq.wait_epoch(epoch, None);
        if entry.killed() {
            return None;
        }
    }
}

/// Main loop of a cluster's task controller.
pub(crate) fn task_controller_main(p: &Arc<Pisces>, entry: &Arc<TaskEntry>) {
    let cluster = entry.id.cluster;
    while let Some((mtype, sender, args, accept_seq)) = receive(p, entry) {
        match mtype.as_str() {
            sysmsg::INIT => {
                let (tasktype, user_args) = match args.split_first() {
                    Some((Value::Str(t), rest)) => (t.clone(), rest.to_vec()),
                    _ => {
                        p.note_init_handled(cluster);
                        continue; // malformed request: drop
                    }
                };
                dispatch_init(
                    p,
                    cluster,
                    PendingInit {
                        tasktype,
                        args: user_args,
                        parent: sender,
                        cause: accept_seq,
                    },
                );
                p.note_init_handled(cluster);
            }
            sysmsg::TERM => {
                let Some(Value::TaskId(dead)) = args.first() else {
                    continue;
                };
                if let Some(next) = p.release_slot(*dead) {
                    dispatch_init(p, cluster, next);
                    p.note_dispatch_done();
                }
            }
            sysmsg::KILL => {
                if let Some(Value::TaskId(victim)) = args.first() {
                    if let Ok(e) = p.entry_of(*victim) {
                        if !e.is_controller {
                            e.request_kill();
                        }
                    }
                }
            }
            sysmsg::SHUTDOWN => break,
            other => {
                // Unknown traffic to a controller is logged, not fatal.
                p.sub.pe(entry.pe).console.write_line(format!(
                    "task controller {}: unknown message {other}",
                    entry.id
                ));
            }
        }
    }
}

/// Start a task in the cluster if a slot is free, otherwise hold the
/// request: "if all slots are full, then the task must wait to be
/// initiated until a slot is free."
fn dispatch_init(p: &Arc<Pisces>, cluster: u8, req: PendingInit) {
    let mut req = req;
    loop {
        match p.try_reserve_slot(cluster) {
            Some(id) => {
                let PendingInit {
                    tasktype,
                    args,
                    parent,
                    cause,
                } = req;
                let Err(e) = p.spawn_user_task(id, tasktype.clone(), args, parent, cause) else {
                    return;
                };
                // Unknown tasktype or resource failure: give the slot back
                // and report on the console. Releasing the slot may hand us
                // the next parked request — keep dispatching so none is
                // dropped (the caller's coverage of `req` extends until we
                // return, so the extra dispatching credit is released at
                // once).
                if let Ok(pe) = p.config.cluster(cluster).map(|c| c.primary_pe) {
                    if let Ok(pe) = pisces_substrate::pe::PeId::new(pe) {
                        p.sub
                            .pe(pe)
                            .console
                            .write_line(format!("INITIATE {tasktype} failed: {e}"));
                    }
                }
                match p.release_slot(id) {
                    Some(next) => {
                        p.note_dispatch_done();
                        req = next;
                    }
                    None => return,
                }
            }
            None => {
                p.park_init(cluster, req);
                return;
            }
        }
    }
}

/// Main loop of a user controller: any message sent TO USER arrives here
/// and is written to the terminal.
pub(crate) fn user_controller_main(p: &Arc<Pisces>, entry: &Arc<TaskEntry>) {
    while let Some((mtype, sender, args, _accept_seq)) = receive(p, entry) {
        if mtype == sysmsg::SHUTDOWN {
            break;
        }
        let rendered: Vec<String> = args.iter().map(render_value).collect();
        p.sub
            .pe(entry.pe)
            .console
            .write_line(format!("{sender}: {mtype}({})", rendered.join(", ")));
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Real(r) => format!("{r}"),
        Value::Logical(b) => if *b { ".TRUE." } else { ".FALSE." }.to_string(),
        Value::Str(s) => s.clone(),
        Value::TaskId(t) => t.to_string(),
        Value::Window(w) => w.to_string(),
        Value::IntArray(a) => format!("[{} ints]", a.len()),
        Value::RealArray(a) => format!("[{} reals]", a.len()),
    }
}
