//! Asynchronous message passing: stored messages and per-task in-queues.
//!
//! "Message communication is asynchronous. Messages are queued in an
//! in-queue for the receiver in order of arrival. The receiving task
//! determines when, if ever, a particular message is 'accepted'."
//! (paper, Section 6)
//!
//! Message storage lives in shared memory: "Messages consist of a header
//! and a list of packets containing the arguments. Since a message may
//! remain in a task's in-queue indefinitely, this area is maintained as a
//! heap with explicit allocation/deallocation as messages are sent and
//! accepted." (Section 11) A [`StoredMessage`] therefore carries a
//! [`ShmHandle`] to its packet words; the words are only decoded back into
//! [`Value`]s — and the block freed — when the message is accepted (or
//! deleted).

use crate::error::{PiscesError, Result};
use crate::taskid::TaskId;
use crate::value::Value;
use crate::window::Window;
use flex32::shmem::ShmHandle;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Instant;

/// A message as delivered to user code by ACCEPT: decoded arguments plus
/// the sender's taskid ("whenever a task receives a message from another
/// task, the taskid of the sender is included as part of the message").
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The message type name.
    pub mtype: String,
    /// Taskid of the sender.
    pub sender: TaskId,
    /// Decoded argument list.
    pub args: Vec<Value>,
}

impl Message {
    /// Decode a bulk window transfer built by
    /// [`crate::context::TaskCtx::window_send`]: the first argument is
    /// the sender's window descriptor, the second the dense row-major
    /// payload.
    pub fn window_payload(&self) -> Result<(&Window, &[f64])> {
        let missing = |what: &str| PiscesError::ArgMismatch {
            expected: format!("window transfer ({what})"),
            got: format!("{} argument(s)", self.args.len()),
        };
        let w = self
            .args
            .first()
            .ok_or_else(|| missing("WINDOW descriptor"))?
            .as_window()?;
        let data = self
            .args
            .get(1)
            .ok_or_else(|| missing("REAL array payload"))?
            .as_real_array()?;
        Ok((w, data))
    }
}

/// A message at rest in an in-queue: metadata plus the shared-memory block
/// holding the encoded packets.
#[derive(Debug)]
pub struct StoredMessage {
    /// The message type name.
    pub mtype: String,
    /// Taskid of the sender.
    pub sender: TaskId,
    /// Packet words in shared memory (header + arguments).
    pub handle: ShmHandle,
    /// Arrival sequence within the receiving queue.
    pub arrival: u64,
    /// PE whose clock stamped `sent_ticks`.
    pub sent_pe: u8,
    /// Sender's clock reading when the message was sent. The accept side
    /// subtracts this from its own clock to sample send→accept latency;
    /// PE clocks are unsynchronized, so cross-PE samples are approximate.
    pub sent_ticks: u64,
    /// Trace seq of the MSG-SEND (or MSG-DUP/FAULT-NOTICE) event that put
    /// this message in flight, if tracing recorded one. The accept side
    /// cites it as the `cause` of its MSG-ACCEPT event, closing the
    /// send→accept edge of the happens-before graph.
    pub cause: Option<u64>,
}

#[derive(Debug, Default)]
struct QueueState {
    q: VecDeque<StoredMessage>,
    next_arrival: u64,
    closed: bool,
    /// Threads currently blocked in [`InQueue::wait`]. Maintained under
    /// the state lock, so once an observer reads a non-zero value the
    /// waiter is committed to the condvar (the wait atomically releases
    /// the lock) and a subsequent notify cannot be lost.
    waiters: usize,
}

/// Outcome of pushing into a queue.
#[derive(Debug)]
pub enum PushOutcome {
    /// Message enqueued.
    Delivered,
    /// The receiver has terminated; the message is handed back so the
    /// sender can release its shared-memory block.
    Closed(StoredMessage),
}

/// A task's in-queue. Arrival order is preserved; acceptance may be
/// selective by message type, which is why removal scans rather than pops.
#[derive(Debug, Default)]
pub struct InQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
}

impl InQueue {
    /// An open, empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a message (assigning its arrival number) and wake waiters.
    /// `sent_pe`/`sent_ticks` carry the sender's clock reading for
    /// latency measurement on the accept side; `cause` carries the trace
    /// seq of the send event for the happens-before graph.
    pub fn push(
        &self,
        mtype: String,
        sender: TaskId,
        handle: ShmHandle,
        sent_pe: u8,
        sent_ticks: u64,
        cause: Option<u64>,
    ) -> PushOutcome {
        let mut st = self.state.lock();
        let msg = StoredMessage {
            mtype,
            sender,
            handle,
            arrival: st.next_arrival,
            sent_pe,
            sent_ticks,
            cause,
        };
        if st.closed {
            return PushOutcome::Closed(msg);
        }
        st.next_arrival += 1;
        st.q.push_back(msg);
        drop(st);
        self.cond.notify_all();
        PushOutcome::Delivered
    }

    /// Remove and return the earliest message for which `want` returns
    /// true, or `None` if none matches.
    pub fn take_first_matching(
        &self,
        want: impl FnMut(&StoredMessage) -> bool,
    ) -> Option<StoredMessage> {
        let mut st = self.state.lock();
        let pos = st.q.iter().position(want)?;
        st.q.remove(pos)
    }

    /// Block until the queue is signalled (a push, an interrupt, or queue
    /// closure), or until `deadline` passes. Returns `false` on timeout.
    ///
    /// Callers re-scan the queue after every wake; this method makes no
    /// promise that a matching message is present.
    pub fn wait(&self, deadline: Option<Instant>) -> bool {
        let mut st = self.state.lock();
        if st.closed {
            return true;
        }
        st.waiters += 1;
        let woke = match deadline {
            Some(d) => !self.cond.wait_until(&mut st, d).timed_out(),
            None => {
                self.cond.wait(&mut st);
                true
            }
        };
        st.waiters -= 1;
        woke
    }

    /// Number of threads currently blocked in [`Self::wait`]. Lets tests
    /// (and shutdown diagnostics) rendezvous with a waiter deterministically
    /// instead of sleeping and hoping.
    pub fn waiters(&self) -> usize {
        self.state.lock().waiters
    }

    /// Wake all waiters without enqueueing (used to deliver kill requests
    /// and machine shutdown to tasks blocked in ACCEPT).
    pub fn interrupt(&self) {
        self.cond.notify_all();
    }

    /// Close the queue (task terminating) and drain everything still
    /// queued so the caller can release the shared-memory blocks.
    pub fn close_and_drain(&self) -> Vec<StoredMessage> {
        let mut st = self.state.lock();
        st.closed = true;
        let out = st.q.drain(..).collect();
        drop(st);
        self.cond.notify_all();
        out
    }

    /// Remove all messages of a given type (execution-environment menu
    /// option 4, DELETE MESSAGES), returning them for block release.
    pub fn delete_type(&self, mtype: &str) -> Vec<StoredMessage> {
        let mut st = self.state.lock();
        let mut kept = VecDeque::with_capacity(st.q.len());
        let mut removed = Vec::new();
        while let Some(m) = st.q.pop_front() {
            if m.mtype == mtype {
                removed.push(m);
            } else {
                kept.push_back(m);
            }
        }
        st.q = kept;
        removed
    }

    /// Number of messages waiting.
    pub fn len(&self) -> usize {
        self.state.lock().q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display snapshot for the execution environment (menu option 6,
    /// DISPLAY MESSAGE QUEUE): (type, sender, packet bytes) in arrival
    /// order.
    pub fn snapshot(&self) -> Vec<(String, TaskId, usize)> {
        self.state
            .lock()
            .q
            .iter()
            .map(|m| (m.mtype.clone(), m.sender, m.handle.bytes()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex32::shmem::{SharedMemory, ShmTag};
    use std::sync::Arc;
    use std::time::Duration;

    fn shm() -> SharedMemory {
        SharedMemory::with_capacity(4096)
    }

    fn tid(n: u32) -> TaskId {
        TaskId::new(1, 1, n)
    }

    fn handle(m: &SharedMemory) -> ShmHandle {
        m.alloc(16, ShmTag::Message).unwrap()
    }

    fn push(q: &InQueue, mtype: &str, sender: TaskId, handle: ShmHandle) -> PushOutcome {
        q.push(mtype.into(), sender, handle, 3, 0, None)
    }

    #[test]
    fn push_take_in_arrival_order() {
        let m = shm();
        let q = InQueue::new();
        push(&q, "A", tid(1), handle(&m));
        push(&q, "B", tid(2), handle(&m));
        push(&q, "A", tid(3), handle(&m));
        let first_a = q.take_first_matching(|s| s.mtype == "A").unwrap();
        assert_eq!(first_a.sender, tid(1));
        let next_a = q.take_first_matching(|s| s.mtype == "A").unwrap();
        assert_eq!(next_a.sender, tid(3));
        assert!(q.take_first_matching(|s| s.mtype == "A").is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn arrival_numbers_increase() {
        let m = shm();
        let q = InQueue::new();
        push(&q, "A", tid(1), handle(&m));
        push(&q, "A", tid(1), handle(&m));
        let a = q.take_first_matching(|_| true).unwrap();
        let b = q.take_first_matching(|_| true).unwrap();
        assert!(a.arrival < b.arrival);
    }

    #[test]
    fn closed_queue_returns_message() {
        let m = shm();
        let q = InQueue::new();
        q.close_and_drain();
        match push(&q, "A", tid(1), handle(&m)) {
            PushOutcome::Closed(msg) => assert_eq!(msg.mtype, "A"),
            PushOutcome::Delivered => panic!("delivered to closed queue"),
        }
    }

    #[test]
    fn close_drains_pending() {
        let m = shm();
        let q = InQueue::new();
        push(&q, "A", tid(1), handle(&m));
        push(&q, "B", tid(1), handle(&m));
        let drained = q.close_and_drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn delete_type_removes_only_that_type() {
        let m = shm();
        let q = InQueue::new();
        push(&q, "A", tid(1), handle(&m));
        push(&q, "B", tid(1), handle(&m));
        push(&q, "A", tid(1), handle(&m));
        let removed = q.delete_type("A");
        assert_eq!(removed.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.snapshot()[0].0, "B");
    }

    #[test]
    fn wait_times_out() {
        let q = InQueue::new();
        let woke = q.wait(Some(Instant::now() + Duration::from_millis(20)));
        assert!(!woke);
    }

    #[test]
    fn push_wakes_waiter() {
        let m = Arc::new(shm());
        let q = Arc::new(InQueue::new());
        let q2 = q.clone();
        let m2 = m.clone();
        let t = std::thread::spawn(move || {
            // Rendezvous: push only once the main thread is provably
            // blocked in wait(), so the wake must come from the push.
            while q2.waiters() == 0 {
                std::thread::yield_now();
            }
            q2.push(
                "A".into(),
                tid(1),
                m2.alloc(8, ShmTag::Message).unwrap(),
                3,
                0,
                None,
            );
        });
        let woke = q.wait(Some(Instant::now() + Duration::from_secs(5)));
        assert!(woke);
        t.join().unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interrupt_wakes_without_message() {
        let q = Arc::new(InQueue::new());
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            while q2.waiters() == 0 {
                std::thread::yield_now();
            }
            q2.interrupt();
        });
        let woke = q.wait(Some(Instant::now() + Duration::from_secs(5)));
        assert!(woke);
        assert!(q.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn waiters_counts_blocked_threads() {
        let q = Arc::new(InQueue::new());
        assert_eq!(q.waiters(), 0);
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.wait(Some(Instant::now() + Duration::from_secs(5))));
        while q.waiters() == 0 {
            std::thread::yield_now();
        }
        q.interrupt();
        assert!(t.join().unwrap());
        assert_eq!(q.waiters(), 0);
    }

    #[test]
    fn snapshot_reports_bytes() {
        let m = shm();
        let q = InQueue::new();
        q.push(
            "A".into(),
            tid(9),
            m.alloc(24, ShmTag::Message).unwrap(),
            3,
            0,
            None,
        );
        let snap = q.snapshot();
        assert_eq!(snap, vec![("A".to_string(), tid(9), 24)]);
    }
}
