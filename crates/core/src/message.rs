//! Asynchronous message passing: stored messages and per-task in-queues.
//!
//! "Message communication is asynchronous. Messages are queued in an
//! in-queue for the receiver in order of arrival. The receiving task
//! determines when, if ever, a particular message is 'accepted'."
//! (paper, Section 6)
//!
//! Message storage lives in shared memory: "Messages consist of a header
//! and a list of packets containing the arguments. Since a message may
//! remain in a task's in-queue indefinitely, this area is maintained as a
//! heap with explicit allocation/deallocation as messages are sent and
//! accepted." (Section 11) A [`StoredMessage`] therefore carries a
//! [`ShmHandle`] to its packet words; the words are only decoded back into
//! [`Value`]s — and the block freed — when the message is accepted (or
//! deleted).
//!
//! The queue implementation itself is selectable: [`InQueue`] is a thin
//! facade over one of the [`crate::msgqueue`] backends (mutex reference,
//! lock-free MPSC, or point-to-point SPSC ring), chosen per machine via
//! `MachineConfig::builder().msg_backend(...)`.

use crate::error::{PiscesError, Result};
use crate::msgqueue::{MpscQueue, MsgBackend, MsgQueue, MutexQueue, SpscQueue, Take};
use crate::taskid::TaskId;
use crate::value::Value;
use crate::window::Window;
use pisces_substrate::shmem::ShmHandle;
use std::time::Instant;

pub use crate::msgqueue::PushOutcome;

/// A message as delivered to user code by ACCEPT: decoded arguments plus
/// the sender's taskid ("whenever a task receives a message from another
/// task, the taskid of the sender is included as part of the message").
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The message type name.
    pub mtype: String,
    /// Taskid of the sender.
    pub sender: TaskId,
    /// Decoded argument list.
    pub args: Vec<Value>,
}

impl Message {
    /// Decode a bulk window transfer built by
    /// [`crate::context::TaskCtx::window_send`]: the first argument is
    /// the sender's window descriptor, the second the dense row-major
    /// payload.
    pub fn window_payload(&self) -> Result<(&Window, &[f64])> {
        let missing = |what: &str| PiscesError::ArgMismatch {
            expected: format!("window transfer ({what})"),
            got: format!("{} argument(s)", self.args.len()),
        };
        let w = self
            .args
            .first()
            .ok_or_else(|| missing("WINDOW descriptor"))?
            .as_window()?;
        let data = self
            .args
            .get(1)
            .ok_or_else(|| missing("REAL array payload"))?
            .as_real_array()?;
        Ok((w, data))
    }
}

/// A message at rest in an in-queue: metadata plus the shared-memory block
/// holding the encoded packets.
#[derive(Debug)]
pub struct StoredMessage {
    /// The message type name.
    pub mtype: String,
    /// Taskid of the sender.
    pub sender: TaskId,
    /// Packet words in shared memory (header + arguments).
    pub handle: ShmHandle,
    /// Arrival sequence within the receiving queue.
    pub arrival: u64,
    /// PE whose clock stamped `sent_ticks`.
    pub sent_pe: u16,
    /// Sender's clock reading when the message was sent. The accept side
    /// subtracts this from its own clock to sample send→accept latency;
    /// PE clocks are unsynchronized, so cross-PE samples are approximate.
    pub sent_ticks: u64,
    /// Trace seq of the MSG-SEND (or MSG-DUP/FAULT-NOTICE) event that put
    /// this message in flight, if tracing recorded one. The accept side
    /// cites it as the `cause` of its MSG-ACCEPT event, closing the
    /// send→accept edge of the happens-before graph.
    pub cause: Option<u64>,
}

/// A task's in-queue. Arrival order is preserved; acceptance may be
/// selective by message type, which is why removal scans rather than
/// pops. Backed by a selectable [`MsgQueue`] implementation.
#[derive(Debug)]
pub struct InQueue {
    q: Box<dyn MsgQueue>,
}

impl Default for InQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl InQueue {
    /// An open, empty queue on the reference (mutex) backend.
    pub fn new() -> Self {
        Self::with_backend(MsgBackend::Mutex)
    }

    /// An open, empty queue on the given backend.
    pub fn with_backend(backend: MsgBackend) -> Self {
        let q: Box<dyn MsgQueue> = match backend {
            MsgBackend::Mutex => Box::new(MutexQueue::new()),
            MsgBackend::Mpsc => Box::new(MpscQueue::new()),
            MsgBackend::Spsc => Box::new(SpscQueue::new()),
        };
        InQueue { q }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> MsgBackend {
        self.q.backend()
    }

    /// Enqueue a message (assigning its arrival number) and wake waiters.
    /// `sent_pe`/`sent_ticks` carry the sender's clock reading for
    /// latency measurement on the accept side; `cause` carries the trace
    /// seq of the send event for the happens-before graph.
    pub fn push(
        &self,
        mtype: String,
        sender: TaskId,
        handle: ShmHandle,
        sent_pe: u16,
        sent_ticks: u64,
        cause: Option<u64>,
    ) -> PushOutcome {
        self.q.push(mtype, sender, handle, sent_pe, sent_ticks, cause)
    }

    /// Remove and return the earliest message for which `want` returns
    /// true, or `None` if none matches.
    pub fn take_first_matching(
        &self,
        mut want: impl FnMut(&StoredMessage) -> bool,
    ) -> Option<StoredMessage> {
        self.q.take_first_matching(&mut want).msg
    }

    /// Like [`Self::take_first_matching`], but also reports how many
    /// queued messages the selective scan examined (the
    /// `queue_scan_depth` histogram sample).
    pub fn take_scanned(&self, mut want: impl FnMut(&StoredMessage) -> bool) -> Take {
        self.q.take_first_matching(&mut want)
    }

    /// Current signal epoch. Read this **before** scanning the queue,
    /// then pass it to [`Self::wait_epoch`]: a push that lands between
    /// the scan and the wait bumps the epoch, so the wait returns
    /// immediately instead of stranding the acceptor.
    pub fn epoch(&self) -> u64 {
        self.q.epoch()
    }

    /// Block until the queue is signalled past `seen` (a push, an
    /// interrupt, or queue closure), or until `deadline` passes.
    /// Returns `false` on timeout.
    ///
    /// Callers re-scan the queue after every wake; this method makes no
    /// promise that a matching message is present.
    pub fn wait_epoch(&self, seen: u64, deadline: Option<Instant>) -> bool {
        self.q.wait_epoch(seen, deadline)
    }

    /// Block until the queue is signalled, or until `deadline` passes.
    /// Returns `false` on timeout. Equivalent to reading the epoch and
    /// waiting on it immediately — prefer [`Self::epoch`] +
    /// [`Self::wait_epoch`] around a scan to avoid the scan/wait race.
    pub fn wait(&self, deadline: Option<Instant>) -> bool {
        self.q.wait_epoch(self.q.epoch(), deadline)
    }

    /// Number of threads currently blocked in [`Self::wait`] /
    /// [`Self::wait_epoch`]. Lets tests (and shutdown diagnostics)
    /// rendezvous with a waiter deterministically instead of sleeping
    /// and hoping.
    pub fn waiters(&self) -> usize {
        self.q.waiters()
    }

    /// Wake all waiters without enqueueing (used to deliver kill requests
    /// and machine shutdown to tasks blocked in ACCEPT).
    pub fn interrupt(&self) {
        self.q.interrupt();
    }

    /// Close the queue (task terminating) and drain everything still
    /// queued so the caller can release the shared-memory blocks.
    pub fn close_and_drain(&self) -> Vec<StoredMessage> {
        self.q.close_and_drain()
    }

    /// Remove all messages of a given type (execution-environment menu
    /// option 4, DELETE MESSAGES), returning them for block release.
    pub fn delete_type(&self, mtype: &str) -> Vec<StoredMessage> {
        self.q.delete_type(mtype)
    }

    /// Number of messages waiting.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display snapshot for the execution environment (menu option 6,
    /// DISPLAY MESSAGE QUEUE): (type, sender, packet bytes) in arrival
    /// order.
    pub fn snapshot(&self) -> Vec<(String, TaskId, usize)> {
        self.q.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisces_substrate::shmem::{SharedMemory, ShmTag};
    use std::sync::Arc;
    use std::time::Duration;

    fn shm() -> SharedMemory {
        SharedMemory::with_capacity(65536)
    }

    fn tid(n: u32) -> TaskId {
        TaskId::new(1, 1, n)
    }

    fn handle(m: &SharedMemory) -> ShmHandle {
        m.alloc(16, ShmTag::Message).unwrap()
    }

    fn push(q: &InQueue, mtype: &str, sender: TaskId, handle: ShmHandle) -> PushOutcome {
        q.push(mtype.into(), sender, handle, 3, 0, None)
    }

    /// Run a semantics check against every backend: the whole point of
    /// the trait is that these are indistinguishable through the API.
    fn each_backend(f: impl Fn(InQueue)) {
        for b in MsgBackend::ALL {
            f(InQueue::with_backend(b));
        }
    }

    #[test]
    fn default_backend_is_mutex() {
        assert_eq!(InQueue::new().backend(), MsgBackend::Mutex);
    }

    #[test]
    fn push_take_in_arrival_order() {
        each_backend(|q| {
            let m = shm();
            push(&q, "A", tid(1), handle(&m));
            push(&q, "B", tid(2), handle(&m));
            push(&q, "A", tid(3), handle(&m));
            let first_a = q.take_first_matching(|s| s.mtype == "A").unwrap();
            assert_eq!(first_a.sender, tid(1));
            let next_a = q.take_first_matching(|s| s.mtype == "A").unwrap();
            assert_eq!(next_a.sender, tid(3));
            assert!(q.take_first_matching(|s| s.mtype == "A").is_none());
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn take_scanned_counts_examined_messages() {
        each_backend(|q| {
            let m = shm();
            push(&q, "A", tid(1), handle(&m));
            push(&q, "B", tid(1), handle(&m));
            push(&q, "C", tid(1), handle(&m));
            let t = q.take_scanned(|s| s.mtype == "C");
            assert_eq!(t.msg.unwrap().mtype, "C");
            assert_eq!(t.scanned, 3);
            let miss = q.take_scanned(|s| s.mtype == "Z");
            assert!(miss.msg.is_none());
            assert_eq!(miss.scanned, 2);
        });
    }

    #[test]
    fn arrival_numbers_increase() {
        each_backend(|q| {
            let m = shm();
            push(&q, "A", tid(1), handle(&m));
            push(&q, "A", tid(1), handle(&m));
            let a = q.take_first_matching(|_| true).unwrap();
            let b = q.take_first_matching(|_| true).unwrap();
            assert!(a.arrival < b.arrival);
        });
    }

    #[test]
    fn closed_queue_returns_message() {
        each_backend(|q| {
            let m = shm();
            q.close_and_drain();
            match push(&q, "A", tid(1), handle(&m)) {
                PushOutcome::Closed(msg) => assert_eq!(msg.mtype, "A"),
                PushOutcome::Delivered => panic!("delivered to closed queue"),
            }
        });
    }

    #[test]
    fn close_drains_pending() {
        each_backend(|q| {
            let m = shm();
            push(&q, "A", tid(1), handle(&m));
            push(&q, "B", tid(1), handle(&m));
            let drained = q.close_and_drain();
            assert_eq!(drained.len(), 2);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn delete_type_removes_only_that_type() {
        each_backend(|q| {
            let m = shm();
            push(&q, "A", tid(1), handle(&m));
            push(&q, "B", tid(1), handle(&m));
            push(&q, "A", tid(1), handle(&m));
            let removed = q.delete_type("A");
            assert_eq!(removed.len(), 2);
            assert_eq!(q.len(), 1);
            assert_eq!(q.snapshot()[0].0, "B");
        });
    }

    #[test]
    fn wait_times_out() {
        each_backend(|q| {
            let woke = q.wait(Some(Instant::now() + Duration::from_millis(20)));
            assert!(!woke);
        });
    }

    #[test]
    fn push_wakes_waiter() {
        for b in MsgBackend::ALL {
            let m = Arc::new(shm());
            let q = Arc::new(InQueue::with_backend(b));
            let q2 = q.clone();
            let m2 = m.clone();
            let t = std::thread::spawn(move || {
                // Rendezvous: push only once the main thread is provably
                // blocked in wait(), so the wake must come from the push.
                while q2.waiters() == 0 {
                    std::thread::yield_now();
                }
                q2.push(
                    "A".into(),
                    tid(1),
                    m2.alloc(8, ShmTag::Message).unwrap(),
                    3,
                    0,
                    None,
                );
            });
            let woke = q.wait(Some(Instant::now() + Duration::from_secs(5)));
            assert!(woke, "backend {b}");
            t.join().unwrap();
            assert_eq!(q.len(), 1, "backend {b}");
        }
    }

    /// The scan→wait race the epoch API exists for: a message that
    /// arrives after the scan but before the wait must not strand the
    /// waiter.
    #[test]
    fn epoch_wait_sees_push_between_scan_and_wait() {
        each_backend(|q| {
            let m = shm();
            let seen = q.epoch();
            assert!(q.take_first_matching(|_| true).is_none());
            push(&q, "A", tid(1), handle(&m));
            // Must return immediately: the epoch moved at the push.
            let woke = q.wait_epoch(seen, Some(Instant::now() + Duration::from_secs(5)));
            assert!(woke);
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn interrupt_wakes_without_message() {
        for b in MsgBackend::ALL {
            let q = Arc::new(InQueue::with_backend(b));
            let q2 = q.clone();
            let t = std::thread::spawn(move || {
                while q2.waiters() == 0 {
                    std::thread::yield_now();
                }
                q2.interrupt();
            });
            let woke = q.wait(Some(Instant::now() + Duration::from_secs(5)));
            assert!(woke, "backend {b}");
            assert!(q.is_empty(), "backend {b}");
            t.join().unwrap();
        }
    }

    #[test]
    fn waiters_counts_blocked_threads() {
        for b in MsgBackend::ALL {
            let q = Arc::new(InQueue::with_backend(b));
            assert_eq!(q.waiters(), 0);
            let q2 = q.clone();
            let t =
                std::thread::spawn(move || q2.wait(Some(Instant::now() + Duration::from_secs(5))));
            while q.waiters() == 0 {
                std::thread::yield_now();
            }
            q.interrupt();
            assert!(t.join().unwrap(), "backend {b}");
            assert_eq!(q.waiters(), 0, "backend {b}");
        }
    }

    #[test]
    fn snapshot_reports_bytes() {
        each_backend(|q| {
            let m = shm();
            q.push(
                "A".into(),
                tid(9),
                m.alloc(24, ShmTag::Message).unwrap(),
                3,
                0,
                None,
            );
            let snap = q.snapshot();
            assert_eq!(snap, vec![("A".to_string(), tid(9), 24)]);
        });
    }

    /// Concurrent multi-producer stress: every message arrives exactly
    /// once and per-sender order is preserved, on every backend.
    #[test]
    fn concurrent_producers_preserve_per_sender_fifo() {
        const SENDERS: u32 = 4;
        const PER_SENDER: usize = 200;
        for b in MsgBackend::ALL {
            let m = Arc::new(shm());
            let q = Arc::new(InQueue::with_backend(b));
            let mut producers = Vec::new();
            for s in 0..SENDERS {
                let q2 = q.clone();
                let m2 = m.clone();
                producers.push(std::thread::spawn(move || {
                    for i in 0..PER_SENDER {
                        q2.push(
                            "M".into(),
                            tid(s),
                            m2.alloc(8, ShmTag::Message).unwrap(),
                            3,
                            i as u64, // per-sender sequence in sent_ticks
                            None,
                        );
                    }
                }));
            }
            let mut got: Vec<StoredMessage> = Vec::new();
            let mut deadline = Instant::now() + Duration::from_secs(30);
            while got.len() < SENDERS as usize * PER_SENDER {
                let seen = q.epoch();
                if let Some(msg) = q.take_first_matching(|_| true) {
                    got.push(msg);
                    deadline = Instant::now() + Duration::from_secs(30);
                    continue;
                }
                assert!(q.wait_epoch(seen, Some(deadline)), "backend {b}: stalled");
            }
            for p in producers {
                p.join().unwrap();
            }
            // Per-sender FIFO: sent_ticks (the per-sender seq) must be
            // increasing within each sender, and arrivals globally
            // consistent with delivery order.
            let mut last_seq = [0u64; SENDERS as usize];
            let mut first = [true; SENDERS as usize];
            for w in got.windows(2) {
                assert!(w[0].arrival < w[1].arrival, "backend {b}: arrival order");
            }
            for msg in &got {
                let s = msg.sender.unique as usize;
                if !first[s] {
                    assert!(
                        msg.sent_ticks > last_seq[s],
                        "backend {b}: sender {s} reordered"
                    );
                }
                first[s] = false;
                last_seq[s] = msg.sent_ticks;
            }
            assert!(q.is_empty(), "backend {b}");
        }
    }

    /// SPSC promotion: a solo sender claims the ring; a second sender
    /// demotes to the overflow path but nothing is lost or reordered.
    #[test]
    fn spsc_promotes_first_sender_and_survives_demotion() {
        let m = shm();
        let q = crate::msgqueue::SpscQueue::new();
        assert!(q.promoted_sender().is_none());
        for i in 0..10 {
            q.push("A".into(), tid(1), handle(&m), 3, i, None);
        }
        assert_eq!(q.promoted_sender(), Some(tid(1)));
        // Second sender appears: falls back to overflow, still delivered.
        q.push("B".into(), tid(2), handle(&m), 3, 0, None);
        q.push("A".into(), tid(1), handle(&m), 3, 10, None);
        assert_eq!(q.promoted_sender(), Some(tid(1)));
        assert_eq!(q.len(), 12);
        let mut seqs = Vec::new();
        let mut want_all = |_: &StoredMessage| true;
        while let Some(msg) = q.take_first_matching(&mut want_all).msg {
            if msg.sender == tid(1) {
                seqs.push(msg.sent_ticks);
            }
        }
        assert_eq!(seqs, (0..=10).collect::<Vec<_>>());
    }

    /// SPSC ring overflow (more than RING_CAP in flight) spills to the
    /// inbox without losing order.
    #[test]
    fn spsc_ring_overflow_spills_without_reorder() {
        let m = Arc::new(shm());
        let q = crate::msgqueue::SpscQueue::new();
        const N: u64 = 600; // > ring capacity
        for i in 0..N {
            q.push("A".into(), tid(1), m.alloc(8, ShmTag::Message).unwrap(), 3, i, None);
        }
        assert_eq!(q.len(), N as usize);
        let mut want_all = |_: &StoredMessage| true;
        let mut expect = 0u64;
        while let Some(msg) = q.take_first_matching(&mut want_all).msg {
            assert_eq!(msg.sent_ticks, expect);
            expect += 1;
        }
        assert_eq!(expect, N);
    }
}
