//! Execution tracing.
//!
//! "Monitoring and timing the execution of a portion of a parallel program
//! is simplified by a set of features for automatic tracing of significant
//! events during execution." (paper, Section 12)
//!
//! The eight traceable event types are exactly the paper's list: task
//! initiation, task termination, message send, message accept, lock a lock,
//! unlock a lock, enter a barrier, force split. Each trace line includes the
//! type of event, the taskid of the relevant task(s), a clock reading (PE
//! number and ticks count), and other relevant information. Tracing may be
//! turned on and off for each type of event and each task; output may go to
//! the screen (monitor execution visually) or to a file (off-line timing
//! analysis — see the `pisces-exec` crate).

use crate::taskid::TaskId;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The eight traceable event types of Section 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// Task initiation.
    TaskInit,
    /// Task termination.
    TaskTerm,
    /// Message send.
    MsgSend,
    /// Message accept.
    MsgAccept,
    /// Lock a lock.
    Lock,
    /// Unlock a lock.
    Unlock,
    /// Enter a barrier.
    Barrier,
    /// Force split.
    ForceSplit,
}

impl TraceEventKind {
    /// All eight kinds, in the paper's order.
    pub const ALL: [TraceEventKind; 8] = [
        TraceEventKind::TaskInit,
        TraceEventKind::TaskTerm,
        TraceEventKind::MsgSend,
        TraceEventKind::MsgAccept,
        TraceEventKind::Lock,
        TraceEventKind::Unlock,
        TraceEventKind::Barrier,
        TraceEventKind::ForceSplit,
    ];

    /// Stable label used in trace lines.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::TaskInit => "TASK-INIT",
            TraceEventKind::TaskTerm => "TASK-TERM",
            TraceEventKind::MsgSend => "MSG-SEND",
            TraceEventKind::MsgAccept => "MSG-ACCEPT",
            TraceEventKind::Lock => "LOCK",
            TraceEventKind::Unlock => "UNLOCK",
            TraceEventKind::Barrier => "BARRIER",
            TraceEventKind::ForceSplit => "FORCE-SPLIT",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).unwrap()
    }
}

/// One trace line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global sequence number (total order of emission).
    pub seq: u64,
    /// Type of event.
    pub kind: TraceEventKind,
    /// Taskid of the relevant task.
    pub task: TaskId,
    /// PE number of the clock reading.
    pub pe: u8,
    /// Tick count of that PE's clock.
    pub ticks: u64,
    /// Other relevant information for the event type (message type, lock
    /// name, force size, …).
    pub info: String,
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>6} {:<11} {:<12} pe{:02}@{:<8} {}",
            self.seq,
            self.kind.label(),
            self.task.to_string(),
            self.pe,
            self.ticks,
            self.info
        )
    }
}

/// Trace settings carried in a configuration: which event kinds start
/// enabled for the run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSettings {
    /// Event kinds enabled machine-wide at boot.
    pub enabled: Vec<TraceEventKind>,
    /// Mirror trace lines to the screen as they are emitted.
    pub to_screen: bool,
}

impl TraceSettings {
    /// Enable every event kind.
    pub fn all() -> Self {
        Self {
            enabled: TraceEventKind::ALL.to_vec(),
            to_screen: false,
        }
    }
}

/// The machine's tracer: per-kind global switches, per-task overrides, and
/// an in-memory record buffer.
#[derive(Debug)]
pub struct Tracer {
    global: [AtomicBool; 8],
    /// Per-task overrides: `Some(true/false)` wins over the global switch.
    per_task: RwLock<HashMap<TaskId, [Option<bool>; 8]>>,
    records: Mutex<Vec<TraceRecord>>,
    seq: AtomicU64,
    to_screen: AtomicBool,
}

impl Tracer {
    /// A tracer initialized from configuration settings.
    pub fn new(settings: &TraceSettings) -> Self {
        let t = Self {
            global: Default::default(),
            per_task: RwLock::new(HashMap::new()),
            records: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            to_screen: AtomicBool::new(settings.to_screen),
        };
        for &k in &settings.enabled {
            t.set_global(k, true);
        }
        t
    }

    /// Turn an event kind on or off machine-wide.
    pub fn set_global(&self, kind: TraceEventKind, on: bool) {
        self.global[kind.index()].store(on, Ordering::Relaxed);
    }

    /// Override an event kind for one task (menu option 9, per task).
    pub fn set_for_task(&self, task: TaskId, kind: TraceEventKind, on: bool) {
        self.per_task.write().entry(task).or_default()[kind.index()] = Some(on);
    }

    /// Drop all per-task overrides for a task (when its slot is reused).
    pub fn clear_task(&self, task: TaskId) {
        self.per_task.write().remove(&task);
    }

    /// Mirror trace lines to the screen?
    pub fn set_to_screen(&self, on: bool) {
        self.to_screen.store(on, Ordering::Relaxed);
    }

    /// Whether an event of this kind by this task would be recorded.
    pub fn is_enabled(&self, kind: TraceEventKind, task: TaskId) -> bool {
        if let Some(over) = self
            .per_task
            .read()
            .get(&task)
            .and_then(|o| o[kind.index()])
        {
            return over;
        }
        self.global[kind.index()].load(Ordering::Relaxed)
    }

    /// Emit a trace line (no-op unless enabled for this kind and task).
    pub fn emit(
        &self,
        kind: TraceEventKind,
        task: TaskId,
        pe: u8,
        ticks: u64,
        info: impl Into<String>,
    ) {
        if !self.is_enabled(kind, task) {
            return;
        }
        let rec = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            kind,
            task,
            pe,
            ticks,
            info: info.into(),
        };
        if self.to_screen.load(Ordering::Relaxed) {
            println!("{rec}");
        }
        self.records.lock().push(rec);
    }

    /// Snapshot of all records so far, in emission order.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut r = self.records.lock().clone();
        r.sort_by_key(|x| x.seq);
        r
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if no records were emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all records (menu-driven between measurement phases).
    pub fn clear(&self) {
        self.records.lock().clear();
    }

    /// Serialize all records as JSON lines — "sending trace output to a
    /// file allows the user to study trace information and make timing
    /// analyses off-line".
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for r in self.records() {
            s.push_str(&serde_json::to_string(&r).expect("trace records serialize"));
            s.push('\n');
        }
        s
    }

    /// Parse records back from JSON lines.
    pub fn parse_jsonl(data: &str) -> Result<Vec<TraceRecord>, serde_json::Error> {
        data.lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid() -> TaskId {
        TaskId::new(1, 1, 1)
    }

    #[test]
    fn disabled_by_default() {
        let t = Tracer::new(&TraceSettings::default());
        t.emit(TraceEventKind::MsgSend, tid(), 3, 10, "x");
        assert!(t.is_empty());
    }

    #[test]
    fn global_enable_records() {
        let t = Tracer::new(&TraceSettings::default());
        t.set_global(TraceEventKind::MsgSend, true);
        t.emit(TraceEventKind::MsgSend, tid(), 3, 10, "PING");
        t.emit(TraceEventKind::Lock, tid(), 3, 11, "L");
        let recs = t.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, TraceEventKind::MsgSend);
        assert_eq!(recs[0].info, "PING");
        assert_eq!(recs[0].pe, 3);
    }

    #[test]
    fn per_task_override_wins_both_ways() {
        let t = Tracer::new(&TraceSettings::all());
        let a = TaskId::new(1, 1, 1);
        let b = TaskId::new(1, 2, 1);
        t.set_for_task(a, TraceEventKind::Barrier, false);
        t.emit(TraceEventKind::Barrier, a, 3, 1, "");
        t.emit(TraceEventKind::Barrier, b, 3, 2, "");
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].task, b);

        // Off globally but on for one task.
        let t = Tracer::new(&TraceSettings::default());
        t.set_for_task(a, TraceEventKind::Lock, true);
        t.emit(TraceEventKind::Lock, a, 3, 1, "");
        t.emit(TraceEventKind::Lock, b, 3, 1, "");
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn clear_task_restores_global() {
        let t = Tracer::new(&TraceSettings::all());
        let a = tid();
        t.set_for_task(a, TraceEventKind::MsgSend, false);
        t.clear_task(a);
        t.emit(TraceEventKind::MsgSend, a, 3, 1, "");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sequence_numbers_total_order() {
        let t = Tracer::new(&TraceSettings::all());
        for i in 0..5 {
            t.emit(TraceEventKind::TaskInit, tid(), 3, i, "");
        }
        let seqs: Vec<_> = t.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = Tracer::new(&TraceSettings::all());
        t.emit(TraceEventKind::ForceSplit, tid(), 5, 77, "size=10");
        t.emit(TraceEventKind::TaskTerm, tid(), 5, 99, "ok");
        let txt = t.to_jsonl();
        let back = Tracer::parse_jsonl(&txt).unwrap();
        assert_eq!(back, t.records());
    }

    #[test]
    fn display_contains_fields() {
        let r = TraceRecord {
            seq: 1,
            kind: TraceEventKind::Lock,
            task: tid(),
            pe: 4,
            ticks: 123,
            info: "LVAR".into(),
        };
        let s = r.to_string();
        assert!(s.contains("LOCK") && s.contains("pe04") && s.contains("LVAR"));
    }

    #[test]
    fn all_eight_kinds_present() {
        assert_eq!(TraceEventKind::ALL.len(), 8);
        let labels: std::collections::BTreeSet<_> =
            TraceEventKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
