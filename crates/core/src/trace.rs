//! Execution tracing.
//!
//! "Monitoring and timing the execution of a portion of a parallel program
//! is simplified by a set of features for automatic tracing of significant
//! events during execution." (paper, Section 12)
//!
//! The eight traceable event types are exactly the paper's list: task
//! initiation, task termination, message send, message accept, lock a lock,
//! unlock a lock, enter a barrier, force split. Each trace line includes the
//! type of event, the taskid of the relevant task(s), a clock reading (PE
//! number and ticks count), and other relevant information. Tracing may be
//! turned on and off for each type of event and each task; output may go to
//! the screen (monitor execution visually) or to a file (off-line timing
//! analysis — see the `pisces-exec` crate).
//!
//! ## Architecture
//!
//! The emit path is built for always-on tracing under heavy traffic:
//!
//! * **Per-PE sharded ring buffers.** Each PE's events land in that PE's
//!   own bounded ring ([`MemorySink`]), so concurrently emitting PEs never
//!   contend on one global lock. A global atomic `seq` still stamps every
//!   record, so the shards merge back into a total order on read. Rings
//!   are bounded ([`TraceSettings::ring_capacity`] records per PE); when a
//!   ring is full the oldest record is evicted and a dropped-records
//!   counter is bumped — memory cannot grow without bound.
//! * **Pluggable sinks.** A [`TraceSink`] receives every record as it is
//!   emitted. [`FileSink`] streams JSONL to disk so long runs need not
//!   accumulate records in RAM; [`ScreenSink`] mirrors records to the
//!   terminal from a dedicated thread behind a bounded queue, so a slow
//!   terminal can never stall an emitting PE (excess screen lines are
//!   dropped and counted, never waited for).

use crate::taskid::TaskId;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of traceable event kinds: the paper's eight plus the fault and
/// recovery kinds added by the chaos subsystem, the bulk-transfer kind
/// added by the window-transfer engine, the force/barrier episode
/// kinds added by the causal-tracing layer, and the job-lifecycle and
/// SLO-alert kinds added by the service observability layer.
pub const NUM_KINDS: usize = 23;

/// The traceable event types: the eight of Section 12 plus fault-injection
/// and recovery events (PE failures, link faults, send retries, fault
/// notices, force shrinks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// Task initiation.
    TaskInit,
    /// Task termination.
    TaskTerm,
    /// Message send.
    MsgSend,
    /// Message accept.
    MsgAccept,
    /// Lock a lock.
    Lock,
    /// Unlock a lock.
    Unlock,
    /// Enter a barrier.
    Barrier,
    /// Force split.
    ForceSplit,
    /// A PE fail-stopped (injected fault).
    PeFail,
    /// A PE was slowed by an injected fault.
    PeSlow,
    /// A shared-memory allocation was failed by an injected fault.
    AllocFault,
    /// A message was dropped on the link (injected fault).
    MsgDrop,
    /// A message was duplicated on the link (injected fault).
    MsgDup,
    /// A message was delayed on the link (injected fault).
    MsgDelay,
    /// A send to a failed PE was retried (recovery).
    MsgRetry,
    /// A fault notice was delivered to a sender in place of a failed
    /// delivery (recovery).
    FaultNotice,
    /// A force shrank to its surviving members after a PE failure
    /// (recovery).
    ForceShrink,
    /// A bulk window transfer (batched gather/scatter/move) moved a whole
    /// subregion in one operation.
    BulkTransfer,
    /// A force member started or finished its body (causal edges
    /// split→member-start and member-end→join).
    ForceMember,
    /// The force primary rejoined after every member finished.
    ForceJoin,
    /// A barrier released: the last arrival flipped the generation and
    /// freed every waiting member (causal edge arrive→release).
    BarrierRelease,
    /// A job-service lifecycle transition (submit, admitted, rejected,
    /// queued, scheduled, running, done, failed, drained). The span id is
    /// the job id carried in `info` as `job=<id>`; successive events of
    /// one job chain through `parent`.
    JobLifecycle,
    /// A per-tenant SLO burn-rate alert fired or cleared.
    SloAlert,
}

impl TraceEventKind {
    /// All kinds: the paper's eight in its order, then the fault kinds.
    pub const ALL: [TraceEventKind; NUM_KINDS] = [
        TraceEventKind::TaskInit,
        TraceEventKind::TaskTerm,
        TraceEventKind::MsgSend,
        TraceEventKind::MsgAccept,
        TraceEventKind::Lock,
        TraceEventKind::Unlock,
        TraceEventKind::Barrier,
        TraceEventKind::ForceSplit,
        TraceEventKind::PeFail,
        TraceEventKind::PeSlow,
        TraceEventKind::AllocFault,
        TraceEventKind::MsgDrop,
        TraceEventKind::MsgDup,
        TraceEventKind::MsgDelay,
        TraceEventKind::MsgRetry,
        TraceEventKind::FaultNotice,
        TraceEventKind::ForceShrink,
        TraceEventKind::BulkTransfer,
        TraceEventKind::ForceMember,
        TraceEventKind::ForceJoin,
        TraceEventKind::BarrierRelease,
        TraceEventKind::JobLifecycle,
        TraceEventKind::SloAlert,
    ];

    /// The paper's original eight event types (Section 12).
    pub const PAPER_KINDS: usize = 8;

    /// Stable label used in trace lines.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::TaskInit => "TASK-INIT",
            TraceEventKind::TaskTerm => "TASK-TERM",
            TraceEventKind::MsgSend => "MSG-SEND",
            TraceEventKind::MsgAccept => "MSG-ACCEPT",
            TraceEventKind::Lock => "LOCK",
            TraceEventKind::Unlock => "UNLOCK",
            TraceEventKind::Barrier => "BARRIER",
            TraceEventKind::ForceSplit => "FORCE-SPLIT",
            TraceEventKind::PeFail => "PE-FAIL",
            TraceEventKind::PeSlow => "PE-SLOW",
            TraceEventKind::AllocFault => "ALLOC-FAULT",
            TraceEventKind::MsgDrop => "MSG-DROP",
            TraceEventKind::MsgDup => "MSG-DUP",
            TraceEventKind::MsgDelay => "MSG-DELAY",
            TraceEventKind::MsgRetry => "MSG-RETRY",
            TraceEventKind::FaultNotice => "FAULT-NOTICE",
            TraceEventKind::ForceShrink => "FORCE-SHRINK",
            TraceEventKind::BulkTransfer => "BULK-XFER",
            TraceEventKind::ForceMember => "FORCE-MEMBER",
            TraceEventKind::ForceJoin => "FORCE-JOIN",
            TraceEventKind::BarrierRelease => "BARRIER-REL",
            TraceEventKind::JobLifecycle => "JOB$",
            TraceEventKind::SloAlert => "ALERT$",
        }
    }

    /// Position in [`Self::ALL`]. A direct match: this sits on the emit
    /// hot path of every event kind.
    #[inline]
    fn index(self) -> usize {
        match self {
            TraceEventKind::TaskInit => 0,
            TraceEventKind::TaskTerm => 1,
            TraceEventKind::MsgSend => 2,
            TraceEventKind::MsgAccept => 3,
            TraceEventKind::Lock => 4,
            TraceEventKind::Unlock => 5,
            TraceEventKind::Barrier => 6,
            TraceEventKind::ForceSplit => 7,
            TraceEventKind::PeFail => 8,
            TraceEventKind::PeSlow => 9,
            TraceEventKind::AllocFault => 10,
            TraceEventKind::MsgDrop => 11,
            TraceEventKind::MsgDup => 12,
            TraceEventKind::MsgDelay => 13,
            TraceEventKind::MsgRetry => 14,
            TraceEventKind::FaultNotice => 15,
            TraceEventKind::ForceShrink => 16,
            TraceEventKind::BulkTransfer => 17,
            TraceEventKind::ForceMember => 18,
            TraceEventKind::ForceJoin => 19,
            TraceEventKind::BarrierRelease => 20,
            TraceEventKind::JobLifecycle => 21,
            TraceEventKind::SloAlert => 22,
        }
    }
}

/// One trace line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global sequence number (total order of emission).
    pub seq: u64,
    /// Type of event.
    pub kind: TraceEventKind,
    /// Taskid of the relevant task.
    pub task: TaskId,
    /// PE number of the clock reading.
    pub pe: u16,
    /// Tick count of that PE's clock.
    pub ticks: u64,
    /// Other relevant information for the event type (message type, lock
    /// name, force size, …).
    pub info: String,
    /// Seq of the event that precedes this one in the same activity
    /// (program-order edge: a task's previous lifecycle event, a force
    /// member's start, a transfer's posting). `None` when unknown.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent: Option<u64>,
    /// Seq of the event on *another* task that enabled this one
    /// (cross-task happens-before edge: the send an accept consumed, the
    /// straggler arrival that released a barrier). `None` when unknown.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cause: Option<u64>,
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>6} {:<11} {:<12} pe{:02}@{:<8} {}",
            self.seq,
            self.kind.label(),
            self.task.to_string(),
            self.pe,
            self.ticks,
            self.info
        )?;
        if let Some(p) = self.parent {
            write!(f, " parent=#{p}")?;
        }
        if let Some(c) = self.cause {
            write!(f, " cause=#{c}")?;
        }
        Ok(())
    }
}

/// Default per-PE ring capacity (records) when the configuration does not
/// specify one.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Shards in the in-memory trace ring (PEs map onto shards by number
/// modulo this, so the sink's footprint is independent of machine size).
pub const TRACE_SHARDS: usize = 32;

fn default_ring_capacity() -> usize {
    DEFAULT_RING_CAPACITY
}

/// Trace settings carried in a configuration: which event kinds start
/// enabled for the run, where records go, and how much memory the
/// in-memory rings may hold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSettings {
    /// Event kinds enabled machine-wide at boot.
    #[serde(default)]
    pub enabled: Vec<TraceEventKind>,
    /// Mirror trace lines to the screen as they are emitted.
    #[serde(default)]
    pub to_screen: bool,
    /// Bounded capacity (records) of each PE's in-memory ring buffer.
    #[serde(default = "default_ring_capacity")]
    pub ring_capacity: usize,
    /// Stream records as JSONL to this file ("sending trace output to a
    /// file allows the user to study trace information … off-line").
    #[serde(default)]
    pub file: Option<String>,
}

impl Default for TraceSettings {
    fn default() -> Self {
        Self {
            enabled: Vec::new(),
            to_screen: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            file: None,
        }
    }
}

impl TraceSettings {
    /// Enable every event kind.
    pub fn all() -> Self {
        Self {
            enabled: TraceEventKind::ALL.to_vec(),
            ..Self::default()
        }
    }
}

// ----------------------------------------------------------------------
// Sinks
// ----------------------------------------------------------------------

/// Destination for emitted trace records.
///
/// `record` is called on the emitting PE's thread and must never block on
/// a slow consumer: a sink that cannot keep up drops records and counts
/// them instead of stalling the machine.
pub trait TraceSink: Send + Sync {
    /// Short name for displays ("memory", "file", "screen", …).
    fn name(&self) -> &'static str;
    /// Consume one record.
    fn record(&self, rec: &TraceRecord);
    /// Flush anything buffered (end of run, before off-line analysis).
    fn flush(&self) {}
    /// Records this sink has dropped (ring eviction, full queue, I/O
    /// errors).
    fn dropped(&self) -> u64 {
        0
    }
}

#[derive(Debug, Default)]
struct Shard {
    ring: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
}

/// In-memory sink: one bounded ring buffer per PE, merged by `seq` on
/// read. This is the tracer's default store and what [`Tracer::records`]
/// reads back.
#[derive(Debug)]
pub struct MemorySink {
    shards: Vec<Shard>,
    capacity: usize,
}

impl MemorySink {
    /// A sink with one ring of `capacity` records per PE.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            // A fixed shard pool indexed by PE number modulo the pool
            // size: contention stays bounded however many PEs the
            // substrate has, and a given PE always hashes to the same
            // shard so per-PE emission order is preserved.
            shards: (0..TRACE_SHARDS).map(|_| Shard::default()).collect(),
            capacity,
        }
    }

    fn shard(&self, pe: u16) -> &Shard {
        &self.shards[pe as usize % self.shards.len()]
    }

    /// Ring capacity per PE.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All retained records, merged across shards in `seq` order.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.ring.lock().iter().cloned());
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.ring.lock().len()).sum()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all retained records (drop counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            s.ring.lock().clear();
        }
    }
}

impl TraceSink for MemorySink {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn record(&self, rec: &TraceRecord) {
        let shard = self.shard(rec.pe);
        let mut ring = shard.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            shard.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec.clone());
    }

    fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }
}

/// How many serialized lines the file sink holds back to re-sort racing
/// emissions. A record's `seq` is assigned *before* the sink write, so two
/// PEs can reach the sink in the opposite order of their seqs; holding a
/// window of lines and always writing the smallest pending seq restores
/// monotone order without buffering the whole run in RAM.
const FILE_REORDER_WINDOW: usize = 4096;

/// A serialized trace line waiting in the file sink's reorder window,
/// min-ordered by `seq`.
struct PendingLine {
    seq: u64,
    line: String,
}

impl PartialEq for PendingLine {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for PendingLine {}
impl PartialOrd for PendingLine {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingLine {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the smallest seq on top.
        other.seq.cmp(&self.seq)
    }
}

struct FileSinkInner {
    w: std::io::BufWriter<std::fs::File>,
    pending: std::collections::BinaryHeap<PendingLine>,
}

/// Streaming JSONL file sink: one record per line, buffered writes. Long
/// runs can trace every event to disk without accumulating records in
/// RAM: only a bounded reorder window ([`FILE_REORDER_WINDOW`] lines) is
/// held back so lines leave the sink in monotone `seq` order even when
/// emitting PEs race between seq assignment and the sink call.
pub struct FileSink {
    path: String,
    inner: Mutex<FileSinkInner>,
    written: AtomicU64,
    errors: AtomicU64,
}

impl FileSink {
    /// Create (truncating) the trace file.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self {
            path: path.to_string(),
            inner: Mutex::new(FileSinkInner {
                w: std::io::BufWriter::new(f),
                pending: std::collections::BinaryHeap::new(),
            }),
            written: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The file being written.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Records successfully serialized and handed to the writer.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Write one line, counting success and failure.
    fn write_line(&self, w: &mut std::io::BufWriter<std::fs::File>, line: &str) {
        if writeln!(w, "{line}").is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.written.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl TraceSink for FileSink {
    fn name(&self) -> &'static str {
        "file"
    }

    fn record(&self, rec: &TraceRecord) {
        let line = match serde_json::to_string(rec) {
            Ok(l) => l,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut inner = self.inner.lock();
        inner.pending.push(PendingLine { seq: rec.seq, line });
        while inner.pending.len() > FILE_REORDER_WINDOW {
            let next = inner.pending.pop().expect("non-empty reorder window");
            let FileSinkInner { w, .. } = &mut *inner;
            self.write_line(w, &next.line);
        }
    }

    fn flush(&self) {
        let mut inner = self.inner.lock();
        while let Some(next) = inner.pending.pop() {
            let FileSinkInner { w, .. } = &mut *inner;
            self.write_line(w, &next.line);
        }
        let _ = inner.w.flush();
    }

    fn dropped(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

/// Bounded depth of the screen sink's line queue.
const SCREEN_QUEUE_DEPTH: usize = 1024;

/// Screen sink: trace lines are formatted on the emitting thread but
/// printed from a dedicated thread behind a bounded queue, so a slow
/// terminal cannot stall a PE. When the queue is full the line is dropped
/// and counted — never waited for.
pub struct ScreenSink {
    tx: std::sync::mpsc::SyncSender<String>,
    dropped: AtomicU64,
}

impl ScreenSink {
    /// Start the printer thread and return the sink.
    pub fn spawn() -> Arc<Self> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<String>(SCREEN_QUEUE_DEPTH);
        // The thread exits when every sender is gone (tracer dropped).
        let _ = std::thread::Builder::new()
            .name("pisces-trace-screen".into())
            .spawn(move || {
                for line in rx {
                    println!("{line}");
                }
            });
        Arc::new(Self {
            tx,
            dropped: AtomicU64::new(0),
        })
    }
}

impl TraceSink for ScreenSink {
    fn name(&self) -> &'static str {
        "screen"
    }

    fn record(&self, rec: &TraceRecord) {
        if self.tx.try_send(rec.to_string()).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ----------------------------------------------------------------------
// The tracer
// ----------------------------------------------------------------------

/// The machine's tracer: per-kind global switches, per-task overrides,
/// per-PE sharded ring buffers, and pluggable sinks.
pub struct Tracer {
    global: [AtomicBool; NUM_KINDS],
    /// Per-task overrides: `Some(true/false)` wins over the global switch.
    per_task: RwLock<HashMap<TaskId, [Option<bool>; NUM_KINDS]>>,
    /// Fast path: skip the override map entirely while it is empty (it
    /// almost always is; `clear_task` runs at every task termination).
    has_overrides: AtomicBool,
    memory: MemorySink,
    sinks: RwLock<Vec<Arc<dyn TraceSink>>>,
    has_sinks: AtomicBool,
    screen: Mutex<Option<Arc<ScreenSink>>>,
    to_screen: AtomicBool,
    seq: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("records", &self.memory.len())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer initialized from configuration settings. (A file sink for
    /// [`TraceSettings::file`] is attached by the machine at boot, where
    /// the I/O error can be reported.)
    pub fn new(settings: &TraceSettings) -> Self {
        let t = Self {
            global: Default::default(),
            per_task: RwLock::new(HashMap::new()),
            has_overrides: AtomicBool::new(false),
            memory: MemorySink::new(settings.ring_capacity),
            sinks: RwLock::new(Vec::new()),
            has_sinks: AtomicBool::new(false),
            screen: Mutex::new(None),
            to_screen: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        };
        for &k in &settings.enabled {
            t.set_global(k, true);
        }
        if settings.to_screen {
            t.set_to_screen(true);
        }
        t
    }

    /// Turn an event kind on or off machine-wide.
    pub fn set_global(&self, kind: TraceEventKind, on: bool) {
        self.global[kind.index()].store(on, Ordering::Relaxed);
    }

    /// Override an event kind for one task (menu option 9, per task).
    pub fn set_for_task(&self, task: TaskId, kind: TraceEventKind, on: bool) {
        self.per_task.write().entry(task).or_default()[kind.index()] = Some(on);
        self.has_overrides.store(true, Ordering::Release);
    }

    /// Drop all per-task overrides for a task (when its slot is reused).
    pub fn clear_task(&self, task: TaskId) {
        if !self.has_overrides.load(Ordering::Acquire) {
            return;
        }
        let mut map = self.per_task.write();
        map.remove(&task);
        if map.is_empty() {
            self.has_overrides.store(false, Ordering::Release);
        }
    }

    /// Mirror trace lines to the screen? (The screen printer thread is
    /// started lazily on first enable.)
    pub fn set_to_screen(&self, on: bool) {
        if on {
            let mut screen = self.screen.lock();
            if screen.is_none() {
                *screen = Some(ScreenSink::spawn());
            }
        }
        self.to_screen.store(on, Ordering::Relaxed);
    }

    /// Attach an additional sink (file, collector, test probe, …).
    pub fn add_sink(&self, sink: Arc<dyn TraceSink>) {
        self.sinks.write().push(sink);
        self.has_sinks.store(true, Ordering::Release);
    }

    /// Whether an event of this kind by this task would be recorded.
    pub fn is_enabled(&self, kind: TraceEventKind, task: TaskId) -> bool {
        if self.has_overrides.load(Ordering::Acquire) {
            if let Some(over) = self
                .per_task
                .read()
                .get(&task)
                .and_then(|o| o[kind.index()])
            {
                return over;
            }
        }
        self.global[kind.index()].load(Ordering::Relaxed)
    }

    /// Emit a trace line (no-op unless enabled for this kind and task).
    ///
    /// Hot path: one atomic for the sequence number plus one lock on the
    /// emitting PE's own ring shard — PEs never contend with each other.
    pub fn emit(
        &self,
        kind: TraceEventKind,
        task: TaskId,
        pe: u16,
        ticks: u64,
        info: impl Into<String>,
    ) {
        self.emit_causal(kind, task, pe, ticks, info, None, None);
    }

    /// Emit a trace line carrying causal edges, returning the assigned
    /// sequence number so callers can thread it into downstream events
    /// (`None` when the kind is disabled and nothing was recorded).
    ///
    /// `parent` is the preceding event of the same activity; `cause` is
    /// the event on another task that enabled this one.
    pub fn emit_causal(
        &self,
        kind: TraceEventKind,
        task: TaskId,
        pe: u16,
        ticks: u64,
        info: impl Into<String>,
        parent: Option<u64>,
        cause: Option<u64>,
    ) -> Option<u64> {
        if !self.is_enabled(kind, task) {
            return None;
        }
        let rec = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            kind,
            task,
            pe,
            ticks,
            info: info.into(),
            parent,
            cause,
        };
        self.memory.record(&rec);
        if self.to_screen.load(Ordering::Relaxed) {
            let screen = self.screen.lock().clone();
            if let Some(s) = screen {
                s.record(&rec);
            }
        }
        if self.has_sinks.load(Ordering::Acquire) {
            for s in self.sinks.read().iter() {
                s.record(&rec);
            }
        }
        Some(rec.seq)
    }

    /// Snapshot of all retained records, in emission order. (Records
    /// evicted from a full ring are gone — see [`Tracer::dropped`].)
    pub fn records(&self) -> Vec<TraceRecord> {
        self.memory.records()
    }

    /// Number of records currently retained in memory.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records dropped anywhere: ring evictions plus sink drops.
    pub fn dropped(&self) -> u64 {
        let mut n = self.memory.dropped();
        if let Some(s) = &*self.screen.lock() {
            n += TraceSink::dropped(s.as_ref());
        }
        n + self.sinks.read().iter().map(|s| s.dropped()).sum::<u64>()
    }

    /// Discard all retained records (menu-driven between measurement
    /// phases).
    pub fn clear(&self) {
        self.memory.clear();
    }

    /// Flush every attached sink (end of run, before off-line analysis).
    pub fn flush(&self) {
        for s in self.sinks.read().iter() {
            s.flush();
        }
    }

    /// Serialize all retained records as JSON lines — "sending trace
    /// output to a file allows the user to study trace information and
    /// make timing analyses off-line".
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for r in self.records() {
            s.push_str(&serde_json::to_string(&r).expect("trace records serialize"));
            s.push('\n');
        }
        s
    }

    /// Parse records back from JSON lines.
    pub fn parse_jsonl(data: &str) -> Result<Vec<TraceRecord>, serde_json::Error> {
        data.lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }

    /// Parse records from JSON lines, skipping malformed or truncated
    /// lines instead of aborting on the first bad one. Returns the good
    /// records plus the number of lines skipped — a trace cut off
    /// mid-write (crashed run, live flight dump) still yields everything
    /// that did land.
    pub fn parse_jsonl_lossy(data: &str) -> (Vec<TraceRecord>, usize) {
        let mut records = Vec::new();
        let mut skipped = 0usize;
        for line in data.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str(line) {
                Ok(r) => records.push(r),
                Err(_) => skipped += 1,
            }
        }
        (records, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid() -> TaskId {
        TaskId::new(1, 1, 1)
    }

    #[test]
    fn disabled_by_default() {
        let t = Tracer::new(&TraceSettings::default());
        t.emit(TraceEventKind::MsgSend, tid(), 3, 10, "x");
        assert!(t.is_empty());
    }

    #[test]
    fn global_enable_records() {
        let t = Tracer::new(&TraceSettings::default());
        t.set_global(TraceEventKind::MsgSend, true);
        t.emit(TraceEventKind::MsgSend, tid(), 3, 10, "PING");
        t.emit(TraceEventKind::Lock, tid(), 3, 11, "L");
        let recs = t.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, TraceEventKind::MsgSend);
        assert_eq!(recs[0].info, "PING");
        assert_eq!(recs[0].pe, 3);
    }

    #[test]
    fn per_task_override_wins_both_ways() {
        let t = Tracer::new(&TraceSettings::all());
        let a = TaskId::new(1, 1, 1);
        let b = TaskId::new(1, 2, 1);
        t.set_for_task(a, TraceEventKind::Barrier, false);
        t.emit(TraceEventKind::Barrier, a, 3, 1, "");
        t.emit(TraceEventKind::Barrier, b, 3, 2, "");
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].task, b);

        // Off globally but on for one task.
        let t = Tracer::new(&TraceSettings::default());
        t.set_for_task(a, TraceEventKind::Lock, true);
        t.emit(TraceEventKind::Lock, a, 3, 1, "");
        t.emit(TraceEventKind::Lock, b, 3, 1, "");
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn clear_task_restores_global() {
        let t = Tracer::new(&TraceSettings::all());
        let a = tid();
        t.set_for_task(a, TraceEventKind::MsgSend, false);
        t.clear_task(a);
        t.emit(TraceEventKind::MsgSend, a, 3, 1, "");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sequence_numbers_total_order() {
        let t = Tracer::new(&TraceSettings::all());
        for i in 0..5 {
            t.emit(TraceEventKind::TaskInit, tid(), 3, i, "");
        }
        let seqs: Vec<_> = t.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = Tracer::new(&TraceSettings::all());
        t.emit(TraceEventKind::ForceSplit, tid(), 5, 77, "size=10");
        t.emit(TraceEventKind::TaskTerm, tid(), 5, 99, "ok");
        let txt = t.to_jsonl();
        let back = Tracer::parse_jsonl(&txt).unwrap();
        assert_eq!(back, t.records());
    }

    #[test]
    fn lossy_parse_skips_malformed_and_truncated_lines() {
        let t = Tracer::new(&TraceSettings::all());
        t.emit(TraceEventKind::MsgSend, tid(), 5, 10, "a");
        t.emit(TraceEventKind::MsgAccept, tid(), 5, 20, "b");
        t.emit(TraceEventKind::TaskTerm, tid(), 5, 30, "c");
        let good = t.to_jsonl();
        let mut lines: Vec<&str> = good.lines().collect();
        let truncated = &lines[2][..lines[2].len() / 2]; // cut mid-record
        lines.insert(1, "{not json at all");
        lines.insert(3, ""); // blank lines are not an error
        let last = lines.len() - 1;
        lines[last] = truncated;
        let mangled = lines.join("\n");

        // Strict parse aborts…
        assert!(Tracer::parse_jsonl(&mangled).is_err());
        // …lossy keeps the two intact records and counts two skips.
        let (records, skipped) = Tracer::parse_jsonl_lossy(&mangled);
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 2);
        assert_eq!(records[0].info, "a");
        assert_eq!(records[1].info, "b");
        // A fully well-formed file skips nothing.
        let (records, skipped) = Tracer::parse_jsonl_lossy(&good);
        assert_eq!((records.len(), skipped), (3, 0));
    }

    #[test]
    fn display_contains_fields() {
        let r = TraceRecord {
            seq: 1,
            kind: TraceEventKind::Lock,
            task: tid(),
            pe: 4,
            ticks: 123,
            info: "LVAR".into(),
            parent: Some(0),
            cause: None,
        };
        let s = r.to_string();
        assert!(s.contains("LOCK") && s.contains("pe04") && s.contains("LVAR"));
        assert!(s.contains("parent=#0") && !s.contains("cause="));
    }

    #[test]
    fn all_kinds_present_and_distinct() {
        assert_eq!(TraceEventKind::ALL.len(), NUM_KINDS);
        let labels: std::collections::BTreeSet<_> =
            TraceEventKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), NUM_KINDS);
        // The paper's eight event types lead the list, in its order.
        assert_eq!(TraceEventKind::ALL[0], TraceEventKind::TaskInit);
        assert_eq!(
            TraceEventKind::ALL[TraceEventKind::PAPER_KINDS - 1],
            TraceEventKind::ForceSplit
        );
    }

    #[test]
    fn kind_index_matches_all_order() {
        for (i, k) in TraceEventKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i, "{k:?}");
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let settings = TraceSettings {
            ring_capacity: 4,
            ..TraceSettings::all()
        };
        let t = Tracer::new(&settings);
        for i in 0..10u64 {
            t.emit(TraceEventKind::TaskInit, tid(), 3, i, "");
        }
        // Only the newest 4 records of PE3's shard survive.
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn shards_merge_by_seq_across_pes() {
        let t = Tracer::new(&TraceSettings::all());
        // Interleave emissions across three PEs.
        for i in 0..9u64 {
            t.emit(TraceEventKind::MsgSend, tid(), 3 + (i % 3) as u16, i, "");
        }
        let seqs: Vec<u64> = t.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn file_sink_streams_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "pisces-trace-test-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let path_s = path.to_string_lossy().to_string();
        let t = Tracer::new(&TraceSettings::all());
        let sink = Arc::new(FileSink::create(&path_s).unwrap());
        t.add_sink(sink.clone());
        t.emit(TraceEventKind::MsgSend, tid(), 3, 1, "PING -> c1.s2#1");
        t.emit(TraceEventKind::MsgAccept, tid(), 3, 2, "PING <- c1.s2#1");
        t.flush();
        assert_eq!(sink.written(), 2);
        let data = std::fs::read_to_string(&path).unwrap();
        let back = Tracer::parse_jsonl(&data).unwrap();
        assert_eq!(back, t.records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn emit_causal_returns_seq_and_threads_edges() {
        let t = Tracer::new(&TraceSettings::all());
        let send = t
            .emit_causal(TraceEventKind::MsgSend, tid(), 3, 1, "PING -> x", None, None)
            .unwrap();
        let accept = t
            .emit_causal(
                TraceEventKind::MsgAccept,
                tid(),
                4,
                2,
                "PING <- x",
                None,
                Some(send),
            )
            .unwrap();
        assert!(accept > send);
        let recs = t.records();
        assert_eq!(recs[1].cause, Some(send));
        assert_eq!(recs[0].cause, None);

        // Disabled kind: nothing recorded, no seq handed out.
        let t = Tracer::new(&TraceSettings::default());
        assert_eq!(
            t.emit_causal(TraceEventKind::MsgSend, tid(), 3, 1, "x", None, None),
            None
        );
        assert!(t.is_empty());
    }

    #[test]
    fn causal_fields_roundtrip_and_old_traces_parse() {
        let t = Tracer::new(&TraceSettings::all());
        t.emit_causal(
            TraceEventKind::MsgAccept,
            tid(),
            3,
            5,
            "PING <- x",
            Some(7),
            Some(3),
        );
        let back = Tracer::parse_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back[0].parent, Some(7));
        assert_eq!(back[0].cause, Some(3));

        // A pre-causal JSONL line (no parent/cause keys) still parses.
        let old = r#"{"seq":0,"kind":"MsgSend","task":{"cluster":1,"slot":2,"unique":1},"pe":3,"ticks":9,"info":"PING -> x"}"#;
        let recs = Tracer::parse_jsonl(old).unwrap();
        assert_eq!(recs[0].parent, None);
        assert_eq!(recs[0].cause, None);
    }

    #[test]
    fn file_sink_merges_racing_shards_into_seq_order() {
        let path = std::env::temp_dir().join(format!(
            "pisces-trace-reorder-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let path_s = path.to_string_lossy().to_string();
        let sink = FileSink::create(&path_s).unwrap();
        // Hand records to the sink in scrambled order, as racing PEs do:
        // seq is assigned before the sink call, so arrival order and seq
        // order can disagree.
        for seq in [4u64, 0, 3, 1, 2] {
            sink.record(&TraceRecord {
                seq,
                kind: TraceEventKind::MsgSend,
                task: tid(),
                pe: (seq % 3) as u16 + 3,
                ticks: seq,
                info: String::new(),
                parent: None,
                cause: None,
            });
        }
        sink.flush();
        assert_eq!(sink.written(), 5);
        let data = std::fs::read_to_string(&path).unwrap();
        // Pull `"seq":N` straight out of each raw line rather than
        // deserializing, so the assertion is about the bytes on disk.
        let seqs: Vec<u64> = data
            .lines()
            .map(|l| {
                let at = l.find("\"seq\":").expect("seq field present") + 6;
                l[at..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4], "JSONL lines must be seq-sorted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reorder_window_pops_smallest_seq_first() {
        // The heap ordering behind the file sink's reorder window.
        let mut h = std::collections::BinaryHeap::new();
        for seq in [9u64, 2, 7, 0, 4] {
            h.push(PendingLine {
                seq,
                line: format!("line{seq}"),
            });
        }
        let mut drained = Vec::new();
        while let Some(p) = h.pop() {
            drained.push(p.seq);
        }
        assert_eq!(drained, vec![0, 2, 4, 7, 9]);
    }

    #[test]
    fn dropped_starts_at_zero() {
        let t = Tracer::new(&TraceSettings::all());
        t.emit(TraceEventKind::Barrier, tid(), 3, 1, "");
        assert_eq!(t.dropped(), 0);
    }
}
