//! Latency and queue-depth histograms.
//!
//! [`RunStats`](crate::stats::RunStats) counts *how many* operations
//! happened; this module records *how long they took* (or how deep the
//! queue was). Each [`TickHistogram`] is a fixed set of power-of-two
//! buckets updated with two relaxed atomic adds per sample, cheap enough
//! to leave on at all times — the off-line analyses of Section 12 then
//! read percentiles out of the bucket counts.
//!
//! The machine keeps one [`MetricsRegistry`] with four histograms:
//! message send→accept latency, barrier wait time, lock hold time, and
//! ACCEPT queue depth.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets per histogram. Bucket 0 holds the value 0; bucket
/// `i` (1 ≤ i < 27) holds `[2^(i-1), 2^i)`; the last bucket is open-ended.
/// 28 buckets therefore cover exact values up to `2^26` (≈67M ticks)
/// before saturating, plenty for per-event latencies.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// Bucket index for a sample value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Smallest value that lands in bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value that lands in bucket `i` (`u64::MAX` for the open-ended
/// last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Lock-free fixed-bucket histogram of `u64` samples.
#[derive(Debug)]
pub struct TickHistogram {
    name: &'static str,
    unit: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl TickHistogram {
    /// An empty histogram. `unit` labels the sample dimension in reports
    /// ("ticks", "µs", "messages").
    pub fn new(name: &'static str, unit: &'static str) -> Self {
        Self {
            name,
            unit,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Histogram name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sample unit.
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the current state for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name,
            unit: self.unit,
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`TickHistogram`], also buildable off-line from a
/// trace file (see `pisces-exec`'s report module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: &'static str,
    /// Sample unit.
    pub unit: &'static str,
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot, for accumulating samples off-line.
    pub fn empty(name: &'static str, unit: &'static str) -> Self {
        Self {
            name,
            unit,
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Accumulate one sample (off-line use; the live path is
    /// [`TickHistogram::record`]).
    pub fn add(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Merge another snapshot into this one (per-bucket addition, as if
    /// every sample of `other` had been recorded here too). Saturating,
    /// so merging saturated rings cannot wrap. Used to combine per-PE or
    /// per-shard histograms into one machine-wide exposition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (0.0–100.0): the upper bound of the first
    /// bucket at which the cumulative count reaches `p`% of samples,
    /// clamped to the observed maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: n={} mean={:.1} p50={} p90={} p99={} max={} ({})",
            self.name,
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.max,
            self.unit
        )?;
        if self.count == 0 {
            return Ok(());
        }
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            let hi = bucket_upper_bound(i);
            if hi == u64::MAX {
                writeln!(
                    f,
                    "  {:>10}+          {:>8} {}",
                    bucket_lower_bound(i),
                    n,
                    bar
                )?;
            } else {
                writeln!(
                    f,
                    "  {:>10}..={:<10} {:>8} {}",
                    bucket_lower_bound(i),
                    hi,
                    n,
                    bar
                )?;
            }
        }
        Ok(())
    }
}

/// An OpenMetrics exemplar: one recent observed sample carrying a label
/// that links the metric back to its origin — here, the job id whose
/// `job-<id>.jsonl` trace file tells the full story of the observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Label value (e.g. the job id, rendered as `job_id="<v>"`).
    pub label: String,
    /// The observed sample value.
    pub value: u64,
    /// Attachment ordinal: higher = more recent (drives replacement).
    pub seq: u64,
}

/// Per-bucket exemplar slots for one histogram: each bucket remembers the
/// most recently observed sample that landed in it, labelled with where
/// it came from. Observation is off the hot path (one per *job*, not one
/// per message), so a mutex is fine.
#[derive(Debug, Default)]
pub struct ExemplarSet {
    slots: Mutex<BTreeMap<usize, Exemplar>>,
    next: AtomicU64,
}

impl ExemplarSet {
    /// Remember `value` (labelled `label`) as its bucket's exemplar,
    /// replacing any older one.
    pub fn observe(&self, value: u64, label: impl Into<String>) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        self.slots.lock().insert(
            bucket_index(value),
            Exemplar {
                label: label.into(),
                value,
                seq,
            },
        );
    }

    /// Current exemplars as `(bucket index, exemplar)`, sorted by bucket.
    pub fn snapshot(&self) -> Vec<(usize, Exemplar)> {
        self.slots
            .lock()
            .iter()
            .map(|(&b, e)| (b, e.clone()))
            .collect()
    }

    /// The exemplar for the bucket `value` falls into, if any.
    pub fn for_value(&self, value: u64) -> Option<Exemplar> {
        self.slots.lock().get(&bucket_index(value)).cloned()
    }

    /// Merge another set into this one: per bucket, the more recently
    /// attached exemplar wins (matching [`HistogramSnapshot::merge`]'s
    /// as-if-recorded-here semantics).
    pub fn merge(&self, other: &ExemplarSet) {
        if std::ptr::eq(self, other) {
            return;
        }
        let mut mine = self.slots.lock();
        for (&b, e) in other.slots.lock().iter() {
            match mine.get(&b) {
                Some(cur) if cur.seq >= e.seq => {}
                _ => {
                    mine.insert(b, e.clone());
                }
            }
        }
    }

    /// True when no exemplar has ever been observed.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

/// The machine's histogram set, recorded at the runtime's existing
/// trace-emit sites.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Message send→accept latency, in ticks of the accepting PE's clock.
    /// Cross-PE sends compare two *unsynchronized* clocks (the FLEX/32
    /// has no global clock), so individual samples are approximate; the
    /// distribution shape is still meaningful.
    pub msg_latency: TickHistogram,
    /// Wall-clock time a member spent waiting at a barrier, µs.
    pub barrier_wait: TickHistogram,
    /// Wall-clock time a critical section held its lock, µs.
    pub lock_hold: TickHistogram,
    /// Input-queue depth observed by each successful ACCEPT.
    pub accept_queue_depth: TickHistogram,
    /// Messages a selective ACCEPT scan examined before matching (or the
    /// whole queue on a miss) — the linear-search cost of
    /// accept-by-mtype, per scan.
    pub queue_scan_depth: TickHistogram,
    /// Size (64-bit words) of each bulk window transfer through the
    /// transfer engine (`window_get`/`window_put`/`window_move` and
    /// batched window sends).
    pub transfer_words: TickHistogram,
    /// Shared-memory allocations served from a per-PE pool magazine
    /// (no global heap lock taken). See `pisces_substrate::pool`.
    pub pool_hits: AtomicU64,
    /// Shared-memory allocations that fell through to the global
    /// first-fit heap.
    pub pool_misses: AtomicU64,
    /// Routed-link hops charged per (src PE, dst PE) pair, fed by the
    /// substrate's `charge_link` return value on each send. Empty on
    /// shared-bus machines (zero-hop links are not recorded).
    link_hops: Mutex<BTreeMap<(u16, u16), u64>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            msg_latency: TickHistogram::new("msg_latency", "ticks"),
            barrier_wait: TickHistogram::new("barrier_wait", "µs"),
            lock_hold: TickHistogram::new("lock_hold", "µs"),
            accept_queue_depth: TickHistogram::new("accept_queue_depth", "messages"),
            queue_scan_depth: TickHistogram::new("queue_scan_depth", "messages"),
            transfer_words: TickHistogram::new("transfer_words", "words"),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            link_hops: Mutex::new(BTreeMap::new()),
        }
    }
}

impl MetricsRegistry {
    /// Record `hops` routed-link hops for a `src → dst` send. Zero-hop
    /// sends (shared-bus machines, self-sends) are not recorded.
    pub fn record_link(&self, src: u16, dst: u16, hops: u32) {
        if hops == 0 {
            return;
        }
        *self.link_hops.lock().entry((src, dst)).or_insert(0) += hops as u64;
    }

    /// Cumulative routed-link hops per (src, dst) pair, sorted.
    pub fn link_hops_snapshot(&self) -> Vec<((u16, u16), u64)> {
        self.link_hops.lock().iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Render every histogram (all headers appear even when empty, so
    /// reports are self-describing), followed by the allocation-pool
    /// hit/miss line.
    pub fn report(&self) -> String {
        let mut out = String::from("histograms:\n");
        for h in [
            &self.msg_latency,
            &self.barrier_wait,
            &self.lock_hold,
            &self.accept_queue_depth,
            &self.queue_scan_depth,
            &self.transfer_words,
        ] {
            out.push_str(&h.snapshot().to_string());
        }
        let hits = self.pool_hits.load(Ordering::Relaxed);
        let misses = self.pool_misses.load(Ordering::Relaxed);
        let total = hits + misses;
        let rate = if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        };
        out.push_str(&format!(
            "shm_pool: hits={hits} misses={misses} hit_rate={rate:.1}%\n"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bounds_bracket_their_bucket() {
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = TickHistogram::new("t", "ticks");
        for v in [0u64, 1, 1, 2, 4, 8, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, 1000);
        assert!(s.percentile(50.0) <= s.percentile(90.0));
        assert!(s.percentile(90.0) <= s.percentile(99.0));
        assert!(s.percentile(99.0) <= s.max);
        assert_eq!(s.percentile(100.0), 1000);
    }

    #[test]
    fn empty_snapshot_is_quiet() {
        let s = TickHistogram::new("t", "µs").snapshot();
        assert_eq!(s.percentile(99.0), 0);
        assert_eq!(s.mean(), 0.0);
        let txt = s.to_string();
        assert!(txt.contains("n=0"));
    }

    #[test]
    fn display_has_percentiles_and_bars() {
        let h = TickHistogram::new("latency", "ticks");
        for v in 0..100u64 {
            h.record(v);
        }
        let txt = h.snapshot().to_string();
        assert!(txt.contains("latency:"));
        assert!(txt.contains("p99="));
        assert!(txt.contains('#'));
    }

    #[test]
    fn registry_report_names_every_histogram() {
        let m = MetricsRegistry::default();
        m.msg_latency.record(5);
        m.transfer_words.record(768);
        m.queue_scan_depth.record(3);
        let r = m.report();
        for name in [
            "msg_latency",
            "barrier_wait",
            "lock_hold",
            "accept_queue_depth",
            "queue_scan_depth",
            "transfer_words",
        ] {
            assert!(r.contains(name), "{name} missing from report");
        }
    }

    #[test]
    fn merge_of_two_empties_is_empty() {
        let mut a = HistogramSnapshot::empty("a", "ticks");
        let b = HistogramSnapshot::empty("b", "ticks");
        a.merge(&b);
        assert_eq!(a.count, 0);
        assert_eq!(a.sum, 0);
        assert_eq!(a.max, 0);
        assert!(a.buckets.iter().all(|&n| n == 0));
    }

    #[test]
    fn merge_single_record_into_empty_and_back() {
        let mut single = HistogramSnapshot::empty("s", "ticks");
        single.add(42);
        // empty ← single picks up the one sample…
        let mut a = HistogramSnapshot::empty("a", "ticks");
        a.merge(&single);
        assert_eq!((a.count, a.sum, a.max), (1, 42, 42));
        assert_eq!(a.buckets[bucket_index(42)], 1);
        // …and single ← empty is unchanged.
        let mut after = single.clone();
        after.merge(&HistogramSnapshot::empty("e", "ticks"));
        assert_eq!(after, single);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let ha = TickHistogram::new("a", "ticks");
        let hb = TickHistogram::new("b", "ticks");
        let all = TickHistogram::new("all", "ticks");
        for v in [0u64, 1, 5, 5, 80, 4096] {
            ha.record(v);
            all.record(v);
        }
        for v in [2u64, 5, 1_000_000] {
            hb.record(v);
            all.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let want = all.snapshot();
        assert_eq!(merged.buckets, want.buckets);
        assert_eq!(merged.count, want.count);
        assert_eq!(merged.sum, want.sum);
        assert_eq!(merged.max, want.max);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = HistogramSnapshot::empty("a", "ticks");
        a.buckets[0] = u64::MAX - 1;
        a.count = u64::MAX - 1;
        a.sum = u64::MAX - 1;
        a.max = 7;
        let mut b = HistogramSnapshot::empty("b", "ticks");
        b.buckets[0] = 5;
        b.count = 5;
        b.sum = 5;
        b.max = 3;
        a.merge(&b);
        assert_eq!(a.buckets[0], u64::MAX);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.max, 7);
    }

    #[test]
    fn exemplars_track_most_recent_per_bucket() {
        let e = ExemplarSet::default();
        assert!(e.is_empty());
        e.observe(5, "job-1");
        e.observe(6, "job-2"); // same bucket [4,8): replaces job-1
        e.observe(1000, "job-3");
        let snap = e.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(e.for_value(7).unwrap().label, "job-2");
        assert_eq!(e.for_value(7).unwrap().value, 6);
        assert_eq!(e.for_value(600).unwrap().label, "job-3");
        assert_eq!(e.for_value(3), None);
    }

    #[test]
    fn exemplar_merge_prefers_newer() {
        let a = ExemplarSet::default();
        let b = ExemplarSet::default();
        a.observe(5, "old");
        b.observe(5, "new");
        // b's exemplar was attached later in its own set but seq spaces
        // are independent; bump it so it is strictly newer.
        b.observe(5, "newest");
        a.merge(&b);
        assert_eq!(a.for_value(5).unwrap().label, "newest");
        // Self-merge is a no-op, not a deadlock.
        a.merge(&a);
        assert_eq!(a.for_value(5).unwrap().label, "newest");
    }

    #[test]
    fn report_shows_pool_hit_rate() {
        let m = MetricsRegistry::default();
        assert!(m.report().contains("shm_pool: hits=0 misses=0"));
        m.pool_hits.fetch_add(3, Ordering::Relaxed);
        m.pool_misses.fetch_add(1, Ordering::Relaxed);
        let r = m.report();
        assert!(
            r.contains("shm_pool: hits=3 misses=1 hit_rate=75.0%"),
            "{r}"
        );
    }
}
