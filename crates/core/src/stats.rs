//! Run-time statistics.
//!
//! Counters the execution environment displays (PE loading, message
//! queues) and the experiment harnesses report (message traffic, window
//! traffic, force activity). All counters are relaxed atomics: they are
//! observational only.

use std::sync::atomic::{AtomicU64, Ordering};

/// Machine-wide counters for one run.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Messages sent (point-to-point, including system messages).
    pub messages_sent: AtomicU64,
    /// Broadcast fan-out deliveries.
    pub broadcast_deliveries: AtomicU64,
    /// Total packet words moved through shared memory by messages.
    pub message_words: AtomicU64,
    /// Messages accepted (signals + handlers).
    pub messages_accepted: AtomicU64,
    /// Messages processed as signals.
    pub signals: AtomicU64,
    /// Messages processed by handlers.
    pub handlers: AtomicU64,
    /// ACCEPT statements that ended in a DELAY timeout.
    pub accept_timeouts: AtomicU64,
    /// Messages deleted unprocessed (execution-environment menu option 4,
    /// or task termination with a non-empty in-queue).
    pub messages_deleted: AtomicU64,
    /// User tasks initiated.
    pub tasks_initiated: AtomicU64,
    /// User tasks completed.
    pub tasks_completed: AtomicU64,
    /// Initiate requests that had to wait for a free slot.
    pub initiates_queued: AtomicU64,
    /// FORCESPLIT statements executed.
    pub forcesplits: AtomicU64,
    /// Barrier entries (per member).
    pub barrier_entries: AtomicU64,
    /// Chunks grabbed by chunked/guided SELFSCHED loops (each grab is one
    /// shared fetch-add amortized over the whole chunk).
    pub selfsched_chunks: AtomicU64,
    /// Critical sections entered.
    pub criticals: AtomicU64,
    /// Window read operations.
    pub window_reads: AtomicU64,
    /// Window write operations.
    pub window_writes: AtomicU64,
    /// 64-bit words moved by window reads/writes.
    pub window_words: AtomicU64,
    /// Send attempts retried because the destination PE was fail-stopped.
    pub send_retries: AtomicU64,
    /// Fault notices delivered to senders in place of failed deliveries.
    pub fault_notices: AtomicU64,
    /// Messages dropped on the link by injected faults.
    pub messages_dropped: AtomicU64,
    /// Extra deliveries of messages duplicated by injected faults.
    pub messages_duplicated: AtomicU64,
}

/// Plain snapshot of [`RunStats`] (copyable, comparable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub messages_sent: u64,
    pub broadcast_deliveries: u64,
    pub message_words: u64,
    pub messages_accepted: u64,
    pub signals: u64,
    pub handlers: u64,
    pub accept_timeouts: u64,
    pub messages_deleted: u64,
    pub tasks_initiated: u64,
    pub tasks_completed: u64,
    pub initiates_queued: u64,
    pub forcesplits: u64,
    pub barrier_entries: u64,
    pub selfsched_chunks: u64,
    pub criticals: u64,
    pub window_reads: u64,
    pub window_writes: u64,
    pub window_words: u64,
    pub send_retries: u64,
    pub fault_notices: u64,
    pub messages_dropped: u64,
    pub messages_duplicated: u64,
}

impl StatsSnapshot {
    /// Counter names and values, in declaration order. One list drives
    /// `diff` and `Display` so a new counter cannot be missed in one of
    /// them.
    pub fn fields(&self) -> [(&'static str, u64); 22] {
        [
            ("messages sent", self.messages_sent),
            ("broadcast deliveries", self.broadcast_deliveries),
            ("message words", self.message_words),
            ("messages accepted", self.messages_accepted),
            ("signals", self.signals),
            ("handlers", self.handlers),
            ("accept timeouts", self.accept_timeouts),
            ("messages deleted", self.messages_deleted),
            ("tasks initiated", self.tasks_initiated),
            ("tasks completed", self.tasks_completed),
            ("initiates queued", self.initiates_queued),
            ("forcesplits", self.forcesplits),
            ("barrier entries", self.barrier_entries),
            ("selfsched chunks", self.selfsched_chunks),
            ("criticals", self.criticals),
            ("window reads", self.window_reads),
            ("window writes", self.window_writes),
            ("window words", self.window_words),
            ("send retries", self.send_retries),
            ("fault notices", self.fault_notices),
            ("messages dropped", self.messages_dropped),
            ("messages duplicated", self.messages_duplicated),
        ]
    }

    /// Counter deltas since an earlier snapshot — what happened *during*
    /// an interval, for the execution menu and benches. Saturating, so a
    /// snapshot pair taken across a tracer/stats reset cannot wrap.
    pub fn diff(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            broadcast_deliveries: self
                .broadcast_deliveries
                .saturating_sub(earlier.broadcast_deliveries),
            message_words: self.message_words.saturating_sub(earlier.message_words),
            messages_accepted: self
                .messages_accepted
                .saturating_sub(earlier.messages_accepted),
            signals: self.signals.saturating_sub(earlier.signals),
            handlers: self.handlers.saturating_sub(earlier.handlers),
            accept_timeouts: self.accept_timeouts.saturating_sub(earlier.accept_timeouts),
            messages_deleted: self
                .messages_deleted
                .saturating_sub(earlier.messages_deleted),
            tasks_initiated: self.tasks_initiated.saturating_sub(earlier.tasks_initiated),
            tasks_completed: self.tasks_completed.saturating_sub(earlier.tasks_completed),
            initiates_queued: self
                .initiates_queued
                .saturating_sub(earlier.initiates_queued),
            forcesplits: self.forcesplits.saturating_sub(earlier.forcesplits),
            barrier_entries: self.barrier_entries.saturating_sub(earlier.barrier_entries),
            selfsched_chunks: self
                .selfsched_chunks
                .saturating_sub(earlier.selfsched_chunks),
            criticals: self.criticals.saturating_sub(earlier.criticals),
            window_reads: self.window_reads.saturating_sub(earlier.window_reads),
            window_writes: self.window_writes.saturating_sub(earlier.window_writes),
            window_words: self.window_words.saturating_sub(earlier.window_words),
            send_retries: self.send_retries.saturating_sub(earlier.send_retries),
            fault_notices: self.fault_notices.saturating_sub(earlier.fault_notices),
            messages_dropped: self
                .messages_dropped
                .saturating_sub(earlier.messages_dropped),
            messages_duplicated: self
                .messages_duplicated
                .saturating_sub(earlier.messages_duplicated),
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, v) in self.fields() {
            writeln!(f, "  {name:<22} {v:>10}")?;
        }
        Ok(())
    }
}

impl RunStats {
    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Take a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            messages_sent: g(&self.messages_sent),
            broadcast_deliveries: g(&self.broadcast_deliveries),
            message_words: g(&self.message_words),
            messages_accepted: g(&self.messages_accepted),
            signals: g(&self.signals),
            handlers: g(&self.handlers),
            accept_timeouts: g(&self.accept_timeouts),
            messages_deleted: g(&self.messages_deleted),
            tasks_initiated: g(&self.tasks_initiated),
            tasks_completed: g(&self.tasks_completed),
            initiates_queued: g(&self.initiates_queued),
            forcesplits: g(&self.forcesplits),
            barrier_entries: g(&self.barrier_entries),
            selfsched_chunks: g(&self.selfsched_chunks),
            criticals: g(&self.criticals),
            window_reads: g(&self.window_reads),
            window_writes: g(&self.window_writes),
            window_words: g(&self.window_words),
            send_retries: g(&self.send_retries),
            fault_notices: g(&self.fault_notices),
            messages_dropped: g(&self.messages_dropped),
            messages_duplicated: g(&self.messages_duplicated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = RunStats::default();
        RunStats::bump(&s.messages_sent);
        RunStats::bump(&s.messages_sent);
        RunStats::add(&s.message_words, 17);
        let snap = s.snapshot();
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.message_words, 17);
        assert_eq!(snap.tasks_initiated, 0);
    }

    #[test]
    fn snapshots_compare() {
        let s = RunStats::default();
        let a = s.snapshot();
        RunStats::bump(&s.signals);
        let b = s.snapshot();
        assert_ne!(a, b);
        assert_eq!(b.signals - a.signals, 1);
    }

    #[test]
    fn diff_is_per_interval_and_saturating() {
        let s = RunStats::default();
        RunStats::add(&s.messages_sent, 5);
        let a = s.snapshot();
        RunStats::add(&s.messages_sent, 3);
        RunStats::bump(&s.barrier_entries);
        let b = s.snapshot();
        let d = b.diff(&a);
        assert_eq!(d.messages_sent, 3);
        assert_eq!(d.barrier_entries, 1);
        assert_eq!(d.signals, 0);
        // Reversed operands saturate to zero rather than wrapping.
        assert_eq!(a.diff(&b).messages_sent, 0);
    }

    #[test]
    fn diff_of_identical_snapshots_is_all_zero() {
        let s = RunStats::default();
        RunStats::add(&s.messages_sent, 9);
        RunStats::add(&s.window_words, 512);
        let snap = s.snapshot();
        let d = snap.diff(&snap);
        assert_eq!(d, StatsSnapshot::default());
        assert!(d.fields().iter().all(|&(_, v)| v == 0));
    }

    #[test]
    fn diff_against_empty_is_identity() {
        let s = RunStats::default();
        RunStats::add(&s.handlers, 4);
        RunStats::bump(&s.forcesplits);
        let snap = s.snapshot();
        assert_eq!(snap.diff(&StatsSnapshot::default()), snap);
    }

    #[test]
    fn diff_saturates_every_field_independently() {
        // Mixed directions: some fields grew, one "shrank" (as across a
        // stats reset). Grown fields report their delta, shrunk ones
        // clamp to zero instead of wrapping to huge values.
        let s = RunStats::default();
        RunStats::add(&s.messages_sent, 10);
        RunStats::add(&s.signals, 7);
        let a = s.snapshot();
        let mut b = a;
        b.messages_sent = 12; // grew by 2
        b.signals = 3; // "reset" below the earlier value
        let d = b.diff(&a);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.signals, 0);
    }

    #[test]
    fn diff_handles_u64_extremes() {
        let mut a = StatsSnapshot::default();
        a.message_words = u64::MAX;
        let d = a.diff(&StatsSnapshot::default());
        assert_eq!(d.message_words, u64::MAX);
        // And the reverse saturates.
        assert_eq!(StatsSnapshot::default().diff(&a).message_words, 0);
    }

    #[test]
    fn display_lists_every_counter_once() {
        let s = RunStats::default();
        RunStats::add(&s.window_words, 42);
        let text = s.snapshot().to_string();
        assert_eq!(text.lines().count(), 22);
        assert!(text.contains("window words"));
        assert!(text.contains("42"));
    }

    #[test]
    fn fields_cover_struct() {
        // fields() drives diff/Display; a counter missing here would make
        // this length check fail when someone extends the struct.
        let snap = StatsSnapshot::default();
        assert_eq!(snap.fields().len(), 22);
    }
}
