//! Bulk window-transfer engine.
//!
//! The original window path moved data one row at a time: a lock
//! acquisition, a bounds check and a heap allocation per row (per
//! *element*, for column windows). This module replaces it with batched
//! transfers built on the strided gather/scatter primitives of
//! [`pisces_substrate::shmem::SharedMemory`]:
//!
//! * **Synchronous** [`Pisces::window_get`] / [`Pisces::window_put`] /
//!   [`Pisces::window_move`] — one strided pass over the arena per
//!   transfer, one bounds check for the whole access pattern, one
//!   allocation for the result. `window_move` between two resident
//!   arrays copies arena-to-arena without any staging at all.
//! * **Asynchronous, double-buffered** [`PendingGet`] / [`PendingPut`] —
//!   the transfer is *posted* (snapshotted into a staging buffer drawn
//!   from the per-PE [`ShmTag::Transfer`] pool magazines) and completed
//!   later with `wait`. Posting the next tile's get before consuming the
//!   current one overlaps communication with computation, the classic
//!   halo-exchange shape; staging blocks recycle through the pool, so
//!   steady state does no arena carving at all.
//!
//! Every transfer is observable: it bumps the window counters in
//! [`crate::stats::RunStats`], samples the `transfer_words` histogram in
//! [`crate::metrics::MetricsRegistry`], emits one `BULK-XFER` trace
//! event, and charges virtual time via the Section 5 cost model (one
//! `WINDOW_BASE` plus a per-word cost — batched, so a 256×256 move costs
//! one base charge, not 256).
//!
//! Batched *messaging* of windows lives on [`crate::context::TaskCtx`]
//! (`window_send` / `window_receive_into`): the whole sub-array crosses
//! the link as a single SEND, which is why the fault layer sees exactly
//! one link event — one possible drop, one possible FAULT$ notice — per
//! bulk transfer.

use pisces_substrate::pe::PeId;
use pisces_substrate::shmem::{ShmHandle, ShmTag};

use crate::error::{PiscesError, Result};
use crate::machine::Pisces;
use crate::stats::RunStats;
use crate::task::FILE_CTRL_ID;
use crate::trace::TraceEventKind;
use crate::window::{Window, WindowError};

/// File-array header: two u64 words (rows, cols) before the row-major
/// f64 payload. Mirrors `Pisces::create_file_array`.
const FILE_HEADER_BYTES: usize = 16;

/// Where a posted transfer's data lives between post and wait.
enum Staging {
    /// A pool-backed block in the shared arena (dense row-major words).
    /// Freed back to the magazine when the transfer completes.
    Shm { handle: ShmHandle, pe: PeId },
    /// Host-memory fallback for file arrays (their payload is on the
    /// Unix PEs' secondary storage, not in the arena).
    Host(Vec<u64>),
}

/// A bulk read posted with [`crate::context::TaskCtx::window_get_async`].
///
/// The window's contents were snapshotted into a staging buffer at post
/// time; [`PendingGet::wait`] hands them back as a dense row-major
/// vector and recycles the staging block. Dropping a `PendingGet`
/// without waiting abandons its staging block until the machine shuts
/// down — always complete what you post.
#[must_use = "a posted window get does nothing until waited on"]
pub struct PendingGet {
    window: Window,
    staging: Staging,
    /// Trace seq of the GET-POST event, cited as the completion's cause.
    post_seq: Option<u64>,
}

impl PendingGet {
    /// The window this transfer reads.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Complete the transfer: copy the staged snapshot out and recycle
    /// the staging buffer.
    pub fn wait(self, ctx: &crate::context::TaskCtx) -> Result<Vec<f64>> {
        let _cpu = ctx.enter(0)?;
        let pe = ctx.pe();
        ctx.machine().window_get_finish(pe, self)
    }
}

/// A bulk write posted with [`crate::context::TaskCtx::window_put_async`].
///
/// The data was validated and staged at post time; [`PendingPut::wait`]
/// scatters it through the window in one strided pass and recycles the
/// staging block.
#[must_use = "a posted window put does nothing until waited on"]
pub struct PendingPut {
    window: Window,
    staging: Staging,
    /// Trace seq of the PUT-POST event, cited as the completion's cause.
    post_seq: Option<u64>,
}

impl PendingPut {
    /// The window this transfer writes.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Complete the transfer: scatter the staged data into the array.
    pub fn wait(self, ctx: &crate::context::TaskCtx) -> Result<()> {
        let _cpu = ctx.enter(0)?;
        let pe = ctx.pe();
        ctx.machine().window_put_finish(pe, self)
    }
}

impl Pisces {
    // ------------------------------------------------------------------
    // Synchronous engine
    // ------------------------------------------------------------------

    /// Read the subarray visible in `w` (row-major) as one batched
    /// transfer.
    pub(crate) fn window_get(&self, requester_pe: PeId, w: &Window) -> Result<Vec<f64>> {
        let words = self.gather_window_words(w)?;
        let out: Vec<f64> = words.iter().map(|&b| f64::from_bits(b)).collect();
        RunStats::bump(&self.stats.window_reads);
        self.note_transfer(requester_pe, w, out.len(), "GET", None);
        Ok(out)
    }

    /// Write `data` (row-major, exactly `w.len()` elements) through `w`
    /// as one batched transfer.
    pub(crate) fn window_put(&self, requester_pe: PeId, w: &Window, data: &[f64]) -> Result<()> {
        if data.len() != w.len() {
            return Err(WindowError::LengthMismatch {
                expected: w.len(),
                got: data.len(),
            }
            .into());
        }
        let words: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
        self.scatter_window_words(w, &words)?;
        RunStats::bump(&self.stats.window_writes);
        self.note_transfer(requester_pe, w, data.len(), "PUT", None);
        Ok(())
    }

    /// Copy the contents of `src` into `dst` (same shape required).
    ///
    /// When both windows look into resident arrays and do not alias,
    /// the copy runs arena-to-arena in a single strided pass — no
    /// staging buffer exists anywhere. Aliasing or file-backed windows
    /// fall back to a staged gather + scatter.
    pub(crate) fn window_move(&self, requester_pe: PeId, src: &Window, dst: &Window) -> Result<()> {
        if !src.same_shape(dst) {
            return Err(WindowError::ShapeMismatch {
                src: (src.row_count(), src.col_count()),
                dst: (dst.row_count(), dst.col_count()),
            }
            .into());
        }
        let both_resident =
            src.array().owner != FILE_CTRL_ID && dst.array().owner != FILE_CTRL_ID;
        let aliases = src.array() == dst.array() && src.overlaps(dst);
        if both_resident && !aliases {
            let arrays = self.arrays.lock();
            let s = arrays
                .get(&src.array())
                .ok_or(PiscesError::Window(WindowError::ArrayGone(src.array())))?;
            let d = arrays
                .get(&dst.array())
                .ok_or(PiscesError::Window(WindowError::ArrayGone(dst.array())))?;
            self.sub.shmem().copy_strided(
                s.handle,
                src.rows().start * s.cols + src.cols().start,
                s.cols,
                d.handle,
                dst.rows().start * d.cols + dst.cols().start,
                d.cols,
                src.col_count(),
                src.row_count(),
            )?;
        } else {
            let words = self.gather_window_words(src)?;
            self.scatter_window_words(dst, &words)?;
        }
        RunStats::bump(&self.stats.window_reads);
        RunStats::bump(&self.stats.window_writes);
        let words = src.len() as u64;
        self.metrics.transfer_words.record(words);
        // Both ends do copy work: the read side and the write side each
        // pay a batched window charge.
        self.charge_window_transfer(requester_pe, src.array().owner, words);
        self.charge_window_transfer(requester_pe, dst.array().owner, words);
        self.trace_transfer(requester_pe, src, words as usize, "MOVE", None);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Asynchronous (double-buffered) engine
    // ------------------------------------------------------------------

    /// Post a bulk read: snapshot `w` into a pool-backed staging buffer
    /// and return a handle to complete later.
    pub(crate) fn window_get_start(&self, requester_pe: PeId, w: &Window) -> Result<PendingGet> {
        let staging = if w.array().owner == FILE_CTRL_ID {
            Staging::Host(self.gather_window_words(w)?)
        } else {
            let handle = self.pool_alloc(requester_pe, w.len() * 8, ShmTag::Transfer)?;
            let res = (|| -> Result<()> {
                let arrays = self.arrays.lock();
                let a = arrays
                    .get(&w.array())
                    .ok_or(PiscesError::Window(WindowError::ArrayGone(w.array())))?;
                self.sub.shmem().copy_strided(
                    a.handle,
                    w.rows().start * a.cols + w.cols().start,
                    a.cols,
                    handle,
                    0,
                    w.col_count(),
                    w.col_count(),
                    w.row_count(),
                )?;
                Ok(())
            })();
            if let Err(e) = res {
                let _ = self.pool_free(requester_pe, handle, ShmTag::Transfer);
                return Err(e);
            }
            Staging::Shm {
                handle,
                pe: requester_pe,
            }
        };
        RunStats::bump(&self.stats.window_reads);
        let post_seq = self.note_transfer(requester_pe, w, w.len(), "GET-POST", None);
        Ok(PendingGet {
            window: w.clone(),
            staging,
            post_seq,
        })
    }

    /// Complete a posted bulk read.
    pub(crate) fn window_get_finish(
        &self,
        requester_pe: PeId,
        pending: PendingGet,
    ) -> Result<Vec<f64>> {
        let words = match pending.staging {
            Staging::Host(v) => v,
            Staging::Shm { handle, pe } => {
                let mut buf = vec![0u64; pending.window.len()];
                self.sub.shmem().read_words(handle, 0, &mut buf)?;
                self.pool_free(pe, handle, ShmTag::Transfer)?;
                buf
            }
        };
        // Completion cites the posting event, closing the async edge.
        self.trace_transfer(
            requester_pe,
            &pending.window,
            words.len(),
            "GET-WAIT",
            pending.post_seq,
        );
        Ok(words.iter().map(|&b| f64::from_bits(b)).collect())
    }

    /// Post a bulk write: validate and stage `data`, returning a handle
    /// that scatters it when waited on.
    pub(crate) fn window_put_start(
        &self,
        requester_pe: PeId,
        w: &Window,
        data: &[f64],
    ) -> Result<PendingPut> {
        if data.len() != w.len() {
            return Err(WindowError::LengthMismatch {
                expected: w.len(),
                got: data.len(),
            }
            .into());
        }
        let words: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
        let staging = if w.array().owner == FILE_CTRL_ID {
            Staging::Host(words)
        } else {
            let handle = self.pool_alloc(requester_pe, words.len() * 8, ShmTag::Transfer)?;
            if let Err(e) = self.sub.shmem().write_words(handle, 0, &words) {
                let _ = self.pool_free(requester_pe, handle, ShmTag::Transfer);
                return Err(e.into());
            }
            Staging::Shm {
                handle,
                pe: requester_pe,
            }
        };
        let post_seq = self.trace_transfer(requester_pe, w, w.len(), "PUT-POST", None);
        Ok(PendingPut {
            window: w.clone(),
            staging,
            post_seq,
        })
    }

    /// Complete a posted bulk write.
    pub(crate) fn window_put_finish(&self, requester_pe: PeId, pending: PendingPut) -> Result<()> {
        let w = &pending.window;
        match pending.staging {
            Staging::Host(v) => self.scatter_window_words(w, &v)?,
            Staging::Shm { handle, pe } => {
                let res = (|| -> Result<()> {
                    let arrays = self.arrays.lock();
                    let a = arrays
                        .get(&w.array())
                        .ok_or(PiscesError::Window(WindowError::ArrayGone(w.array())))?;
                    self.sub.shmem().copy_strided(
                        handle,
                        0,
                        w.col_count(),
                        a.handle,
                        w.rows().start * a.cols + w.cols().start,
                        a.cols,
                        w.col_count(),
                        w.row_count(),
                    )?;
                    Ok(())
                })();
                let freed = self.pool_free(pe, handle, ShmTag::Transfer);
                res?;
                freed?;
            }
        }
        RunStats::bump(&self.stats.window_writes);
        self.note_transfer(requester_pe, w, w.len(), "PUT-FLUSH", pending.post_seq);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Gather the elements visible in `w` into a dense row-major word
    /// vector: one strided pass for resident arrays, one secondary-
    /// storage read spanning the window for file arrays.
    pub(crate) fn gather_window_words(&self, w: &Window) -> Result<Vec<u64>> {
        if w.array().owner == FILE_CTRL_ID {
            let (path, cols, lock) = self.file_array_meta(w)?;
            let _guard = lock.read();
            let width = w.col_count();
            let first = FILE_HEADER_BYTES + (w.rows().start * cols + w.cols().start) * 8;
            let span = ((w.row_count() - 1) * cols + width) * 8;
            let bytes = self.sub.fs().read_at(&path, first, span)?;
            let mut out = Vec::with_capacity(w.len());
            for r in 0..w.row_count() {
                let base = r * cols * 8;
                for ch in bytes[base..base + width * 8].chunks_exact(8) {
                    out.push(u64::from_le_bytes(ch.try_into().unwrap()));
                }
            }
            Ok(out)
        } else {
            let arrays = self.arrays.lock();
            let a = arrays
                .get(&w.array())
                .ok_or(PiscesError::Window(WindowError::ArrayGone(w.array())))?;
            let mut out = vec![0u64; w.len()];
            self.sub.shmem().gather_strided(
                a.handle,
                w.rows().start * a.cols + w.cols().start,
                w.col_count(),
                a.cols,
                w.row_count(),
                &mut out,
            )?;
            Ok(out)
        }
    }

    /// Scatter a dense row-major word vector through `w`: one strided
    /// pass for resident arrays; file arrays write whole rows (a single
    /// contiguous write when the window spans full rows).
    pub(crate) fn scatter_window_words(&self, w: &Window, words: &[u64]) -> Result<()> {
        debug_assert_eq!(words.len(), w.len());
        if w.array().owner == FILE_CTRL_ID {
            let (path, cols, lock) = self.file_array_meta(w)?;
            let _guard = lock.write();
            let width = w.col_count();
            let to_bytes = |ws: &[u64]| {
                let mut b = Vec::with_capacity(ws.len() * 8);
                for v in ws {
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b
            };
            if width == cols {
                // Full-width rows are contiguous on disk: one write.
                let first = FILE_HEADER_BYTES + w.rows().start * cols * 8;
                self.sub.fs().write_at(&path, first, &to_bytes(words))?;
            } else {
                for (k, r) in w.rows().enumerate() {
                    let off = FILE_HEADER_BYTES + (r * cols + w.cols().start) * 8;
                    self.sub
                        .fs()
                        .write_at(&path, off, &to_bytes(&words[k * width..(k + 1) * width]))?;
                }
            }
            Ok(())
        } else {
            let arrays = self.arrays.lock();
            let a = arrays
                .get(&w.array())
                .ok_or(PiscesError::Window(WindowError::ArrayGone(w.array())))?;
            self.sub.shmem().scatter_strided(
                a.handle,
                w.rows().start * a.cols + w.cols().start,
                w.col_count(),
                a.cols,
                w.row_count(),
                words,
            )?;
            Ok(())
        }
    }

    /// Shared accounting tail for single-ended transfers: histogram
    /// sample, virtual-time charge, word counter, trace event. Returns
    /// the trace seq of the BULK-XFER event, if one was emitted.
    fn note_transfer(
        &self,
        requester_pe: PeId,
        w: &Window,
        words: usize,
        verb: &str,
        cause: Option<u64>,
    ) -> Option<u64> {
        self.metrics.transfer_words.record(words as u64);
        self.charge_window_transfer(requester_pe, w.array().owner, words as u64);
        self.trace_transfer(requester_pe, w, words, verb, cause)
    }

    fn trace_transfer(
        &self,
        requester_pe: PeId,
        w: &Window,
        words: usize,
        verb: &str,
        cause: Option<u64>,
    ) -> Option<u64> {
        self.tracer.emit_causal(
            TraceEventKind::BulkTransfer,
            w.array().owner,
            requester_pe.number(),
            self.sub.pe(requester_pe).clock.now(),
            format!(
                "{verb} {}x{} ({words} words) array {}",
                w.row_count(),
                w.col_count(),
                w.array()
            ),
            None,
            cause,
        )
    }
}
