//! The task context: what a running task can do.
//!
//! A [`TaskCtx`] is handed to every task body (Rust closure or Pisces
//! Fortran interpreter frame). Its methods are the Pisces Fortran
//! statements of Sections 6–9 of the paper:
//!
//! | Pisces Fortran                         | Context method            |
//! |----------------------------------------|---------------------------|
//! | `ON <cluster> INITIATE <type>(args)`   | [`TaskCtx::initiate`]     |
//! | `TO <taskid> SEND <type>(args)`        | [`TaskCtx::send`]         |
//! | `TO ALL [CLUSTER n] SEND <type>(args)` | [`TaskCtx::send_all`]     |
//! | `ACCEPT … END ACCEPT`                  | [`TaskCtx::accept`]       |
//! | `FORCESPLIT`                           | [`TaskCtx::forcesplit`]   |
//! | `SHARED COMMON /NAME/`                 | [`TaskCtx::shared_common`]|
//! | `LOCK L`                               | [`TaskCtx::lock_var`]     |
//! | window creation / access               | [`TaskCtx::register_array`] etc. |
//!
//! Every method is a *runtime call*: it acquires the task's PE (modelling
//! MMOS time-sharing), charges tick costs, and observes kill requests and
//! the machine-down flag.

use crate::cost;
use crate::error::{PiscesError, Result};
use crate::machine::{sysmsg, Pisces};
use crate::message::Message;
use crate::shared::{LockVar, SharedBlock};
use crate::stats::RunStats;
use crate::task::{TaskEntry, TaskRunState};
use crate::taskid::TaskId;
use crate::telemetry::Activity;
use crate::trace::TraceEventKind;
use crate::transfer::{PendingGet, PendingPut};
use crate::value::Value;
use crate::window::Window;
use pisces_substrate::cpu::CpuGuard;
use pisces_substrate::pe::PeId;
use pisces_substrate::shmem::ShmTag;
use std::collections::HashMap;
use std::sync::atomic;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Destination of a SEND, mirroring the paper's list exactly:
/// PARENT, SELF, SENDER, USER, a TASKID value, or TCONTR ⟨cluster⟩.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum To {
    /// Send to the task's parent.
    Parent,
    /// Send to the task itself.
    Myself,
    /// Send to the sender of the last message received.
    Sender,
    /// Send to the user at the terminal (routed to a user controller).
    User,
    /// Send to an explicit taskid (a TASKID variable).
    Task(TaskId),
    /// Send to the task controller of a cluster.
    TaskController(u8),
}

/// Placement of an INITIATE, mirroring the paper's list exactly:
/// CLUSTER ⟨number⟩, ANY, OTHER, SAME.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Where {
    /// Run the new task in the specified cluster.
    Cluster(u8),
    /// Run in a system-chosen cluster.
    Any,
    /// Run in another cluster, not this one.
    Other,
    /// Run in this cluster.
    Same,
}

/// The context of a running task.
pub struct TaskCtx {
    pub(crate) p: Arc<Pisces>,
    pub(crate) entry: Arc<TaskEntry>,
    args: Vec<Value>,
}

impl TaskCtx {
    pub(crate) fn new(p: Arc<Pisces>, entry: Arc<TaskEntry>, args: Vec<Value>) -> Self {
        Self { p, entry, args }
    }

    /// This task's id (the SELF taskid).
    pub fn id(&self) -> TaskId {
        self.entry.id
    }

    /// The parent's taskid ("the user task that requested its initiation").
    pub fn parent(&self) -> TaskId {
        self.entry.parent
    }

    /// The cluster this task runs in.
    pub fn cluster(&self) -> u8 {
        self.entry.id.cluster
    }

    /// The PE this task runs on.
    pub fn pe(&self) -> PeId {
        self.entry.pe
    }

    /// The tasktype name this task was initiated as.
    pub fn tasktype(&self) -> &str {
        &self.entry.tasktype
    }

    /// Arguments passed at INITIATE.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The `i`-th initiation argument.
    pub fn arg(&self, i: usize) -> Result<&Value> {
        self.args.get(i).ok_or_else(|| PiscesError::ArgMismatch {
            expected: format!("at least {} argument(s)", i + 1),
            got: format!("{}", self.args.len()),
        })
    }

    /// The machine this task runs on (for environment tooling).
    pub fn machine(&self) -> &Arc<Pisces> {
        &self.p
    }

    /// Taskid of a cluster's task controller (given to every task at
    /// initiation, per Section 6).
    pub fn tcontr(&self, cluster: u8) -> Result<TaskId> {
        self.p.tcontr(cluster)
    }

    /// Runtime-call prologue: observe kill/shutdown/time-limit, occupy the
    /// PE, charge ticks.
    pub(crate) fn enter(&self, ticks: u64) -> Result<CpuGuard<'_>> {
        self.enter_on(self.entry.pe, ticks)
    }

    pub(crate) fn enter_on(&self, pe: PeId, ticks: u64) -> Result<CpuGuard<'_>> {
        if self.p.is_down() {
            return Err(PiscesError::MachineDown);
        }
        if self.entry.killed() {
            return Err(PiscesError::Killed);
        }
        let guard = match self.p.sub.pe(pe).acquire_cpu() {
            Ok(g) => g,
            Err(e) => return Err(self.p.attach_fault_event(e.into())),
        };
        let now = self.p.sub.tick(pe, ticks);
        if let Some(limit) = self.p.config.time_limit_ticks {
            if now > limit {
                return Err(PiscesError::TimeLimit);
            }
        }
        Ok(guard)
    }

    /// Charge `ticks` of computation to this task's PE (how user code
    /// accounts for its work in virtual time).
    pub fn work(&self, ticks: u64) -> Result<()> {
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Compute);
        let _cpu = self.enter(ticks)?;
        Ok(())
    }

    /// Write a line on this PE's terminal (development convenience; the
    /// portable way to reach the user is `send(To::User, …)`).
    pub fn println(&self, line: impl Into<String>) {
        self.p.sub.pe(self.entry.pe).console.write_line(line);
    }

    fn resolve(&self, to: To) -> Result<TaskId> {
        match to {
            To::Parent => Ok(self.entry.parent),
            To::Myself => Ok(self.entry.id),
            To::Sender => self.entry.last_sender.lock().ok_or_else(|| {
                PiscesError::Internal("SENDER used before any message was accepted".into())
            }),
            To::User => self.p.user_controller_for(self.cluster()),
            To::Task(t) => Ok(t),
            To::TaskController(c) => self.p.tcontr(c),
        }
    }

    /// `TO <taskid> SEND <message type>(<args>)`.
    pub fn send(&self, to: To, mtype: &str, args: Vec<Value>) -> Result<()> {
        let target = self.resolve(to)?;
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Send);
        let _cpu = self.enter(0)?;
        self.p
            .send_raw(self.entry.id, self.entry.pe, target, mtype, &args, false)
    }

    /// `TO ALL [CLUSTER <number>] SEND …`: broadcast to every user task in
    /// the cluster (or everywhere), excluding this task. Returns the
    /// number of deliveries.
    pub fn send_all(&self, cluster: Option<u8>, mtype: &str, args: Vec<Value>) -> Result<usize> {
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Send);
        let _cpu = self.enter(0)?;
        self.p
            .broadcast(self.entry.id, self.entry.pe, cluster, mtype, &args)
    }

    /// `ON <cluster> INITIATE <tasktype>(<args>)`.
    ///
    /// As in the paper, this "does not directly cause initiation of the
    /// new task — it simply causes a message to be sent to the task
    /// controller of the specified cluster", which assigns a slot when one
    /// is available. The new task's id reaches this task only if the child
    /// chooses to send a message (typically to PARENT).
    pub fn initiate(&self, w: Where, tasktype: &str, args: Vec<Value>) -> Result<()> {
        let cluster = self.p.resolve_where(self.cluster(), w)?;
        let controller = self.p.tcontr(cluster)?;
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Send);
        let _cpu = self.enter(cost::INITIATE_REQUEST)?;
        let mut full = vec![Value::Str(tasktype.to_string())];
        full.extend(args);
        self.p.note_init_sent(cluster);
        let r = self.p.send_raw(
            self.entry.id,
            self.entry.pe,
            controller,
            sysmsg::INIT,
            &full,
            false,
        );
        if r.is_err() {
            self.p.note_init_handled(cluster);
        } else {
            RunStats::bump(&self.p.stats.tasks_initiated);
        }
        r
    }

    /// Begin an `ACCEPT … END ACCEPT` statement.
    pub fn accept(&self) -> AcceptBuilder<'_> {
        AcceptBuilder::new(self)
    }

    // ------------------------------------------------------------------
    // Shared variables and locks (used directly or through a force)
    // ------------------------------------------------------------------

    /// Access (creating on first use) the SHARED COMMON block `/name/` of
    /// `words` 64-bit words. All force members of this task see the same
    /// block.
    pub fn shared_common(&self, name: &str, words: usize) -> Result<SharedBlock> {
        self.shared_common_on(self.entry.pe, name, words)
    }

    pub(crate) fn shared_common_on(
        &self,
        pe: PeId,
        name: &str,
        words: usize,
    ) -> Result<SharedBlock> {
        if words == 0 {
            return Err(PiscesError::BadConfiguration(
                "SHARED COMMON block of zero words".into(),
            ));
        }
        let _cpu = self.enter_on(pe, 2)?;
        let mut map = self.entry.shared_commons.lock();
        if let Some(&(h, w)) = map.get(name) {
            if w != words {
                return Err(PiscesError::Internal(format!(
                    "SHARED COMMON /{name}/ declared with {words} words but exists with {w}"
                )));
            }
            return Ok(SharedBlock::new(self.p.sub.clone(), h, w, name.into()));
        }
        let h = self.p.pool_alloc(pe, words * 8, ShmTag::SharedCommon)?;
        map.insert(name.to_string(), (h, words));
        Ok(SharedBlock::new(self.p.sub.clone(), h, words, name.into()))
    }

    /// Access (creating on first use) the LOCK variable `name`.
    pub fn lock_var(&self, name: &str) -> Result<LockVar> {
        self.lock_var_on(self.entry.pe, name)
    }

    pub(crate) fn lock_var_on(&self, pe: PeId, name: &str) -> Result<LockVar> {
        let _cpu = self.enter_on(pe, 1)?;
        let mut map = self.entry.locks.lock();
        if let Some(&h) = map.get(name) {
            return Ok(LockVar::new(self.p.sub.clone(), h, name.into()));
        }
        let h = self.p.pool_alloc(pe, 8, ShmTag::SharedCommon)?;
        map.insert(name.to_string(), h);
        Ok(LockVar::new(self.p.sub.clone(), h, name.into()))
    }

    // ------------------------------------------------------------------
    // Windows (Section 8)
    // ------------------------------------------------------------------

    /// Register a local array (row-major, `rows`×`cols`) for window
    /// access; returns a window over the whole array. "Any task may
    /// create windows on one of its local arrays."
    pub fn register_array(&self, data: &[f64], rows: usize, cols: usize) -> Result<Window> {
        let _cpu = self.enter(0)?;
        self.p.register_array(&self.entry, data, rows, cols)
    }

    /// Create an array on secondary storage, owned by the file controller
    /// ("windows also provide a uniform access method for large arrays on
    /// secondary storage").
    pub fn create_file_array(
        &self,
        path: &str,
        data: &[f64],
        rows: usize,
        cols: usize,
    ) -> Result<Window> {
        let _cpu = self.enter(0)?;
        self.p.create_file_array(path, data, rows, cols)
    }

    /// Open a window over an existing file array.
    pub fn open_file_array(&self, path: &str) -> Result<Window> {
        let _cpu = self.enter(0)?;
        self.p.open_file_array(path)
    }

    /// Read a copy of the data visible in a window into a local vector
    /// (row-major). One batched transfer: a single strided gather over
    /// the arena, a single allocation, a single cost-model charge. See
    /// [`crate::transfer`].
    pub fn window_get(&self, w: &Window) -> Result<Vec<f64>> {
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Transfer);
        let _cpu = self.enter(0)?;
        self.p.window_get(self.entry.pe, w)
    }

    /// Write data (row-major, exactly `w.len()` elements) through a
    /// window as one batched transfer.
    pub fn window_put(&self, w: &Window, data: &[f64]) -> Result<()> {
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Transfer);
        let _cpu = self.enter(0)?;
        self.p.window_put(self.entry.pe, w, data)
    }

    /// Copy `src`'s contents into `dst` (same shape required). Between
    /// two resident arrays this runs arena-to-arena without staging.
    pub fn window_move(&self, src: &Window, dst: &Window) -> Result<()> {
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Transfer);
        let _cpu = self.enter(0)?;
        self.p.window_move(self.entry.pe, src, dst)
    }

    /// Post an asynchronous bulk read of `w`. The window is snapshotted
    /// into a pool-backed staging buffer now; call [`PendingGet::wait`]
    /// to collect the data. Posting the next transfer before waiting on
    /// the current one double-buffers communication against computation.
    pub fn window_get_async(&self, w: &Window) -> Result<PendingGet> {
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Transfer);
        let _cpu = self.enter(0)?;
        self.p.window_get_start(self.entry.pe, w)
    }

    /// Post an asynchronous bulk write of `data` through `w`; the data
    /// is staged now and scattered when [`PendingPut::wait`] is called.
    pub fn window_put_async(&self, w: &Window, data: &[f64]) -> Result<PendingPut> {
        let _act = self.p.activity(self.entry.pe, self.entry.id, Activity::Transfer);
        let _cpu = self.enter(0)?;
        self.p.window_put_start(self.entry.pe, w, data)
    }

    /// Ship the contents of `w` to another task as ONE message: the
    /// window descriptor plus its dense row-major payload. The whole
    /// sub-array crosses the link as a single SEND, so the fault layer
    /// sees exactly one link event (one possible drop, one FAULT$
    /// notice) per bulk transfer instead of one per row.
    pub fn window_send(&self, to: To, mtype: &str, w: &Window) -> Result<()> {
        let data = self.window_get(w)?;
        self.send(to, mtype, vec![Value::Window(w.clone()), Value::RealArray(data)])
    }

    /// Scatter a message built by [`TaskCtx::window_send`] into `dst`
    /// (which must have the sender's window shape). Returns the number
    /// of elements written.
    pub fn window_receive_into(&self, msg: &Message, dst: &Window) -> Result<usize> {
        let (src, data) = msg.window_payload()?;
        if !src.same_shape(dst) {
            return Err(crate::window::WindowError::ShapeMismatch {
                src: (src.row_count(), src.col_count()),
                dst: (dst.row_count(), dst.col_count()),
            }
            .into());
        }
        self.window_put(dst, data)?;
        Ok(data.len())
    }

}

// ----------------------------------------------------------------------
// ACCEPT
// ----------------------------------------------------------------------

/// How many messages of one type an ACCEPT will process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Quota {
    /// No per-type bound (bounded by the statement's total count).
    Unbounded,
    /// An individual count for this type.
    Count(usize),
    /// ALL: "all messages of that type that have been received".
    Drain,
}

/// A boxed HANDLER subroutine invoked per accepted message.
type Handler<'a> = Box<dyn FnMut(&Message) -> Result<()> + 'a>;

struct AcceptEntry<'a> {
    mtype: String,
    quota: Quota,
    taken: usize,
    handler: Option<Handler<'a>>,
}

/// Result of an ACCEPT statement.
#[derive(Debug, Clone, Default)]
pub struct AcceptOutcome {
    counts: HashMap<String, usize>,
    /// Whether the statement ended through its DELAY clause.
    pub timed_out: bool,
}

impl AcceptOutcome {
    /// Messages of `mtype` processed by this ACCEPT.
    pub fn count(&self, mtype: &str) -> usize {
        self.counts.get(mtype).copied().unwrap_or(0)
    }

    /// Total messages processed.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

/// Builder for an `ACCEPT … END ACCEPT` statement.
///
/// A well-formed statement needs a completion rule: either a statement
/// total ([`AcceptBuilder::of`]), a per-type count on every non-ALL entry,
/// or only ALL entries (drain without waiting).
pub struct AcceptBuilder<'a> {
    ctx: &'a TaskCtx,
    total: Option<usize>,
    entries: Vec<AcceptEntry<'a>>,
    delay: Option<Duration>,
    timeout_body: Option<Box<dyn FnMut() + 'a>>,
}

impl<'a> AcceptBuilder<'a> {
    fn new(ctx: &'a TaskCtx) -> Self {
        Self {
            ctx,
            total: None,
            entries: Vec::new(),
            delay: None,
            timeout_body: None,
        }
    }

    /// `ACCEPT <number> OF …`: complete after `n` messages of the listed
    /// types have been processed.
    pub fn of(mut self, n: usize) -> Self {
        self.total = Some(n);
        self
    }

    fn push(mut self, mtype: &str, quota: Quota, handler: Option<Handler<'a>>) -> Self {
        self.entries.push(AcceptEntry {
            mtype: mtype.to_string(),
            quota,
            taken: 0,
            handler,
        });
        self
    }

    /// List a SIGNAL message type (counted and discarded when accepted).
    pub fn signal(self, mtype: &str) -> Self {
        self.push(mtype, Quota::Unbounded, None)
    }

    /// SIGNAL type with an individual count.
    pub fn signal_count(self, mtype: &str, n: usize) -> Self {
        self.push(mtype, Quota::Count(n), None)
    }

    /// SIGNAL type with ALL: process every one already received.
    pub fn signal_all(self, mtype: &str) -> Self {
        self.push(mtype, Quota::Drain, None)
    }

    /// List a message type with a HANDLER subroutine: "a message type with
    /// a 'handler' is processed by a HANDLER subroutine before it is
    /// deleted from the in-queue".
    pub fn handle(self, mtype: &str, f: impl FnMut(&Message) -> Result<()> + 'a) -> Self {
        self.push(mtype, Quota::Unbounded, Some(Box::new(f)))
    }

    /// HANDLER type with an individual count.
    pub fn handle_count(
        self,
        mtype: &str,
        n: usize,
        f: impl FnMut(&Message) -> Result<()> + 'a,
    ) -> Self {
        self.push(mtype, Quota::Count(n), Some(Box::new(f)))
    }

    /// HANDLER type with ALL.
    pub fn handle_all(self, mtype: &str, f: impl FnMut(&Message) -> Result<()> + 'a) -> Self {
        self.push(mtype, Quota::Drain, Some(Box::new(f)))
    }

    /// `DELAY <time value>`: give up waiting after `d` (an
    /// [`PiscesError::AcceptTimeout`] is returned since no DELAY body was
    /// given).
    pub fn delay(mut self, d: Duration) -> Self {
        self.delay = Some(d);
        self
    }

    /// `DELAY <time value> THEN <statement sequence>`: on timeout run the
    /// body and return normally with `timed_out` set.
    pub fn delay_then(mut self, d: Duration, f: impl FnMut() + 'a) -> Self {
        self.delay = Some(d);
        self.timeout_body = Some(Box::new(f));
        self
    }

    /// Execute the ACCEPT.
    pub fn run(mut self) -> Result<AcceptOutcome> {
        if self.entries.is_empty() {
            return Err(PiscesError::Internal(
                "ACCEPT statement lists no message types".into(),
            ));
        }
        let needs_completion_rule = self.total.is_none()
            && self
                .entries
                .iter()
                .any(|e| matches!(e.quota, Quota::Unbounded));
        if needs_completion_rule {
            return Err(PiscesError::Internal(
                "ACCEPT needs a total count, per-type counts, or ALL".into(),
            ));
        }

        let ctx = self.ctx;
        let entry = &ctx.entry;
        let _act = ctx.p.activity(entry.pe, entry.id, Activity::Accept);
        let deadline = self.delay.map(|d| Instant::now() + d);
        let mut processed_total = 0usize;

        loop {
            // Epoch before the processing pass: a push that lands while we
            // scan bumps it, so the wait below returns immediately instead
            // of stranding this acceptor until the following message.
            let epoch = entry.inq.epoch();

            // Processing pass: drain every eligible message, oldest first.
            loop {
                if self.total.is_some_and(|t| processed_total >= t) {
                    break;
                }
                let entries = &self.entries;
                let take = entry.inq.take_scanned(|sm| {
                    entries.iter().any(|e| {
                        e.mtype == sm.mtype
                            && match e.quota {
                                Quota::Unbounded | Quota::Drain => true,
                                Quota::Count(n) => e.taken < n,
                            }
                    })
                });
                // Selective accept scans past non-matching messages; the
                // scan depth is the per-accept cost of that linear search.
                ctx.p.metrics.queue_scan_depth.record(take.scanned as u64);
                let Some(stored) = take.msg else { break };

                // Depth seen by this accept: the message just removed plus
                // whatever is still waiting behind it.
                ctx.p
                    .metrics
                    .accept_queue_depth
                    .record(entry.inq.len() as u64 + 1);

                let words = stored.handle.words() as u64;
                let sender = stored.sender;
                let mtype = stored.mtype.clone();
                let cause = stored.cause;
                {
                    let _cpu = ctx.enter(cost::ACCEPT_BASE + cost::ACCEPT_PER_WORD * words)?;
                }
                let args = ctx.p.open_message(&stored, entry.pe)?;
                *entry.last_sender.lock() = Some(sender);

                let idx = self
                    .entries
                    .iter()
                    .position(|e| e.mtype == mtype)
                    .expect("matched entry exists");
                self.entries[idx].taken += 1;
                processed_total += 1;

                RunStats::bump(&ctx.p.stats.messages_accepted);
                let now = ctx.p.sub.pe(entry.pe).clock.now();
                // Same-PE latency is exact; cross-PE compares two
                // unsynchronized clocks and saturates at 0 when they skew.
                ctx.p
                    .metrics
                    .msg_latency
                    .record(now.saturating_sub(stored.sent_ticks));
                // The accept's cause is the MSG-SEND (or MSG-DUP /
                // FAULT-NOTICE) that put this message in flight.
                ctx.p.tracer.emit_causal(
                    TraceEventKind::MsgAccept,
                    entry.id,
                    entry.pe.number(),
                    now,
                    format!("{mtype} <- {sender}"),
                    None,
                    cause,
                );

                let msg = Message {
                    mtype,
                    sender,
                    args,
                };
                match self.entries[idx].handler.as_mut() {
                    Some(h) => {
                        RunStats::bump(&ctx.p.stats.handlers);
                        ctx.p.sub.tick(entry.pe, cost::HANDLER_DISPATCH);
                        h(&msg)?;
                    }
                    None => RunStats::bump(&ctx.p.stats.signals),
                }
            }

            // Completion?
            let complete = match self.total {
                Some(t) => processed_total >= t,
                None => self.entries.iter().all(|e| match e.quota {
                    Quota::Count(n) => e.taken >= n,
                    Quota::Drain => true,
                    Quota::Unbounded => unreachable!("rejected above"),
                }),
            };
            if complete {
                break;
            }
            if ctx.p.is_down() {
                return Err(PiscesError::MachineDown);
            }
            if entry.killed() {
                return Err(PiscesError::Killed);
            }

            // Wait for more traffic (the task is blocked; the CPU guard is
            // not held here, so MMOS can run other slot tasks).
            entry.set_run_state(TaskRunState::Blocked);
            if deadline.is_some() {
                entry.timed_wait.store(true, atomic::Ordering::Relaxed);
            }
            let woke = entry.inq.wait_epoch(epoch, deadline);
            entry.timed_wait.store(false, atomic::Ordering::Relaxed);
            entry.set_run_state(TaskRunState::Ready);
            if !woke {
                RunStats::bump(&ctx.p.stats.accept_timeouts);
                match self.timeout_body.as_mut() {
                    Some(f) => {
                        f();
                        let mut out = self.finish();
                        out.timed_out = true;
                        return Ok(out);
                    }
                    None => return Err(PiscesError::AcceptTimeout),
                }
            }
        }
        Ok(self.finish())
    }

    fn finish(&self) -> AcceptOutcome {
        AcceptOutcome {
            counts: self
                .entries
                .iter()
                .map(|e| (e.mtype.clone(), e.taken))
                .collect(),
            timed_out: false,
        }
    }
}
