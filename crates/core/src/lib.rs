//! # pisces-core — the PISCES 2 virtual machine and run-time library
//!
//! A Rust reproduction of the runtime described in:
//!
//! > Terrence W. Pratt, *The PISCES 2 Parallel Programming Environment*,
//! > Proc. 1987 International Conference on Parallel Processing.
//!
//! PISCES 2 presents applications with a carefully defined **virtual
//! machine** — a set of *clusters*, each offering *slots* in which *tasks*
//! run — deliberately decoupled from the underlying hardware. The runtime
//! talks to the machine through the [`Substrate`] trait; a
//! [`SubstrateSpec`] in the configuration picks the backend (the
//! shared-bus FLEX/32 modelled on the NASA Langley machine, or a
//! 2^d-node local-memory hypercube with routed links). Programs are
//! dynamic sets of tasks communicating by **asynchronous message passing**;
//! medium-granularity parallelism comes from **forces** (replicated task
//! bodies with shared variables, barriers, critical regions, and scheduled
//! parallel loops); **windows** provide parallel partitioning of and remote
//! access to arrays; and the programmer controls the **mapping** of the
//! virtual machine onto PEs through a configuration.
//!
//! ## Quick start
//!
//! ```
//! use pisces_core::prelude::*;
//!
//! let pisces = Pisces::boot(MachineConfig::simple(2, 4)).unwrap();
//!
//! pisces.register("hello", |ctx: &TaskCtx| {
//!     ctx.send(To::Parent, "GREETING", args!["hello from", ctx.id()])?;
//!     Ok(())
//! });
//! pisces.register("main", |ctx: &TaskCtx| {
//!     ctx.initiate(Where::Other, "hello", vec![])?;
//!     let got = ctx.accept().of(1).signal("GREETING").run()?;
//!     assert_eq!(got.count("GREETING"), 1);
//!     Ok(())
//! });
//!
//! pisces.initiate_top_level(1, "main", vec![]).unwrap();
//! assert!(pisces.wait_quiescent(std::time::Duration::from_secs(10)));
//! pisces.shutdown();
//! ```
//!
//! To run the same program on a different machine, change only the
//! configuration:
//!
//! ```
//! use pisces_core::prelude::*;
//!
//! let spec: SubstrateSpec = "hypercube:4".parse().unwrap();
//! let pisces = Pisces::boot(MachineConfig::simple_on(spec, 2, 4)).unwrap();
//! pisces.shutdown();
//! ```

pub mod config;
pub mod context;
pub(crate) mod controller;
pub mod cost;
pub mod error;
pub mod force;
pub mod machine;
pub mod message;
pub mod metrics;
pub mod msgqueue;
pub mod shared;
pub mod spans;
pub mod stats;
pub mod substrate;
pub mod task;
pub mod taskid;
pub mod telemetry;
pub mod trace;
pub mod transfer;
pub mod value;
pub mod window;

/// Everything a PISCES application typically needs.
pub mod prelude {
    pub use crate::args;
    pub use crate::config::{ClusterConfig, MachineConfig};
    pub use crate::context::{AcceptOutcome, TaskCtx, To, Where};
    pub use crate::error::{PiscesError, Result};
    pub use crate::force::{AbortCause, AbortSignal, FailedMember, ForceCtx, ForceOutcome};
    pub use crate::machine::Pisces;
    pub use crate::message::Message;
    pub use crate::metrics::{HistogramSnapshot, MetricsRegistry, TickHistogram};
    pub use crate::msgqueue::{MsgBackend, MsgQueue};
    pub use crate::shared::{LockVar, SharedBlock};
    pub use crate::spans::{JobSpan, SpanPhase};
    pub use crate::stats::{RunStats, StatsSnapshot};
    pub use crate::substrate::{LinkCost, LinkRecord, LinkTraffic, Substrate, SubstrateSpec, Topology};
    pub use crate::task::{FILE_CTRL_ID, USER_ID};
    pub use crate::taskid::TaskId;
    pub use crate::telemetry::{
        Activity, FlightRecorder, SamplingProfiler, TelemetrySettings,
    };
    pub use crate::trace::{TraceEventKind, TraceRecord, TraceSettings, Tracer};
    pub use crate::transfer::{PendingGet, PendingPut};
    pub use crate::value::Value;
    pub use crate::window::{ArrayId, Window, WindowError};
    pub use pisces_substrate::pe::{Pe, PeId, PeKind};
    pub use pisces_substrate::shmem::{ShmHandle, ShmTag};
    pub use pisces_substrate::fault::{FaultEvent, FaultPlan};
}

pub use prelude::*;
