//! Error taxonomy of the PISCES 2 runtime.

use crate::taskid::TaskId;
use crate::window::WindowError;
use pisces_substrate::fault::FaultEvent;
use pisces_substrate::pe::PeError;
use pisces_substrate::shmem::ShmError;

/// Any error the PISCES runtime can report to a task or to the
/// configuration/execution environments.
#[derive(Debug, Clone, PartialEq)]
pub enum PiscesError {
    /// Shared-memory failure (usually exhaustion of the 2.25 MB arena).
    Shm(ShmError),
    /// PE-level failure (bad PE number, local memory exhausted).
    Pe(PeError),
    /// File-system failure on the Unix PEs.
    Fs(pisces_substrate::fs::FsError),
    /// Message sent to a task that does not exist (never initiated, or
    /// already terminated — taskids distinguish reuses of a slot).
    NoSuchTask(TaskId),
    /// INITIATE named a tasktype that was never registered.
    NoSuchTaskType(String),
    /// A cluster number not present in the configuration.
    NoSuchCluster(u8),
    /// The configuration failed validation; human-readable reason.
    BadConfiguration(String),
    /// This task was killed from the execution environment (menu option 2).
    Killed,
    /// A window operation was invalid. The typed payload says exactly how
    /// (bounds outside the array or parent, unknown array, shape/length
    /// mismatch); see [`WindowError`].
    Window(WindowError),
    /// Message arguments did not match what the receiver expected.
    ArgMismatch {
        /// What the receiver wanted.
        expected: String,
        /// What the message contained.
        got: String,
    },
    /// The virtual machine has been shut down.
    MachineDown,
    /// The run exceeded the execution time limit from the configuration.
    TimeLimit,
    /// A PE fail-stopped (injected fault) and the operation could not
    /// proceed or recover. Carries the fault event that killed the PE when
    /// the injector recorded one.
    PeFailed {
        /// The failed PE's number.
        pe: u16,
        /// The injected fault event, if the fault layer recorded one.
        event: Option<FaultEvent>,
    },
    /// ACCEPT ended by DELAY timeout and the statement had no DELAY body.
    AcceptTimeout,
    /// Internal invariant violation — a bug in the runtime itself.
    Internal(String),
}

impl std::fmt::Display for PiscesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PiscesError::Shm(e) => write!(f, "shared memory: {e}"),
            PiscesError::Pe(e) => write!(f, "processing element: {e}"),
            PiscesError::Fs(e) => write!(f, "file system: {e}"),
            PiscesError::NoSuchTask(t) => write!(f, "no such task: {t}"),
            PiscesError::NoSuchTaskType(n) => write!(f, "no such tasktype: {n}"),
            PiscesError::NoSuchCluster(c) => write!(f, "no such cluster: {c}"),
            PiscesError::BadConfiguration(r) => write!(f, "bad configuration: {r}"),
            PiscesError::Killed => write!(f, "task killed"),
            PiscesError::Window(e) => write!(f, "bad window: {e}"),
            PiscesError::ArgMismatch { expected, got } => {
                write!(f, "argument mismatch: expected {expected}, got {got}")
            }
            PiscesError::MachineDown => write!(f, "virtual machine is down"),
            PiscesError::TimeLimit => write!(f, "execution time limit exceeded"),
            PiscesError::PeFailed { pe, event } => match event {
                Some(ev) => write!(f, "PE{pe} fail-stopped ({ev})"),
                None => write!(f, "PE{pe} fail-stopped"),
            },
            PiscesError::AcceptTimeout => write!(f, "ACCEPT timed out with no DELAY body"),
            PiscesError::Internal(r) => write!(f, "internal runtime error: {r}"),
        }
    }
}

impl std::error::Error for PiscesError {}

impl From<ShmError> for PiscesError {
    fn from(e: ShmError) -> Self {
        PiscesError::Shm(e)
    }
}

impl From<PeError> for PiscesError {
    fn from(e: PeError) -> Self {
        match e {
            // Fail-stop surfaces as the dedicated variant so callers can
            // match on it; the machine layer attaches the fault event.
            PeError::PeFailed { pe } => PiscesError::PeFailed { pe, event: None },
            other => PiscesError::Pe(other),
        }
    }
}

impl From<pisces_substrate::fs::FsError> for PiscesError {
    fn from(e: pisces_substrate::fs::FsError) -> Self {
        PiscesError::Fs(e)
    }
}

impl From<WindowError> for PiscesError {
    fn from(e: WindowError) -> Self {
        PiscesError::Window(e)
    }
}

/// Result alias used across the runtime.
pub type Result<T> = std::result::Result<T, PiscesError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PiscesError::NoSuchTaskType("worker".into());
        assert!(e.to_string().contains("worker"));
        let e = PiscesError::ArgMismatch {
            expected: "Int".into(),
            got: "Real".into(),
        };
        assert!(e.to_string().contains("Int") && e.to_string().contains("Real"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let shm: PiscesError = ShmError::ZeroSize.into();
        assert!(matches!(shm, PiscesError::Shm(_)));
        let pe: PiscesError = PeError::NoSuchPe(0).into();
        assert!(matches!(pe, PiscesError::Pe(_)));
        let win: PiscesError = WindowError::BadPacket { words: 2 }.into();
        assert!(matches!(
            win,
            PiscesError::Window(WindowError::BadPacket { words: 2 })
        ));
        assert!(win.to_string().contains("bad window"));
    }
}
