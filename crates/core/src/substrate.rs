//! Substrate selection: which simulated machine the VM boots on.
//!
//! The PISCES 2 virtual machine was "deliberately decoupled from the
//! underlying hardware" (paper, Section 3); this module is where that
//! decoupling happens in the reproduction. The runtime talks to the
//! machine exclusively through [`Substrate`] (re-exported from
//! `pisces-substrate`), and a [`SubstrateSpec`] names which concrete
//! backend to build — the shared-bus FLEX/32 or a 2^d-node hypercube.
//!
//! This file is the **only** place in `pisces-core` that names a concrete
//! backend crate (`flex32`, `pisces3-hypercube`); everything else in the
//! runtime is written against the trait and the substrate-neutral types
//! ([`PeId`], [`Topology`], [`LinkCost`], …). A source-scan test enforces
//! the confinement.

use crate::error::{PiscesError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

pub use pisces_substrate::{
    LinkCost, LinkRecord, LinkTraffic, MachineCore, Substrate, Topology,
};

/// PEs on the historical FLEX/32 at NASA Langley.
pub const FLEX32_DEFAULT_PES: u16 = flex32::NUM_PES as u16;

/// Default hypercube dimension (32 nodes) when `--substrate hypercube`
/// gives no `:dim`.
pub const HYPERCUBE_DEFAULT_DIM: u32 = 5;

/// Largest cube the hypercube model supports (2^10 = 1024 nodes).
pub const HYPERCUBE_MAX_DIM: u32 = 10;

/// Declarative choice of machine backend, carried by
/// [`crate::config::MachineConfig`] and parsed from `--substrate` flags.
///
/// Textual form (accepted by [`FromStr`], produced by [`fmt::Display`]):
/// `flex32`, `flex32:256` (PE count), `hypercube`, `hypercube:7`
/// (dimension — 2^7 = 128 nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "name", rename_all = "lowercase")]
pub enum SubstrateSpec {
    /// The shared-bus FLEX/32 family: PEs 1–2 run Unix, the rest MMOS.
    Flex32 {
        /// Total PEs (historical machine: 20; minimum 3).
        pes: u16,
    },
    /// A 2^dim-node local-memory hypercube with e-cube routed links.
    Hypercube {
        /// Cube dimension, 1–10.
        dim: u32,
    },
}

impl SubstrateSpec {
    /// Spec named by the `PISCES_SUBSTRATE` environment variable, if set
    /// and valid. Mirrors `PISCES_MSG_BACKEND`: the whole existing test
    /// and chaos suite can be re-run on a different machine with no code
    /// changes.
    pub fn from_env() -> Option<Self> {
        std::env::var("PISCES_SUBSTRATE").ok()?.parse().ok()
    }
}

/// The historical 20-PE FLEX/32 unless `PISCES_SUBSTRATE` overrides it,
/// so configurations saved before the substrate redesign load unchanged.
impl Default for SubstrateSpec {
    fn default() -> Self {
        Self::from_env().unwrap_or(SubstrateSpec::Flex32 {
            pes: FLEX32_DEFAULT_PES,
        })
    }
}

impl fmt::Display for SubstrateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstrateSpec::Flex32 { pes } => write!(f, "flex32:{pes}"),
            SubstrateSpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
        }
    }
}

impl FromStr for SubstrateSpec {
    type Err = PiscesError;

    fn from_str(s: &str) -> Result<Self> {
        let bad = |m: String| Err(PiscesError::BadConfiguration(m));
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        match name {
            "flex32" | "flex" => {
                let pes = match param {
                    None => FLEX32_DEFAULT_PES,
                    Some(p) => match p.parse::<u16>() {
                        Ok(n) if n >= 3 && n as usize <= pisces_substrate::pe::MAX_PE as usize => n,
                        _ => {
                            return bad(format!(
                                "flex32 PE count {p:?} must be 3..={}",
                                pisces_substrate::pe::MAX_PE
                            ))
                        }
                    },
                };
                Ok(SubstrateSpec::Flex32 { pes })
            }
            "hypercube" | "cube" => {
                let dim = match param {
                    None => HYPERCUBE_DEFAULT_DIM,
                    Some(p) => match p.parse::<u32>() {
                        Ok(d) if (1..=HYPERCUBE_MAX_DIM).contains(&d) => d,
                        _ => {
                            return bad(format!(
                                "hypercube dimension {p:?} must be 1..={HYPERCUBE_MAX_DIM}"
                            ))
                        }
                    },
                };
                Ok(SubstrateSpec::Hypercube { dim })
            }
            other => bad(format!(
                "unknown substrate {other:?} (expected flex32[:pes] or hypercube[:dim])"
            )),
        }
    }
}

impl SubstrateSpec {
    /// The machine shape this spec describes, without paying to build the
    /// machine. Configuration validation runs against this.
    pub fn topology(&self) -> Topology {
        match *self {
            SubstrateSpec::Flex32 { pes } => flex32::Flex32::topology_for(pes),
            SubstrateSpec::Hypercube { dim } => {
                pisces3_hypercube::HypercubeMachine::topology_for(dim)
            }
        }
    }

    /// Build the machine. The only constructor call sites for concrete
    /// backends inside `pisces-core`.
    pub fn build(&self) -> Arc<dyn Substrate> {
        match *self {
            SubstrateSpec::Flex32 { pes } => flex32::Flex32::shared_with_pes(pes),
            SubstrateSpec::Hypercube { dim } => {
                pisces3_hypercube::HypercubeMachine::new_shared(dim)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_historical_flex() {
        // Under a PISCES_SUBSTRATE override (the CI substrate matrix)
        // the default legitimately follows the environment instead.
        let s = SubstrateSpec::default();
        match SubstrateSpec::from_env() {
            Some(env) => assert_eq!(s, env),
            None => {
                assert_eq!(s, SubstrateSpec::Flex32 { pes: 20 });
                let t = s.topology();
                assert_eq!((t.name, t.num_pes, t.first_task_pe), ("flex32", 20, 3));
            }
        }
    }

    #[test]
    fn parses_both_families_with_and_without_params() {
        assert_eq!(
            "flex32".parse::<SubstrateSpec>().unwrap(),
            SubstrateSpec::Flex32 { pes: 20 }
        );
        assert_eq!(
            "flex32:256".parse::<SubstrateSpec>().unwrap(),
            SubstrateSpec::Flex32 { pes: 256 }
        );
        assert_eq!(
            "hypercube".parse::<SubstrateSpec>().unwrap(),
            SubstrateSpec::Hypercube {
                dim: HYPERCUBE_DEFAULT_DIM
            }
        );
        assert_eq!(
            "hypercube:7".parse::<SubstrateSpec>().unwrap(),
            SubstrateSpec::Hypercube { dim: 7 }
        );
    }

    #[test]
    fn rejects_nonsense() {
        assert!("flex32:2".parse::<SubstrateSpec>().is_err());
        assert!("flex32:0".parse::<SubstrateSpec>().is_err());
        assert!("hypercube:11".parse::<SubstrateSpec>().is_err());
        assert!("hypercube:zero".parse::<SubstrateSpec>().is_err());
        assert!("transputer".parse::<SubstrateSpec>().is_err());
    }

    #[test]
    fn display_roundtrips_through_fromstr() {
        for s in [
            SubstrateSpec::Flex32 { pes: 20 },
            SubstrateSpec::Flex32 { pes: 256 },
            SubstrateSpec::Hypercube { dim: 7 },
        ] {
            assert_eq!(s.to_string().parse::<SubstrateSpec>().unwrap(), s);
        }
    }

    #[test]
    fn topology_matches_the_built_machine() {
        for s in [
            SubstrateSpec::Flex32 { pes: 20 },
            SubstrateSpec::Flex32 { pes: 64 },
            SubstrateSpec::Hypercube { dim: 4 },
        ] {
            assert_eq!(&s.topology(), s.build().topology());
        }
    }

    #[test]
    fn flex32_is_confined_to_this_module() {
        // The API-redesign contract: no concrete backend name appears in
        // pisces-core outside src/substrate.rs. Source scan; resolves the
        // source dir both from a workspace-root cwd (offline rustc, CI
        // workspace `cargo test`) and a package cwd (`cargo test -p`).
        // Walk up from the cwd: handles a workspace-root cwd (CI `cargo
        // test`), a package cwd (`cargo test -p`), and the offline
        // harness running binaries out of .verify/out.
        let cwd = std::env::current_dir().unwrap();
        let dir = cwd
            .ancestors()
            .flat_map(|a| [a.join("crates/core/src"), a.join("src")])
            .find(|d| d.join("machine.rs").exists() && d.join("substrate.rs").exists())
            .expect("cannot locate pisces-core sources from cwd");
        let mut stack = vec![dir];
        let mut scanned = 0;
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                if path.extension().and_then(|e| e.to_str()) != Some("rs")
                    || path.file_name().and_then(|n| n.to_str()) == Some("substrate.rs")
                {
                    continue;
                }
                let text = std::fs::read_to_string(&path).unwrap();
                assert!(
                    !text.contains("flex32") && !text.contains("pisces3_hypercube"),
                    "{} names a concrete substrate backend; only src/substrate.rs may",
                    path.display()
                );
                scanned += 1;
            }
        }
        assert!(scanned > 10, "scan found too few sources ({scanned})");
    }
}
