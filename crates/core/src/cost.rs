//! Virtual-time costs of runtime services, in PE clock ticks.
//!
//! The paper reports no instruction-level timings ("No detailed timing
//! measurements have yet been taken", Section 13), so these constants are a
//! self-consistent cost model rather than calibrated numbers: each runtime
//! service charges its PE's tick clock an amount proportional to the work a
//! FLEX-class implementation would do (fixed kernel-entry overhead plus a
//! per-word copying term where data moves). All virtual-time experiment
//! *shapes* (who wins, where crossovers fall) depend only on these ratios
//! being sane, not on their absolute values.

/// SEND fixed overhead (allocate header, link into in-queue).
pub const SEND_BASE: u64 = 20;
/// SEND per packet word copied into shared memory.
pub const SEND_PER_WORD: u64 = 1;
/// ACCEPT fixed overhead per accepted message (unlink, bookkeeping).
pub const ACCEPT_BASE: u64 = 15;
/// Extra cost to dispatch a HANDLER subroutine (vs counting a signal).
pub const HANDLER_DISPATCH: u64 = 10;
/// ACCEPT per packet word copied out of shared memory.
pub const ACCEPT_PER_WORD: u64 = 1;
/// Cost charged to the requester for executing an INITIATE statement
/// (builds and sends the request to the task controller).
pub const INITIATE_REQUEST: u64 = 30;
/// Cost charged to the controller's PE for actually creating a task
/// (process creation is an MMOS kernel call).
pub const TASK_SPAWN: u64 = 120;
/// Cost charged at task termination.
pub const TASK_TERM: u64 = 60;
/// FORCESPLIT fixed overhead on the primary.
pub const FORCESPLIT_BASE: u64 = 80;
/// FORCESPLIT per member started (process creation on a secondary PE).
pub const FORCESPLIT_PER_MEMBER: u64 = 40;
/// Barrier arrival/release bookkeeping per member.
pub const BARRIER: u64 = 8;
/// Acquiring an unlocked lock.
pub const LOCK: u64 = 4;
/// Releasing a lock.
pub const UNLOCK: u64 = 3;
/// One dispatch of a self-scheduled loop iteration (shared counter bump).
pub const SELFSCHED_DISPATCH: u64 = 3;
/// One dispatch of a prescheduled loop iteration (local arithmetic only).
pub const PRESCHED_DISPATCH: u64 = 1;
/// Window operation fixed overhead (request message to the owner).
pub const WINDOW_BASE: u64 = 25;
/// Window transfer cost per 64-bit word, charged to *both* the owner's PE
/// and the requester's PE.
pub const WINDOW_PER_WORD: u64 = 1;
/// Registering an array for window access.
pub const WINDOW_REGISTER: u64 = 20;

// The ratios the experiments rely on; if someone retunes the model,
// these compile-time checks keep the reproduced shapes meaningful.
const _: () = {
    assert!(
        TASK_SPAWN > FORCESPLIT_PER_MEMBER,
        "tasks are heavier than force members"
    );
    assert!(
        FORCESPLIT_PER_MEMBER > BARRIER,
        "splitting dwarfs a barrier"
    );
    assert!(
        SELFSCHED_DISPATCH > PRESCHED_DISPATCH,
        "self-scheduling pays for its dispatch"
    );
    assert!(SEND_BASE > ACCEPT_BASE, "send does the allocation");
    assert!(WINDOW_BASE > SEND_PER_WORD, "window setup is not free");
    assert!(HANDLER_DISPATCH > 0 && LOCK > UNLOCK);
};
