//! SHARED COMMON blocks and LOCK variables.
//!
//! "SHARED COMMON blocks: an ordinary Fortran COMMON block, but allocated
//! in shared memory so that all force members see the same block. …
//! LOCK variables: variables whose values are 'locks' that may be used to
//! control entry and exit of CRITICAL statements." (paper, Section 7)
//!
//! Both live in the FLEX shared-memory arena ("an area is used for SHARED
//! COMMON blocks declared in tasks that split into forces; SHARED COMMON
//! blocks are allocated statically in shared memory", Section 11). A block
//! is a vector of 64-bit words; typed accessors view a word as INTEGER or
//! REAL. Accesses are word-atomic (relaxed), which models the FLEX shared
//! bus: racing force members never tear a word, and ordering beyond that is
//! the program's job — via BARRIER and CRITICAL, as the paper intends.

use crate::error::{PiscesError, Result};
use pisces_substrate::shmem::ShmHandle;
use crate::substrate::Substrate;
use std::sync::Arc;

/// A named SHARED COMMON block: `words` 64-bit words in shared memory,
/// visible to every member of the force (they all hold clones of the same
/// block value).
#[derive(Debug, Clone)]
pub struct SharedBlock {
    sub: Arc<dyn Substrate>,
    handle: ShmHandle,
    words: usize,
    name: String,
}

impl SharedBlock {
    pub(crate) fn new(sub: Arc<dyn Substrate>, handle: ShmHandle, words: usize, name: String) -> Self {
        Self {
            sub,
            handle,
            words,
            name,
        }
    }

    /// The block's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Length in words.
    pub fn len(&self) -> usize {
        self.words
    }

    /// A zero-length block cannot be created; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.words == 0
    }

    /// Read word `i` as INTEGER.
    pub fn get_int(&self, i: usize) -> Result<i64> {
        Ok(self.sub.shmem().load(self.handle, i)? as i64)
    }

    /// Write word `i` as INTEGER.
    pub fn set_int(&self, i: usize, v: i64) -> Result<()> {
        Ok(self.sub.shmem().store(self.handle, i, v as u64)?)
    }

    /// Read word `i` as REAL.
    pub fn get_real(&self, i: usize) -> Result<f64> {
        Ok(f64::from_bits(self.sub.shmem().load(self.handle, i)?))
    }

    /// Write word `i` as REAL.
    pub fn set_real(&self, i: usize, v: f64) -> Result<()> {
        Ok(self.sub.shmem().store(self.handle, i, v.to_bits())?)
    }

    /// Atomically add to an INTEGER word, returning the previous value.
    /// (A convenience the 1987 system would express as a tiny CRITICAL
    /// region; exposed directly because the hardware we model has it.)
    pub fn fetch_add_int(&self, i: usize, delta: i64) -> Result<i64> {
        Ok(self.sub.shmem().fetch_add(self.handle, i, delta as u64)? as i64)
    }

    /// Atomically add to a REAL word via compare-exchange, returning the
    /// new value. Safe under contention from any number of force members.
    pub fn add_real(&self, i: usize, delta: f64) -> Result<f64> {
        loop {
            let cur_bits = self.sub.shmem().load(self.handle, i)?;
            let new = f64::from_bits(cur_bits) + delta;
            match self
                .sub
                .shmem()
                .compare_exchange(self.handle, i, cur_bits, new.to_bits())?
            {
                Ok(_) => return Ok(new),
                Err(_) => std::hint::spin_loop(),
            }
        }
    }

    /// Copy a slice of REAL words out of the block.
    pub fn read_reals(&self, from: usize, n: usize) -> Result<Vec<f64>> {
        let mut buf = vec![0u64; n];
        self.sub.shmem().read_words(self.handle, from, &mut buf)?;
        Ok(buf.into_iter().map(f64::from_bits).collect())
    }

    /// Copy REAL values into the block starting at word `from`.
    pub fn write_reals(&self, from: usize, vals: &[f64]) -> Result<()> {
        let words: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        Ok(self.sub.shmem().write_words(self.handle, from, &words)?)
    }
}

/// The two states of a LOCK variable's word.
const UNLOCKED: u64 = 0;
const LOCKED: u64 = 1;

/// A LOCK variable: one word in shared memory controlling entry to
/// CRITICAL statements. "When a force member reaches this statement, the
/// lock value of the variable is fetched. If 'unlocked', it is 'locked' and
/// the statement sequence is executed; otherwise the force member waits
/// until the lock value becomes unlocked." (Section 7d)
#[derive(Debug, Clone)]
pub struct LockVar {
    sub: Arc<dyn Substrate>,
    handle: ShmHandle,
    name: String,
}

impl LockVar {
    pub(crate) fn new(sub: Arc<dyn Substrate>, handle: ShmHandle, name: String) -> Self {
        Self { sub, handle, name }
    }

    /// The lock variable's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Try once to take the lock. `Ok(true)` if this call locked it.
    pub fn try_lock(&self) -> Result<bool> {
        Ok(self
            .sub
            .shmem()
            .compare_exchange(self.handle, 0, UNLOCKED, LOCKED)?
            .is_ok())
    }

    /// Spin (with OS yields) until the lock is taken. Returns the number of
    /// retries, which callers convert into wait accounting.
    pub fn lock_spin(&self) -> Result<u64> {
        let mut retries = 0u64;
        while !self.try_lock()? {
            retries += 1;
            if retries.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        Ok(retries)
    }

    /// Release the lock. Releasing an unlocked lock is reported as an
    /// internal error: the paper's CRITICAL construct makes it impossible,
    /// so reaching it means runtime misuse.
    pub fn unlock(&self) -> Result<()> {
        match self
            .sub
            .shmem()
            .compare_exchange(self.handle, 0, LOCKED, UNLOCKED)?
        {
            Ok(_) => Ok(()),
            Err(_) => Err(PiscesError::Internal(format!(
                "unlock of unlocked LOCK variable {}",
                self.name
            ))),
        }
    }

    /// Whether the lock is currently held (snapshot; for displays).
    pub fn is_locked(&self) -> Result<bool> {
        Ok(self.sub.shmem().load(self.handle, 0)? == LOCKED)
    }

    /// Start timing a hold of this (already locked) lock. The returned
    /// guard measures wall-clock hold time for the lock-hold histogram;
    /// the caller still controls unlocking via [`HeldLock::release`].
    pub fn hold(&self) -> HeldLock<'_> {
        HeldLock {
            lock: self,
            since: std::time::Instant::now(),
        }
    }
}

/// Timer over a held [`LockVar`]: created by [`LockVar::hold`] after the
/// lock is taken, consumed by [`HeldLock::release`], which unlocks and
/// reports how long the lock was held.
#[derive(Debug)]
pub struct HeldLock<'a> {
    lock: &'a LockVar,
    since: std::time::Instant,
}

impl HeldLock<'_> {
    /// Time held so far.
    pub fn held_for(&self) -> std::time::Duration {
        self.since.elapsed()
    }

    /// Unlock and return the total hold duration.
    pub fn release(self) -> Result<std::time::Duration> {
        let held = self.since.elapsed();
        self.lock.unlock()?;
        Ok(held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisces_substrate::shmem::ShmTag;

    fn machine() -> Arc<dyn Substrate> {
        crate::substrate::SubstrateSpec::default().build()
    }

    fn block(sub: &Arc<dyn Substrate>, words: usize) -> SharedBlock {
        let h = sub.shmem().alloc(words * 8, ShmTag::SharedCommon).unwrap();
        SharedBlock::new(sub.clone(), h, words, "BLK".into())
    }

    fn lockvar(sub: &Arc<dyn Substrate>) -> LockVar {
        let h = sub.shmem().alloc(8, ShmTag::SharedCommon).unwrap();
        LockVar::new(sub.clone(), h, "L".into())
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let f = machine();
        let b = block(&f, 4);
        b.set_int(0, -7).unwrap();
        b.set_real(1, 2.5).unwrap();
        assert_eq!(b.get_int(0).unwrap(), -7);
        assert_eq!(b.get_real(1).unwrap(), 2.5);
        assert_eq!(b.len(), 4);
        assert!(b.set_int(4, 0).is_err(), "bounds enforced");
    }

    #[test]
    fn fetch_add_int_is_atomic_across_threads() {
        let f = machine();
        let b = block(&f, 1);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    b.fetch_add_int(0, 1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get_int(0).unwrap(), 4000);
    }

    #[test]
    fn add_real_accumulates_under_contention() {
        let f = machine();
        let b = block(&f, 1);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    b.add_real(0, 0.5).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get_real(0).unwrap(), 1000.0);
    }

    #[test]
    fn bulk_reals_roundtrip() {
        let f = machine();
        let b = block(&f, 8);
        b.write_reals(2, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(b.read_reals(2, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(b.write_reals(6, &[0.0; 3]).is_err());
    }

    #[test]
    fn lock_basic_protocol() {
        let f = machine();
        let l = lockvar(&f);
        assert!(!l.is_locked().unwrap());
        assert!(l.try_lock().unwrap());
        assert!(l.is_locked().unwrap());
        assert!(!l.try_lock().unwrap(), "second lock attempt fails");
        l.unlock().unwrap();
        assert!(!l.is_locked().unwrap());
    }

    #[test]
    fn held_lock_times_and_unlocks() {
        let f = machine();
        let l = lockvar(&f);
        assert!(l.try_lock().unwrap());
        let held = l.hold();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(held.held_for() >= std::time::Duration::from_millis(5));
        let total = held.release().unwrap();
        assert!(total >= std::time::Duration::from_millis(5));
        assert!(!l.is_locked().unwrap());
    }

    #[test]
    fn unlock_of_unlocked_is_internal_error() {
        let f = machine();
        let l = lockvar(&f);
        assert!(matches!(l.unlock(), Err(PiscesError::Internal(_))));
    }

    #[test]
    fn lock_provides_mutual_exclusion() {
        let f = machine();
        let l = lockvar(&f);
        let b = block(&f, 1);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    l.lock_spin().unwrap();
                    // Deliberately non-atomic increment under the lock.
                    let v = b.get_int(0).unwrap();
                    b.set_int(0, v + 1).unwrap();
                    l.unlock().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get_int(0).unwrap(), 1000);
    }
}
