//! Windows — generalized pointers to rectangular subregions of arrays.
//!
//! "PISCES 2 provides a new data type 'window' to represent a partition of
//! an array. … A window in PISCES 2 is a type of generalized pointer that
//! points to a rectangular subregion of an array that is 'owned' by another
//! task. … The window value contains the taskid of the owner, the address of
//! the array, and a descriptor for the subarray. Another task may read or
//! write the subarray visible in the window, by sending a message to the
//! owner. Another task may also 'shrink' the window to point to a smaller
//! subarray." (paper, Section 8)
//!
//! This module defines the window *value* (geometry + identity); the
//! owner-mediated read/write operations live on the task context
//! ([`crate::context`]) and the array registry lives on the machine
//! ([`crate::machine`]).

use crate::taskid::TaskId;
use std::ops::Range;

/// Identity of a registered array: the owning task plus a per-owner
/// sequence number (the "address of the array" in the paper's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId {
    /// Task that owns the array. For arrays on secondary storage this is
    /// the file controller's taskid.
    pub owner: TaskId,
    /// Sequence number among the owner's registered arrays.
    pub seq: u32,
}

impl std::fmt::Display for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/a{}", self.owner, self.seq)
    }
}

/// A window: a rectangular view (half-open row/col ranges) into a
/// registered 2-D array. One-dimensional arrays are the `rows == 1` case.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    array: ArrayId,
    /// Dimensions (rows, cols) of the underlying array.
    dims: (usize, usize),
    rows: Range<usize>,
    cols: Range<usize>,
}

impl Window {
    /// Words used when a window is packed into a message packet.
    pub const PACKED_WORDS: usize = 8;

    /// A window over `rows` × `cols` of the array with dimensions `dims`.
    ///
    /// Fails if the rectangle is empty or falls outside the array.
    pub fn new(
        array: ArrayId,
        dims: (usize, usize),
        rows: Range<usize>,
        cols: Range<usize>,
    ) -> Result<Self, String> {
        if rows.is_empty() || cols.is_empty() {
            return Err(format!("empty window {rows:?}×{cols:?}"));
        }
        if rows.end > dims.0 || cols.end > dims.1 {
            return Err(format!(
                "window {rows:?}×{cols:?} outside array of {}×{}",
                dims.0, dims.1
            ));
        }
        Ok(Self {
            array,
            dims,
            rows,
            cols,
        })
    }

    /// The identity of the underlying array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// Dimensions (rows, cols) of the underlying array.
    pub fn dims(&self) -> (usize, usize) {
        self.dims
    }

    /// Row range of the view.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Column range of the view.
    pub fn cols(&self) -> Range<usize> {
        self.cols.clone()
    }

    /// Number of rows visible.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns visible.
    pub fn col_count(&self) -> usize {
        self.cols.len()
    }

    /// Number of elements visible.
    pub fn len(&self) -> usize {
        self.row_count() * self.col_count()
    }

    /// Windows are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// "Shrink" the window to a smaller subarray. The new ranges are given
    /// in *array* coordinates and must lie within the current view —
    /// a shrunk window never sees more than its parent did.
    pub fn shrink(&self, rows: Range<usize>, cols: Range<usize>) -> Result<Self, String> {
        if rows.is_empty() || cols.is_empty() {
            return Err(format!("empty shrink target {rows:?}×{cols:?}"));
        }
        if rows.start < self.rows.start
            || rows.end > self.rows.end
            || cols.start < self.cols.start
            || cols.end > self.cols.end
        {
            return Err(format!(
                "shrink {rows:?}×{cols:?} escapes window {:?}×{:?}",
                self.rows, self.cols
            ));
        }
        Ok(Self {
            array: self.array,
            dims: self.dims,
            rows,
            cols,
        })
    }

    /// Shrink using coordinates *relative to this window's* origin
    /// (convenient for recursive partitioning).
    pub fn shrink_relative(&self, rows: Range<usize>, cols: Range<usize>) -> Result<Self, String> {
        let abs_rows = self.rows.start + rows.start..self.rows.start + rows.end;
        let abs_cols = self.cols.start + cols.start..self.cols.start + cols.end;
        self.shrink(abs_rows, abs_cols)
    }

    /// Split the window into `n` near-equal horizontal bands (by rows) —
    /// the paper's top-level partitioning pattern. Bands differ in height
    /// by at most one row; if `n` exceeds the row count, only `row_count`
    /// bands are produced.
    pub fn split_rows(&self, n: usize) -> Vec<Window> {
        let n = n.clamp(1, self.row_count());
        let total = self.row_count();
        let base = total / n;
        let extra = total % n;
        let mut out = Vec::with_capacity(n);
        let mut start = self.rows.start;
        for i in 0..n {
            let h = base + usize::from(i < extra);
            let band = self
                .shrink(start..start + h, self.cols.clone())
                .expect("band lies within parent by construction");
            start += h;
            out.push(band);
        }
        out
    }

    /// Whether two windows view overlapping regions of the same array —
    /// the question the file controller answers when it "manages any
    /// parallel read/write requests for overlapping sections of an array"
    /// (Section 8; the window concept paper, Mehrotra & Pratt 1982,
    /// develops this conflict test).
    pub fn overlaps(&self, other: &Window) -> bool {
        self.array == other.array
            && self.rows.start < other.rows.end
            && other.rows.start < self.rows.end
            && self.cols.start < other.cols.end
            && other.cols.start < self.cols.end
    }

    /// The overlapping region of two windows on the same array, if any.
    pub fn intersection(&self, other: &Window) -> Option<Window> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Window {
            array: self.array,
            dims: self.dims,
            rows: self.rows.start.max(other.rows.start)..self.rows.end.min(other.rows.end),
            cols: self.cols.start.max(other.cols.start)..self.cols.end.min(other.cols.end),
        })
    }

    /// Split the window into an `r`×`c` grid of near-equal tiles (the
    /// 2-D partitioning pattern; `split_rows` is the `c == 1` case).
    /// Tiles are returned row-major; degenerate requests are clamped.
    pub fn split_grid(&self, r: usize, c: usize) -> Vec<Window> {
        let mut out = Vec::new();
        for band in self.split_rows(r) {
            // Split each band by columns, transposing the row logic.
            let c = c.clamp(1, band.col_count());
            let total = band.col_count();
            let base = total / c;
            let extra = total % c;
            let mut start = band.cols.start;
            for i in 0..c {
                let w = base + usize::from(i < extra);
                out.push(
                    band.shrink(band.rows.clone(), start..start + w)
                        .expect("tile lies within band by construction"),
                );
                start += w;
            }
        }
        out
    }

    /// Pack into message-packet words.
    pub fn pack(&self) -> [u64; Self::PACKED_WORDS] {
        [
            self.array.owner.pack(),
            self.array.seq as u64,
            self.dims.0 as u64,
            self.dims.1 as u64,
            self.rows.start as u64,
            self.rows.end as u64,
            self.cols.start as u64,
            self.cols.end as u64,
        ]
    }

    /// Unpack from message-packet words.
    pub fn unpack(w: &[u64]) -> Result<Self, String> {
        if w.len() != Self::PACKED_WORDS {
            return Err(format!("window packet of {} words", w.len()));
        }
        Window::new(
            ArrayId {
                owner: TaskId::unpack(w[0]),
                seq: w[1] as u32,
            },
            (w[2] as usize, w[3] as usize),
            w[4] as usize..w[5] as usize,
            w[6] as usize..w[7] as usize,
        )
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "window[{} {}..{}×{}..{}]",
            self.array, self.rows.start, self.rows.end, self.cols.start, self.cols.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid() -> ArrayId {
        ArrayId {
            owner: TaskId::new(1, 1, 1),
            seq: 0,
        }
    }

    fn full(rows: usize, cols: usize) -> Window {
        Window::new(aid(), (rows, cols), 0..rows, 0..cols).unwrap()
    }

    #[test]
    fn new_validates_bounds() {
        assert!(Window::new(aid(), (4, 4), 0..5, 0..4).is_err());
        assert!(Window::new(aid(), (4, 4), 2..2, 0..4).is_err());
        assert!(Window::new(aid(), (4, 4), 0..4, 0..4).is_ok());
    }

    #[test]
    fn shrink_must_stay_inside() {
        let w = full(10, 10).shrink(2..8, 2..8).unwrap();
        assert!(w.shrink(1..8, 2..8).is_err(), "grows upward");
        assert!(w.shrink(2..9, 2..8).is_err(), "grows downward");
        let inner = w.shrink(3..5, 4..6).unwrap();
        assert_eq!(inner.row_count(), 2);
        assert_eq!(inner.len(), 4);
    }

    #[test]
    fn shrink_relative_offsets_from_window_origin() {
        let w = full(10, 10).shrink(2..8, 3..9).unwrap();
        let r = w.shrink_relative(1..3, 0..2).unwrap();
        assert_eq!(r.rows(), 3..5);
        assert_eq!(r.cols(), 3..5);
    }

    #[test]
    fn split_rows_covers_exactly() {
        let w = full(10, 6);
        let bands = w.split_rows(3);
        assert_eq!(bands.len(), 3);
        let heights: Vec<_> = bands.iter().map(Window::row_count).collect();
        assert_eq!(heights, vec![4, 3, 3]);
        assert_eq!(bands[0].rows(), 0..4);
        assert_eq!(bands[1].rows(), 4..7);
        assert_eq!(bands[2].rows(), 7..10);
        for b in &bands {
            assert_eq!(b.cols(), 0..6);
        }
    }

    #[test]
    fn split_rows_more_bands_than_rows() {
        let w = full(2, 5);
        assert_eq!(w.split_rows(10).len(), 2);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let w = full(7, 9).shrink(1..6, 2..9).unwrap();
        assert_eq!(Window::unpack(&w.pack()).unwrap(), w);
    }

    #[test]
    fn unpack_rejects_bad_geometry() {
        let mut p = full(4, 4).pack();
        p[5] = 99; // rows.end beyond dims
        assert!(Window::unpack(&p).is_err());
        assert!(Window::unpack(&[0; 3]).is_err());
    }

    #[test]
    fn display_mentions_bounds() {
        let w = full(4, 4);
        let s = w.to_string();
        assert!(s.contains("0..4"));
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;

    fn aid(seq: u32) -> ArrayId {
        ArrayId {
            owner: TaskId::new(1, 1, 1),
            seq,
        }
    }

    fn w(seq: u32, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Window {
        Window::new(aid(seq), (20, 20), rows, cols).unwrap()
    }

    #[test]
    fn overlap_detection() {
        assert!(
            w(0, 0..5, 0..5).overlaps(&w(0, 4..10, 4..10)),
            "corner touch"
        );
        assert!(
            !w(0, 0..5, 0..5).overlaps(&w(0, 5..10, 0..5)),
            "adjacent rows"
        );
        assert!(
            !w(0, 0..5, 0..5).overlaps(&w(0, 0..5, 5..10)),
            "adjacent cols"
        );
        assert!(
            !w(0, 0..5, 0..5).overlaps(&w(1, 0..5, 0..5)),
            "different arrays"
        );
    }

    #[test]
    fn intersection_geometry() {
        let i = w(0, 0..10, 0..6).intersection(&w(0, 4..20, 3..20)).unwrap();
        assert_eq!(i.rows(), 4..10);
        assert_eq!(i.cols(), 3..6);
        assert!(w(0, 0..2, 0..2).intersection(&w(0, 2..4, 2..4)).is_none());
    }

    #[test]
    fn intersection_is_commutative_and_contained() {
        let a = w(0, 2..12, 1..9);
        let b = w(0, 5..20, 0..4);
        let ab = a.intersection(&b).unwrap();
        let ba = b.intersection(&a).unwrap();
        assert_eq!(ab, ba);
        assert!(ab.rows().start >= a.rows().start && ab.rows().end <= a.rows().end);
        assert!(ab.cols().start >= b.cols().start && ab.cols().end <= b.cols().end);
    }

    #[test]
    fn split_grid_tiles_exactly() {
        let whole = w(0, 0..20, 0..20);
        let tiles = whole.split_grid(3, 4);
        assert_eq!(tiles.len(), 12);
        // Tiles are pairwise disjoint and cover the whole area.
        let area: usize = tiles.iter().map(Window::len).sum();
        assert_eq!(area, whole.len());
        for (i, a) in tiles.iter().enumerate() {
            for b in &tiles[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn split_grid_clamps_degenerate_requests() {
        let small = w(0, 0..2, 0..3);
        let tiles = small.split_grid(10, 10);
        assert_eq!(tiles.len(), 2 * 3, "one tile per cell at most");
        let area: usize = tiles.iter().map(Window::len).sum();
        assert_eq!(area, small.len());
    }
}
