//! Windows — generalized pointers to rectangular subregions of arrays.
//!
//! "PISCES 2 provides a new data type 'window' to represent a partition of
//! an array. … A window in PISCES 2 is a type of generalized pointer that
//! points to a rectangular subregion of an array that is 'owned' by another
//! task. … The window value contains the taskid of the owner, the address of
//! the array, and a descriptor for the subarray. Another task may read or
//! write the subarray visible in the window, by sending a message to the
//! owner. Another task may also 'shrink' the window to point to a smaller
//! subarray." (paper, Section 8)
//!
//! This module defines the window *value* (geometry + identity); the
//! owner-mediated read/write operations live on the task context
//! ([`crate::context`]) and the array registry lives on the machine
//! ([`crate::machine`]).

use crate::taskid::TaskId;
use std::ops::Range;

/// Typed errors for window geometry and window transfers.
///
/// Replaces the old stringly-typed `Result<_, String>` surface: callers can
/// now match on the failure (empty view, escape from the parent, unknown
/// array, shape mismatch) instead of parsing prose. Folded into the
/// crate-wide error as [`crate::PiscesError::Window`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WindowError {
    /// The requested view contains no elements.
    Empty {
        /// Requested row range.
        rows: Range<usize>,
        /// Requested column range.
        cols: Range<usize>,
    },
    /// The view falls outside the underlying array.
    OutOfBounds {
        /// Requested row range.
        rows: Range<usize>,
        /// Requested column range.
        cols: Range<usize>,
        /// Dimensions (rows, cols) of the array.
        dims: (usize, usize),
    },
    /// A shrink target escapes the parent view — a shrunk window must
    /// never see more than its parent did.
    EscapesParent {
        /// Requested row range.
        rows: Range<usize>,
        /// Requested column range.
        cols: Range<usize>,
        /// The parent view's row range.
        parent_rows: Range<usize>,
        /// The parent view's column range.
        parent_cols: Range<usize>,
    },
    /// A packed window descriptor had the wrong number of words.
    BadPacket {
        /// Words found in the packet.
        words: usize,
    },
    /// An array declaration's shape disagrees with its element count.
    BadShape {
        /// Elements supplied.
        elements: usize,
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
    /// The array behind the window is no longer registered (its owner
    /// terminated, or the file array was never created).
    ArrayGone(ArrayId),
    /// A transfer supplied or expected a different number of elements
    /// than the window exposes.
    LengthMismatch {
        /// Elements the window exposes.
        expected: usize,
        /// Elements supplied.
        got: usize,
    },
    /// Source and destination of a `window_move` have different shapes.
    ShapeMismatch {
        /// Source (rows, cols).
        src: (usize, usize),
        /// Destination (rows, cols).
        dst: (usize, usize),
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::Empty { rows, cols } => {
                write!(f, "empty window {rows:?}×{cols:?}")
            }
            WindowError::OutOfBounds { rows, cols, dims } => write!(
                f,
                "window {rows:?}×{cols:?} outside array of {}×{}",
                dims.0, dims.1
            ),
            WindowError::EscapesParent {
                rows,
                cols,
                parent_rows,
                parent_cols,
            } => write!(
                f,
                "shrink {rows:?}×{cols:?} escapes window {parent_rows:?}×{parent_cols:?}"
            ),
            WindowError::BadPacket { words } => {
                write!(f, "window packet of {words} words")
            }
            WindowError::BadShape {
                elements,
                rows,
                cols,
            } => write!(f, "array of {elements} elements declared as {rows}×{cols}"),
            WindowError::ArrayGone(id) => write!(f, "array {id} gone"),
            WindowError::LengthMismatch { expected, got } => {
                write!(f, "window of {expected} elements transferred with {got}")
            }
            WindowError::ShapeMismatch { src, dst } => write!(
                f,
                "window move shape mismatch: {}×{} into {}×{}",
                src.0, src.1, dst.0, dst.1
            ),
        }
    }
}

impl std::error::Error for WindowError {}

/// Identity of a registered array: the owning task plus a per-owner
/// sequence number (the "address of the array" in the paper's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId {
    /// Task that owns the array. For arrays on secondary storage this is
    /// the file controller's taskid.
    pub owner: TaskId,
    /// Sequence number among the owner's registered arrays.
    pub seq: u32,
}

impl std::fmt::Display for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/a{}", self.owner, self.seq)
    }
}

/// A window: a rectangular view (half-open row/col ranges) into a
/// registered 2-D array. One-dimensional arrays are the `rows == 1` case.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    array: ArrayId,
    /// Dimensions (rows, cols) of the underlying array.
    dims: (usize, usize),
    rows: Range<usize>,
    cols: Range<usize>,
}

impl Window {
    /// Words used when a window is packed into a message packet.
    pub const PACKED_WORDS: usize = 8;

    /// A window over `rows` × `cols` of the array with dimensions `dims`.
    ///
    /// Fails if the rectangle is empty or falls outside the array.
    pub fn new(
        array: ArrayId,
        dims: (usize, usize),
        rows: Range<usize>,
        cols: Range<usize>,
    ) -> Result<Self, WindowError> {
        if rows.is_empty() || cols.is_empty() {
            return Err(WindowError::Empty { rows, cols });
        }
        if rows.end > dims.0 || cols.end > dims.1 {
            return Err(WindowError::OutOfBounds { rows, cols, dims });
        }
        Ok(Self {
            array,
            dims,
            rows,
            cols,
        })
    }

    /// The identity of the underlying array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// Dimensions (rows, cols) of the underlying array.
    pub fn dims(&self) -> (usize, usize) {
        self.dims
    }

    /// Row range of the view.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Column range of the view.
    pub fn cols(&self) -> Range<usize> {
        self.cols.clone()
    }

    /// Number of rows visible.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns visible.
    pub fn col_count(&self) -> usize {
        self.cols.len()
    }

    /// Number of elements visible.
    pub fn len(&self) -> usize {
        self.row_count() * self.col_count()
    }

    /// Windows are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// "Shrink" the window to a smaller subarray. The new ranges are given
    /// in *array* coordinates and must lie within the current view —
    /// a shrunk window never sees more than its parent did.
    pub fn shrink(&self, rows: Range<usize>, cols: Range<usize>) -> Result<Self, WindowError> {
        if rows.is_empty() || cols.is_empty() {
            return Err(WindowError::Empty { rows, cols });
        }
        if rows.start < self.rows.start
            || rows.end > self.rows.end
            || cols.start < self.cols.start
            || cols.end > self.cols.end
        {
            return Err(WindowError::EscapesParent {
                rows,
                cols,
                parent_rows: self.rows.clone(),
                parent_cols: self.cols.clone(),
            });
        }
        Ok(Self {
            array: self.array,
            dims: self.dims,
            rows,
            cols,
        })
    }

    /// Shrink using coordinates *relative to this window's* origin
    /// (convenient for recursive partitioning).
    pub fn shrink_relative(
        &self,
        rows: Range<usize>,
        cols: Range<usize>,
    ) -> Result<Self, WindowError> {
        let abs_rows = self.rows.start + rows.start..self.rows.start + rows.end;
        let abs_cols = self.cols.start + cols.start..self.cols.start + cols.end;
        self.shrink(abs_rows, abs_cols)
    }

    /// Split the window into `n` near-equal horizontal bands (by rows) —
    /// the paper's top-level partitioning pattern. Bands differ in height
    /// by at most one row; if `n` exceeds the row count, only `row_count`
    /// bands are produced.
    pub fn split_rows(&self, n: usize) -> Vec<Window> {
        let n = n.clamp(1, self.row_count());
        let total = self.row_count();
        let base = total / n;
        let extra = total % n;
        let mut out = Vec::with_capacity(n);
        let mut start = self.rows.start;
        for i in 0..n {
            let h = base + usize::from(i < extra);
            let band = self
                .shrink(start..start + h, self.cols.clone())
                .expect("band lies within parent by construction");
            start += h;
            out.push(band);
        }
        out
    }

    /// Whether two windows view overlapping regions of the same array —
    /// the question the file controller answers when it "manages any
    /// parallel read/write requests for overlapping sections of an array"
    /// (Section 8; the window concept paper, Mehrotra & Pratt 1982,
    /// develops this conflict test).
    pub fn overlaps(&self, other: &Window) -> bool {
        self.array == other.array
            && self.rows.start < other.rows.end
            && other.rows.start < self.rows.end
            && self.cols.start < other.cols.end
            && other.cols.start < self.cols.end
    }

    /// The overlapping region of two windows on the same array, if any.
    pub fn intersection(&self, other: &Window) -> Option<Window> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Window {
            array: self.array,
            dims: self.dims,
            rows: self.rows.start.max(other.rows.start)..self.rows.end.min(other.rows.end),
            cols: self.cols.start.max(other.cols.start)..self.cols.end.min(other.cols.end),
        })
    }

    /// Split the window into an `r`×`c` grid of near-equal tiles (the
    /// 2-D partitioning pattern; `split_rows` is the `c == 1` case).
    /// Tiles are returned row-major; degenerate requests are clamped.
    pub fn split_grid(&self, r: usize, c: usize) -> Vec<Window> {
        let mut out = Vec::new();
        for band in self.split_rows(r) {
            // Split each band by columns, transposing the row logic.
            let c = c.clamp(1, band.col_count());
            let total = band.col_count();
            let base = total / c;
            let extra = total % c;
            let mut start = band.cols.start;
            for i in 0..c {
                let w = base + usize::from(i < extra);
                out.push(
                    band.shrink(band.rows.clone(), start..start + w)
                        .expect("tile lies within band by construction"),
                );
                start += w;
            }
        }
        out
    }

    /// Row-major element offset of the view's first element within the
    /// underlying array — where a strided gather/scatter starts.
    pub fn origin_offset(&self) -> usize {
        self.rows.start * self.dims.1 + self.cols.start
    }

    /// Row-major distance (in elements) between consecutive view rows in
    /// the underlying array — the stride of a bulk transfer.
    pub fn row_stride(&self) -> usize {
        self.dims.1
    }

    /// Whether another window views the same number of rows and columns
    /// (the precondition for moving data between the two).
    pub fn same_shape(&self, other: &Window) -> bool {
        self.row_count() == other.row_count() && self.col_count() == other.col_count()
    }

    /// Pack into message-packet words.
    pub fn pack(&self) -> [u64; Self::PACKED_WORDS] {
        [
            self.array.owner.pack(),
            self.array.seq as u64,
            self.dims.0 as u64,
            self.dims.1 as u64,
            self.rows.start as u64,
            self.rows.end as u64,
            self.cols.start as u64,
            self.cols.end as u64,
        ]
    }

    /// Unpack from message-packet words.
    pub fn unpack(w: &[u64]) -> Result<Self, WindowError> {
        if w.len() != Self::PACKED_WORDS {
            return Err(WindowError::BadPacket { words: w.len() });
        }
        Window::new(
            ArrayId {
                owner: TaskId::unpack(w[0]),
                seq: w[1] as u32,
            },
            (w[2] as usize, w[3] as usize),
            w[4] as usize..w[5] as usize,
            w[6] as usize..w[7] as usize,
        )
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "window[{} {}..{}×{}..{}]",
            self.array, self.rows.start, self.rows.end, self.cols.start, self.cols.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid() -> ArrayId {
        ArrayId {
            owner: TaskId::new(1, 1, 1),
            seq: 0,
        }
    }

    fn full(rows: usize, cols: usize) -> Window {
        Window::new(aid(), (rows, cols), 0..rows, 0..cols).unwrap()
    }

    #[test]
    fn new_validates_bounds() {
        assert!(matches!(
            Window::new(aid(), (4, 4), 0..5, 0..4),
            Err(WindowError::OutOfBounds { .. })
        ));
        assert!(matches!(
            Window::new(aid(), (4, 4), 2..2, 0..4),
            Err(WindowError::Empty { .. })
        ));
        assert!(Window::new(aid(), (4, 4), 0..4, 0..4).is_ok());
    }

    #[test]
    fn errors_are_typed_and_displayable() {
        let e = Window::new(aid(), (4, 4), 0..5, 0..4).unwrap_err();
        assert!(e.to_string().contains("outside array"));
        let e = full(10, 10).shrink(0..11, 0..10).unwrap_err();
        assert!(matches!(e, WindowError::EscapesParent { .. }), "{e:?}");
        let e = Window::unpack(&[0; 3]).unwrap_err();
        assert_eq!(e, WindowError::BadPacket { words: 3 });
    }

    #[test]
    fn transfer_geometry_helpers() {
        let w = full(10, 7).shrink(2..5, 3..6).unwrap();
        assert_eq!(w.origin_offset(), 2 * 7 + 3);
        assert_eq!(w.row_stride(), 7);
        assert!(w.same_shape(&full(10, 7).shrink(6..9, 0..3).unwrap()));
        assert!(!w.same_shape(&full(10, 7)));
    }

    #[test]
    fn shrink_must_stay_inside() {
        let w = full(10, 10).shrink(2..8, 2..8).unwrap();
        assert!(w.shrink(1..8, 2..8).is_err(), "grows upward");
        assert!(w.shrink(2..9, 2..8).is_err(), "grows downward");
        let inner = w.shrink(3..5, 4..6).unwrap();
        assert_eq!(inner.row_count(), 2);
        assert_eq!(inner.len(), 4);
    }

    #[test]
    fn shrink_relative_offsets_from_window_origin() {
        let w = full(10, 10).shrink(2..8, 3..9).unwrap();
        let r = w.shrink_relative(1..3, 0..2).unwrap();
        assert_eq!(r.rows(), 3..5);
        assert_eq!(r.cols(), 3..5);
    }

    #[test]
    fn split_rows_covers_exactly() {
        let w = full(10, 6);
        let bands = w.split_rows(3);
        assert_eq!(bands.len(), 3);
        let heights: Vec<_> = bands.iter().map(Window::row_count).collect();
        assert_eq!(heights, vec![4, 3, 3]);
        assert_eq!(bands[0].rows(), 0..4);
        assert_eq!(bands[1].rows(), 4..7);
        assert_eq!(bands[2].rows(), 7..10);
        for b in &bands {
            assert_eq!(b.cols(), 0..6);
        }
    }

    #[test]
    fn split_rows_more_bands_than_rows() {
        let w = full(2, 5);
        assert_eq!(w.split_rows(10).len(), 2);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let w = full(7, 9).shrink(1..6, 2..9).unwrap();
        assert_eq!(Window::unpack(&w.pack()).unwrap(), w);
    }

    #[test]
    fn unpack_rejects_bad_geometry() {
        let mut p = full(4, 4).pack();
        p[5] = 99; // rows.end beyond dims
        assert!(Window::unpack(&p).is_err());
        assert!(Window::unpack(&[0; 3]).is_err());
    }

    #[test]
    fn display_mentions_bounds() {
        let w = full(4, 4);
        let s = w.to_string();
        assert!(s.contains("0..4"));
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;

    fn aid(seq: u32) -> ArrayId {
        ArrayId {
            owner: TaskId::new(1, 1, 1),
            seq,
        }
    }

    fn w(seq: u32, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Window {
        Window::new(aid(seq), (20, 20), rows, cols).unwrap()
    }

    #[test]
    fn overlap_detection() {
        assert!(
            w(0, 0..5, 0..5).overlaps(&w(0, 4..10, 4..10)),
            "corner touch"
        );
        assert!(
            !w(0, 0..5, 0..5).overlaps(&w(0, 5..10, 0..5)),
            "adjacent rows"
        );
        assert!(
            !w(0, 0..5, 0..5).overlaps(&w(0, 0..5, 5..10)),
            "adjacent cols"
        );
        assert!(
            !w(0, 0..5, 0..5).overlaps(&w(1, 0..5, 0..5)),
            "different arrays"
        );
    }

    #[test]
    fn intersection_geometry() {
        let i = w(0, 0..10, 0..6).intersection(&w(0, 4..20, 3..20)).unwrap();
        assert_eq!(i.rows(), 4..10);
        assert_eq!(i.cols(), 3..6);
        assert!(w(0, 0..2, 0..2).intersection(&w(0, 2..4, 2..4)).is_none());
    }

    #[test]
    fn intersection_is_commutative_and_contained() {
        let a = w(0, 2..12, 1..9);
        let b = w(0, 5..20, 0..4);
        let ab = a.intersection(&b).unwrap();
        let ba = b.intersection(&a).unwrap();
        assert_eq!(ab, ba);
        assert!(ab.rows().start >= a.rows().start && ab.rows().end <= a.rows().end);
        assert!(ab.cols().start >= b.cols().start && ab.cols().end <= b.cols().end);
    }

    #[test]
    fn split_grid_tiles_exactly() {
        let whole = w(0, 0..20, 0..20);
        let tiles = whole.split_grid(3, 4);
        assert_eq!(tiles.len(), 12);
        // Tiles are pairwise disjoint and cover the whole area.
        let area: usize = tiles.iter().map(Window::len).sum();
        assert_eq!(area, whole.len());
        for (i, a) in tiles.iter().enumerate() {
            for b in &tiles[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn split_grid_clamps_degenerate_requests() {
        let small = w(0, 0..2, 0..3);
        let tiles = small.split_grid(10, 10);
        assert_eq!(tiles.len(), 2 * 3, "one tile per cell at most");
        let area: usize = tiles.iter().map(Window::len).sum();
        assert_eq!(area, small.len());
    }

    /// Check that `pieces` tile `parent` exactly: pairwise disjoint, each
    /// inside the parent, and every parent cell covered exactly once.
    fn assert_tiles_exactly(parent: &Window, pieces: &[Window]) {
        let mut covered = vec![0u32; parent.dims().0 * parent.dims().1];
        for p in pieces {
            assert!(
                p.rows().start >= parent.rows().start
                    && p.rows().end <= parent.rows().end
                    && p.cols().start >= parent.cols().start
                    && p.cols().end <= parent.cols().end,
                "{p} escapes {parent}"
            );
            for r in p.rows() {
                for c in p.cols() {
                    covered[r * parent.dims().1 + c] += 1;
                }
            }
        }
        for r in parent.rows() {
            for c in parent.cols() {
                assert_eq!(
                    covered[r * parent.dims().1 + c],
                    1,
                    "cell ({r},{c}) of {parent} covered wrong number of times"
                );
            }
        }
        for (i, a) in pieces.iter().enumerate() {
            for b in &pieces[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
                assert!(a.intersection(b).is_none());
            }
        }
    }

    /// Exhaustive tiling check over every non-divisible split of modest
    /// offset windows — the off-by-one surface `split_rows`/`split_grid`
    /// historically risks. (The proptest suite widens this search space;
    /// this deterministic sweep runs everywhere.)
    #[test]
    fn split_rows_and_grid_tile_exactly_for_nondivisible_dims() {
        for (rows, cols) in [(1usize, 1usize), (1, 7), (7, 1), (5, 3), (13, 9), (17, 17)] {
            let parent = Window::new(aid(0), (rows + 3, cols + 2), 2..2 + rows, 1..1 + cols)
                .unwrap();
            for n in 1..=rows + 2 {
                assert_tiles_exactly(&parent, &parent.split_rows(n));
            }
            for r in 1..=rows + 1 {
                for c in 1..=cols + 1 {
                    assert_tiles_exactly(&parent, &parent.split_grid(r, c));
                }
            }
        }
    }

    /// `intersection` and `overlaps` must agree: an intersection exists
    /// exactly when the windows overlap, and it is the true row/col range
    /// intersection. Exhaustive over all sub-windows of a 5×4 array.
    #[test]
    fn intersection_agrees_with_overlaps_exhaustively() {
        let mut all = Vec::new();
        for r0 in 0..5 {
            for r1 in r0 + 1..=5 {
                for c0 in 0..4 {
                    for c1 in c0 + 1..=4 {
                        all.push(w(0, r0..r1, c0..c1));
                    }
                }
            }
        }
        for a in &all {
            for b in &all {
                let both = a.overlaps(b);
                assert_eq!(both, b.overlaps(a), "overlaps not symmetric: {a} {b}");
                match a.intersection(b) {
                    Some(i) => {
                        assert!(both, "intersection without overlap: {a} {b}");
                        assert_eq!(i.rows().start, a.rows().start.max(b.rows().start));
                        assert_eq!(i.rows().end, a.rows().end.min(b.rows().end));
                        assert_eq!(i.cols().start, a.cols().start.max(b.cols().start));
                        assert_eq!(i.cols().end, a.cols().end.min(b.cols().end));
                    }
                    None => assert!(!both, "overlap without intersection: {a} {b}"),
                }
            }
        }
    }
}
