//! The PISCES 2 virtual machine, brought up on a [`Substrate`].
//!
//! "The PISCES 2 virtual machine consists of a set of clusters. … An
//! applications program appears as a set of tasks. Each cluster provides a
//! finite set of slots in which tasks can run. … The operating system is
//! represented as a set of 'controller' tasks that run in slots in the
//! clusters." (paper, Sections 4–5)
//!
//! [`Pisces::boot`] validates a configuration, allocates the cluster/slot
//! tables in the machine's shared memory (so the Section 13 storage measurement
//! is real), reserves the system image in each PE's local memory, and
//! starts the controller tasks. User tasktypes are registered as Rust
//! closures (or supplied by the Pisces Fortran interpreter) and initiated
//! through the task controllers exactly as in the paper: an INITIATE is a
//! message to the target cluster's task controller, which assigns a slot —
//! or holds the request until one frees up.

use crate::config::MachineConfig;
use crate::context::TaskCtx;
use crate::controller;
use crate::cost;
use crate::error::{PiscesError, Result};
use crate::message::PushOutcome;
use crate::metrics::MetricsRegistry;
use crate::stats::RunStats;
use crate::task::{
    TaskEntry, TaskRunState, FILE_CTRL_ID, FIRST_USER_SLOT, TASK_CONTROLLER_SLOT,
    USER_CONTROLLER_SLOT, USER_ID,
};
use crate::taskid::TaskId;
use crate::trace::{TraceEventKind, Tracer};
use crate::value::{decode_values, encode_values, Value};
use crate::window::{ArrayId, Window, WindowError};
use crate::substrate::Substrate;
use pisces_substrate::fault::{FaultAction, FaultEvent, FaultInjector, FaultPlan, MessageFault};
use pisces_substrate::pe::PeId;
use pisces_substrate::shmem::{ShmHandle, ShmTag};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Words in the machine header system table.
pub const MACHINE_HEADER_WORDS: usize = 16;
/// Words in each cluster's header record.
pub const CLUSTER_HEADER_WORDS: usize = 8;
/// Words in each slot's task-state record ("state information … pointers
/// to the task's in-queue, free space lists, trace flags, and so forth").
pub const SLOT_RECORD_WORDS: usize = 24;
/// Bytes of each PE's local memory occupied by the system image: the MMOS
/// kernel plus the PISCES run-time library code and data. (The paper
/// reports the total stays under 2.5% of the 1 MB local memory.)
pub const SYSTEM_IMAGE_BYTES: usize = 16 * 1024 + 7 * 1024 + 2 * 1024;

/// Message type names used by the operating-system tasks.
pub mod sysmsg {
    /// Initiate request: args `[tasktype, user args…]`, sender = parent.
    pub const INIT: &str = "INIT$";
    /// Task terminated: args `[taskid]`.
    pub const TERM: &str = "TERM$";
    /// Kill request: args `[taskid]`.
    pub const KILL: &str = "KILL$";
    /// Controller shutdown.
    pub const SHUTDOWN: &str = "SHUTDOWN$";
    /// Fault notice delivered back to a sender whose destination PE
    /// fail-stopped: args `[mtype, target taskid, pe, description]`,
    /// sender = the dead task. Receiver-controlled interpretation, like
    /// SIGNAL vs HANDLER in the paper's ACCEPT statement.
    pub const FAULT: &str = "FAULT$";
}

/// Pin the calling thread to the core standing in for `pe` (best-effort;
/// see [`pisces_substrate::affinity`]). PEs map round-robin onto host
/// cores, numbered from the machine's first task PE so the first
/// task-capable PE lands on core 0.
pub(crate) fn pin_pe_thread(pe: PeId, first_task_pe: u16) {
    let slot = pe.number().saturating_sub(first_task_pe) as usize;
    let _ = pisces_substrate::affinity::pin_current_thread(slot);
}

/// Times a send to a fail-stopped PE is retried before the runtime gives
/// up and delivers a [`sysmsg::FAULT`] notice to the sender.
pub const SEND_RETRIES: u32 = 3;
/// Virtual ticks charged to the sender's clock per retry (the backoff).
pub const RETRY_BACKOFF_TICKS: u64 = 200;

/// Outcome of the pre-send fault interposition.
enum SendFault {
    /// Go ahead with the send; `duplicate` pushes the message twice and
    /// `parent` is the trace seq of the last fault-layer event (retry or
    /// delay) in this send's program-order chain, cited as the MSG-SEND's
    /// causal parent.
    Proceed {
        duplicate: bool,
        parent: Option<u64>,
    },
    /// The fault layer consumed the send (dropped on the link, or turned
    /// into a FAULT$ notice); the sender sees success.
    Handled,
}

/// A user task body: invoked with the task's context; its `Err` return is
/// recorded in the TASK-TERM trace line.
pub type TaskBody = Arc<dyn Fn(&TaskCtx) -> Result<()> + Send + Sync>;

/// An initiate request parked because every slot was full: "if no slots
/// are available in the cluster, the task controller will hold the
/// initiate request until another task terminates."
#[derive(Debug)]
pub(crate) struct PendingInit {
    pub tasktype: String,
    pub args: Vec<Value>,
    pub parent: TaskId,
    /// Trace seq of the controller's MSG-ACCEPT of the INIT$ request,
    /// cited as the causal cause of the spawned task's TASK-INIT.
    pub cause: Option<u64>,
}

pub(crate) struct ClusterState {
    pub cfg: crate::config::ClusterConfig,
    /// User slots (index 0 ↔ slot number [`FIRST_USER_SLOT`]).
    pub slots: Vec<Option<TaskId>>,
    /// Unique-number counters per slot.
    pub slot_unique: Vec<u32>,
    pub pending: VecDeque<PendingInit>,
    pub controller: TaskId,
    pub user_controller: Option<TaskId>,
    /// INIT$ requests routed to this cluster but not yet handled by its
    /// controller — counted so a burst of ON ANY INITIATEs spreads
    /// instead of all seeing the same free-slot snapshot.
    pub routed_inits: usize,
    /// The cluster's system table in shared memory.
    pub table: ShmHandle,
}

impl ClusterState {
    fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Free slots not already spoken for by parked or in-flight initiate
    /// requests.
    fn available(&self) -> isize {
        self.free_slots() as isize - self.pending.len() as isize - self.routed_inits as isize
    }
}

pub(crate) struct MachineState {
    pub clusters: BTreeMap<u8, ClusterState>,
    pub tasks: HashMap<TaskId, Arc<TaskEntry>>,
    pub live_user_tasks: usize,
    /// INITIATE requests sent but not yet processed by a controller.
    pub inflight_inits: usize,
    /// Parked requests a controller has popped but not yet re-dispatched
    /// (spawned or re-parked); counted so quiescence cannot be observed
    /// in the gap.
    pub dispatching: usize,
}

pub(crate) struct ArrayEntry {
    pub(crate) handle: ShmHandle,
    pub(crate) cols: usize,
}

pub(crate) struct FileArrayEntry {
    pub(crate) path: String,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Overlap management for parallel read/write requests (Section 8).
    pub(crate) lock: Arc<RwLock<()>>,
}

/// Per-PE loading snapshot (menu option 8, DISPLAY PE LOADING).
#[derive(Debug, Clone)]
pub struct PeLoad {
    /// PE number.
    pub pe: u16,
    /// Live MMOS processes.
    pub live: usize,
    /// Processes currently ready (competing for the CPU).
    pub ready: usize,
    /// Clock reading.
    pub ticks: u64,
    /// CPU token acquisitions (≈ kernel entries).
    pub cpu_acquisitions: u64,
    /// Acquisitions that found the CPU busy.
    pub cpu_contended: u64,
}

/// Display record for one task (menu option 5, DISPLAY RUNNING TASKS).
#[derive(Debug, Clone)]
pub struct TaskDisplay {
    /// The task's id.
    pub id: TaskId,
    /// Tasktype name.
    pub tasktype: String,
    /// PE it runs on.
    pub pe: u16,
    /// Whether it is an operating-system controller.
    pub is_controller: bool,
    /// Ready or blocked.
    pub state: TaskRunState,
    /// Messages waiting in its in-queue.
    pub queued_messages: usize,
    /// True while the task is split into a force (watchdogs treat a
    /// frozen force differently from a frozen ACCEPT).
    pub in_force: bool,
    /// True while the task is blocked in an ACCEPT with a DELAY deadline
    /// armed (a timed wait — not a stall).
    pub timed_wait: bool,
}

/// Combined storage report: the Section 13 measurement.
#[derive(Debug, Clone)]
pub struct StorageReport {
    /// Shared-memory usage by purpose.
    pub shm: pisces_substrate::shmem::ShmReport,
    /// Per-PE (pe, used bytes, capacity bytes) for PEs in the
    /// configuration.
    pub local: Vec<(u16, usize, usize)>,
}

impl StorageReport {
    /// Fraction of shared memory used by system tables.
    pub fn system_table_fraction(&self) -> f64 {
        self.shm.tag_fraction(ShmTag::SystemTable)
    }

    /// Largest local-memory fraction used on any configured PE.
    pub fn max_local_fraction(&self) -> f64 {
        self.local
            .iter()
            .map(|&(_, used, cap)| used as f64 / cap as f64)
            .fold(0.0, f64::max)
    }
}

/// The tenant/job labels of the job currently running on a hot machine
/// (service mode). Telemetry attributes scrapes to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobScope {
    /// Tenant id the job was submitted under.
    pub tenant: String,
    /// Server-assigned job id, unique per machine lifetime.
    pub job: u64,
}

/// Monotonic job counters for the telemetry endpoint. A hot machine
/// serves many jobs back to back; these stay cumulative across all of
/// them so the exposition remains valid between scrapes.
#[derive(Debug, Clone, Default)]
pub struct JobCounters {
    /// Jobs begun via [`Pisces::begin_job`].
    pub started: u64,
    /// Jobs finished (successfully or not).
    pub finished: u64,
    /// Finished jobs whose main task failed.
    pub failed: u64,
    /// Finished-job count per tenant, sorted by tenant id.
    pub per_tenant_finished: Vec<(String, u64)>,
}

/// Book-keeping for sequential jobs on one machine: the active scope with
/// its stats baseline, plus cumulative counters.
#[derive(Default)]
struct JobRegistry {
    current: Option<(JobScope, crate::stats::StatsSnapshot)>,
    started: u64,
    finished: u64,
    failed: u64,
    per_tenant_finished: BTreeMap<String, u64>,
}

/// The running PISCES 2 virtual machine.
pub struct Pisces {
    pub(crate) sub: Arc<dyn Substrate>,
    pub(crate) config: MachineConfig,
    pub(crate) tracer: Tracer,
    pub(crate) stats: RunStats,
    pub(crate) metrics: MetricsRegistry,
    tasktypes: RwLock<HashMap<String, TaskBody>>,
    pub(crate) state: Mutex<MachineState>,
    pub(crate) state_changed: Condvar,
    pub(crate) arrays: Mutex<HashMap<ArrayId, ArrayEntry>>,
    pub(crate) file_arrays: Mutex<HashMap<ArrayId, FileArrayEntry>>,
    next_file_seq: AtomicU32,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    down: AtomicBool,
    sys_allocs: Mutex<Vec<ShmHandle>>,
    /// Flight recorder (bounded rolling trace window), when armed.
    flight: Option<Arc<crate::telemetry::FlightRecorder>>,
    /// Virtual-clock sampling profiler, when armed.
    profiler: Option<Arc<crate::telemetry::SamplingProfiler>>,
    /// Bound address of the live metrics endpoint, when armed.
    telemetry_addr: Option<std::net::SocketAddr>,
    /// The flight dump is once-only; the first trigger wins.
    flight_dumped: AtomicBool,
    /// Per-job scoping for service mode (see [`Pisces::begin_job`]).
    jobs: Mutex<JobRegistry>,
    /// Live shared-memory bytes right after boot — the value
    /// [`Pisces::reset_for_next_job`] requires the arena to settle back
    /// to between jobs.
    boot_shm_in_use: std::sync::atomic::AtomicUsize,
    /// Extra OpenMetrics families appended to every scrape by a layer
    /// above the machine (the job service installs its SLO engine here).
    metrics_ext: Mutex<Option<Arc<dyn Fn(&mut String) + Send + Sync>>>,
}

impl std::fmt::Debug for Pisces {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pisces")
            .field("clusters", &self.config.clusters.len())
            .field("down", &self.down.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Drop for Pisces {
    /// Last-gasp observability. Every runtime thread holds an `Arc` on
    /// the machine, so by the time `Drop` runs they are all gone and
    /// nothing races: flush the trace sinks and, when the flight
    /// recorder is armed and never fired, leave a final dump behind —
    /// a run abandoned without `shutdown()` (including one unwinding
    /// from a panic) still yields a usable artifact. Must never panic.
    fn drop(&mut self) {
        self.tracer.flush();
        let _ = self.flight_dump("final snapshot at machine drop");
    }
}

impl Pisces {
    /// Bring up the virtual machine on the substrate named by the
    /// configuration: build the machine, validate the configuration
    /// against its topology, reboot the task PEs, download the system
    /// image into local memory, allocate the system tables in shared
    /// memory, and start the controller tasks.
    pub fn boot(config: MachineConfig) -> Result<Arc<Self>> {
        config.validate()?;
        Self::boot_on(config.substrate.build(), config)
    }

    /// [`Pisces::boot`], on a machine the caller already built (shared
    /// across runs, pre-armed with faults, or a custom [`Substrate`]
    /// implementation). The machine's own topology wins over
    /// `config.substrate` for validation.
    pub fn boot_on(sub: Arc<dyn Substrate>, config: MachineConfig) -> Result<Arc<Self>> {
        config.validate_on(sub.topology())?;
        sub.reboot();

        // Download the load image (kernel + runtime) to each PE in use.
        for &pe_n in &config.pes_in_use() {
            let pe = PeId::new(pe_n)?;
            sub.pe(pe).local.reserve(SYSTEM_IMAGE_BYTES, pe)?;
        }

        let mut sys_allocs = Vec::new();
        let header = sub
            .shmem()
            .alloc(MACHINE_HEADER_WORDS * 8, ShmTag::SystemTable)?;
        sys_allocs.push(header);

        let mut clusters = BTreeMap::new();
        let mut any_terminal = config.clusters.iter().any(|c| c.has_terminal);
        for (i, c) in config.clusters.iter().enumerate() {
            // If no cluster declares a terminal, attach one to the first
            // cluster so TO USER SEND always has a destination.
            let has_terminal = c.has_terminal || (!any_terminal && i == 0);
            if has_terminal {
                any_terminal = true;
            }
            let total_slots = c.slots as usize + 2; // + controller slots
            let table = sub.shmem().alloc(
                (CLUSTER_HEADER_WORDS + total_slots * SLOT_RECORD_WORDS) * 8,
                ShmTag::SystemTable,
            )?;
            sys_allocs.push(table);
            let mut cfg = c.clone();
            cfg.has_terminal = has_terminal;
            clusters.insert(
                c.number,
                ClusterState {
                    cfg,
                    slots: vec![None; c.slots as usize],
                    slot_unique: vec![0; c.slots as usize],
                    pending: VecDeque::new(),
                    controller: TaskId::new(c.number, TASK_CONTROLLER_SLOT, 1),
                    user_controller: has_terminal
                        .then(|| TaskId::new(c.number, USER_CONTROLLER_SLOT, 1)),
                    routed_inits: 0,
                    table,
                },
            );
        }

        let tracer = Tracer::new(&config.trace);
        if let Some(path) = &config.trace.file {
            let sink = crate::trace::FileSink::create(path).map_err(|e| {
                PiscesError::BadConfiguration(format!("cannot open trace file {path}: {e}"))
            })?;
            tracer.add_sink(Arc::new(sink));
        }

        // Arm the telemetry layer before the machine goes live: the
        // flight recorder must see every trace record from boot on, and
        // the metrics listener must be bound before `boot` returns so a
        // caller can scrape immediately.
        let telem = config.telemetry.clone();
        let flight = telem.flight_dir.as_ref().map(|_| {
            let f = Arc::new(crate::telemetry::FlightRecorder::new(telem.flight_retain));
            tracer.add_sink(f.clone());
            f
        });
        let profiler = telem
            .profile
            .then(|| Arc::new(crate::telemetry::SamplingProfiler::new(&config.pes_in_use())));
        let listener = match telem.port {
            Some(port) => {
                let l = std::net::TcpListener::bind(("127.0.0.1", port)).map_err(|e| {
                    PiscesError::BadConfiguration(format!("cannot bind telemetry port {port}: {e}"))
                })?;
                l.set_nonblocking(true).map_err(|e| {
                    PiscesError::BadConfiguration(format!("telemetry listener: {e}"))
                })?;
                Some(l)
            }
            None => None,
        };
        let telemetry_addr = listener.as_ref().and_then(|l| l.local_addr().ok());

        let p = Arc::new(Self {
            sub,
            config,
            tracer,
            stats: RunStats::default(),
            metrics: MetricsRegistry::default(),
            tasktypes: RwLock::new(HashMap::new()),
            state: Mutex::new(MachineState {
                clusters,
                tasks: HashMap::new(),
                live_user_tasks: 0,
                inflight_inits: 0,
                dispatching: 0,
            }),
            state_changed: Condvar::new(),
            arrays: Mutex::new(HashMap::new()),
            file_arrays: Mutex::new(HashMap::new()),
            next_file_seq: AtomicU32::new(0),
            threads: Mutex::new(Vec::new()),
            down: AtomicBool::new(false),
            sys_allocs: Mutex::new(sys_allocs),
            flight,
            profiler,
            telemetry_addr,
            flight_dumped: AtomicBool::new(false),
            jobs: Mutex::new(JobRegistry::default()),
            boot_shm_in_use: std::sync::atomic::AtomicUsize::new(0),
            metrics_ext: Mutex::new(None),
        });

        // The telemetry service thread samples the profiler and answers
        // metric scrapes. It holds only a Weak on the machine and exits
        // as soon as the machine is down or dropped.
        if listener.is_some() || p.profiler.is_some() {
            let weak = Arc::downgrade(&p);
            let handle = std::thread::Builder::new()
                .name("pisces-telemetry".into())
                .spawn(move || crate::telemetry::telemetry_service(weak, listener))
                .expect("spawn telemetry thread");
            p.threads.lock().push(handle);
        }

        // Start the operating system: a task controller in every cluster,
        // a user controller where a terminal is attached.
        let cluster_plan: Vec<(u8, TaskId, Option<TaskId>)> = {
            let st = p.state.lock();
            st.clusters
                .values()
                .map(|c| (c.cfg.number, c.controller, c.user_controller))
                .collect()
        };
        for (number, tc, uc) in cluster_plan {
            p.spawn_controller(
                tc,
                number,
                "task-controller",
                controller::task_controller_main,
            )?;
            if let Some(uc) = uc {
                p.spawn_controller(
                    uc,
                    number,
                    "user-controller",
                    controller::user_controller_main,
                )?;
            }
        }
        // Everything the operating system itself holds in the arena is
        // now allocated; this is the level the arena must return to
        // between jobs in service mode.
        p.boot_shm_in_use
            .store(p.sub.shmem().report().in_use, Ordering::SeqCst);
        Ok(p)
    }

    /// The substrate machine.
    pub fn substrate(&self) -> &Arc<dyn Substrate> {
        &self.sub
    }

    /// The substrate machine.
    #[deprecated(note = "substrates are no longer always a FLEX/32; use `substrate()`")]
    pub fn flex(&self) -> &Arc<dyn Substrate> {
        &self.sub
    }

    /// The configuration this machine was booted with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Run statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Latency and queue-depth histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// OpenMetrics exposition of the machine's live counters, histograms
    /// and per-PE gauges — the same text the HTTP endpoint serves.
    pub fn openmetrics(&self) -> String {
        crate::telemetry::render_openmetrics(self)
    }

    /// Bound address of the live metrics endpoint, when
    /// `telemetry_port(..)` armed one (port 0 binds an ephemeral port;
    /// this is where it landed).
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry_addr
    }

    /// Install a hook that appends extra OpenMetrics families to every
    /// scrape of this machine (live endpoint and [`Pisces::openmetrics`]
    /// alike). The hook receives the partially rendered exposition and
    /// must append only complete `# TYPE`/sample blocks — never `# EOF`.
    /// The job service uses this to publish its per-tenant SLO families
    /// through the machine's endpoint. Replaces any previous hook;
    /// `None`-like removal is not needed in practice (machines are
    /// per-service), so there is no uninstall.
    pub fn set_metrics_extension(&self, ext: Arc<dyn Fn(&mut String) + Send + Sync>) {
        *self.metrics_ext.lock() = Some(ext);
    }

    /// The installed metrics-extension hook, if any (cloned out so the
    /// renderer never holds the slot lock while formatting).
    pub(crate) fn metrics_extension(&self) -> Option<Arc<dyn Fn(&mut String) + Send + Sync>> {
        self.metrics_ext.lock().clone()
    }

    /// The virtual-clock sampling profiler, when armed.
    pub fn profiler(&self) -> Option<&Arc<crate::telemetry::SamplingProfiler>> {
        self.profiler.as_ref()
    }

    /// The flight recorder, when armed.
    pub fn flight_recorder(&self) -> Option<&Arc<crate::telemetry::FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Dump the flight-recorder window (JSONL + Perfetto JSON + an
    /// OpenMetrics snapshot) into the configured directory and return it.
    /// Once per machine: the first trigger — watchdog detection, chaos
    /// fault, or drop — wins and later calls are no-ops. `None` when the
    /// flight recorder is not armed or the dump already happened. Write
    /// errors are reported on stderr rather than unwinding, because the
    /// caller may be a fault observer or `Drop`.
    pub fn flight_dump(&self, reason: &str) -> Option<std::path::PathBuf> {
        let flight = self.flight.as_ref()?;
        let dir = self.config.telemetry.flight_dir.as_ref()?;
        if self.flight_dumped.swap(true, Ordering::SeqCst) {
            return None;
        }
        self.tracer.flush();
        let window = flight.window();
        let metrics = self.openmetrics();
        match crate::telemetry::write_flight_dump(
            std::path::Path::new(dir),
            reason,
            &window,
            &metrics,
        ) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("pisces: flight dump to {dir} failed: {e}");
                None
            }
        }
    }

    /// Publish ⟨task, activity⟩ on `pe`'s activity cell for the lifetime
    /// of the returned guard, for profiler attribution. `None` (one
    /// branch, no stores) unless the profiler is armed.
    pub(crate) fn activity(
        &self,
        pe: PeId,
        task: TaskId,
        act: crate::telemetry::Activity,
    ) -> Option<crate::telemetry::ActivityGuard<'_>> {
        if self.profiler.is_none() {
            return None;
        }
        Some(crate::telemetry::ActivityGuard::publish(
            &self.sub.pe(pe).activity,
            task,
            act,
        ))
    }

    /// Allocate shared memory through `pe`'s pool magazine, recording the
    /// hit/miss in the metrics registry. The runtime's fast paths (message
    /// blocks, lock words, loop counters) all come through here.
    pub(crate) fn pool_alloc(&self, pe: PeId, bytes: usize, tag: ShmTag) -> Result<ShmHandle> {
        // Profiler attribution: allocations happen inside sends,
        // transfers and shared-variable creation, so nest a "pool" frame
        // under whichever task's activity is currently published.
        let _act = self.profiler.as_ref().and_then(|_| {
            let cell = &self.sub.pe(pe).activity;
            crate::telemetry::unpack_activity(cell.get()).map(|(task, _)| {
                crate::telemetry::ActivityGuard::publish(
                    cell,
                    task,
                    crate::telemetry::Activity::Pool,
                )
            })
        });
        let (h, hit) = self.sub.shm_alloc(pe, bytes, tag)?;
        if hit {
            RunStats::bump(&self.metrics.pool_hits);
        } else {
            RunStats::bump(&self.metrics.pool_misses);
        }
        Ok(h)
    }

    /// Free shared memory through `pe`'s pool magazine. `tag` must match
    /// the allocation's tag (the pool's magazines are tag-segregated).
    pub(crate) fn pool_free(&self, pe: PeId, handle: ShmHandle, tag: ShmTag) -> Result<()> {
        self.sub.shm_free(pe, handle, tag)?;
        Ok(())
    }

    /// Whether the machine has been shut down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Register a tasktype. Pisces Fortran programs register their
    /// tasktypes through the interpreter; Rust programs register closures.
    pub fn register<F>(&self, name: &str, body: F)
    where
        F: Fn(&TaskCtx) -> Result<()> + Send + Sync + 'static,
    {
        self.tasktypes
            .write()
            .insert(name.to_string(), Arc::new(body));
    }

    pub(crate) fn body_of(&self, name: &str) -> Result<TaskBody> {
        self.tasktypes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PiscesError::NoSuchTaskType(name.to_string()))
    }

    pub(crate) fn entry_of(&self, id: TaskId) -> Result<Arc<TaskEntry>> {
        self.state
            .lock()
            .tasks
            .get(&id)
            .cloned()
            .ok_or(PiscesError::NoSuchTask(id))
    }

    /// Taskid of the task controller in a cluster (the TCONTR
    /// destination). Every task is given these ids when it is initiated.
    pub fn tcontr(&self, cluster: u8) -> Result<TaskId> {
        let st = self.state.lock();
        st.clusters
            .get(&cluster)
            .map(|c| c.controller)
            .ok_or(PiscesError::NoSuchCluster(cluster))
    }

    /// Taskid of the user controller serving a task in `cluster`:
    /// the cluster's own if it has a terminal, otherwise the first
    /// cluster's (in cluster-number order) that has one.
    pub fn user_controller_for(&self, cluster: u8) -> Result<TaskId> {
        let st = self.state.lock();
        if let Some(c) = st.clusters.get(&cluster) {
            if let Some(uc) = c.user_controller {
                return Ok(uc);
            }
        }
        st.clusters
            .values()
            .find_map(|c| c.user_controller)
            .ok_or_else(|| PiscesError::Internal("no user controller on the machine".into()))
    }

    // ------------------------------------------------------------------
    // Message passing
    // ------------------------------------------------------------------

    /// Words of message header (sender, type, length, queue link) charged
    /// to the shared-memory heap in addition to the argument packets.
    pub const MSG_HEADER_WORDS: usize = 4;

    /// The core send path. `system` sends (controller traffic, shutdown)
    /// bypass the machine-down check.
    pub(crate) fn send_raw(
        self: &Arc<Self>,
        from: TaskId,
        from_pe: PeId,
        to: TaskId,
        mtype: &str,
        args: &[Value],
        system: bool,
    ) -> Result<()> {
        if !system && self.is_down() {
            return Err(PiscesError::MachineDown);
        }
        let entry = self.entry_of(to)?;
        // Fault layer: a user send to a fail-stopped PE retries with
        // backoff then collapses into a FAULT$ notice; an armed plan may
        // also drop, duplicate, or delay this message on the link. The
        // healthy path pays one relaxed atomic load.
        let mut duplicate = false;
        let mut fault_parent = None;
        if self.sub.faults_armed() {
            match self.send_faulty_pre(from, from_pe, to, entry.pe, mtype, system)? {
                SendFault::Proceed { duplicate: d, parent } => {
                    duplicate = d;
                    fault_parent = parent;
                }
                SendFault::Handled => return Ok(()),
            }
        }
        let words = encode_values(args);
        let handle = self.pool_alloc(
            from_pe,
            (Self::MSG_HEADER_WORDS + words.len()) * 8,
            ShmTag::Message,
        )?;
        self.sub.shmem().store(handle, 0, from.pack())?;
        self.sub.shmem().store(handle, 1, words.len() as u64)?;
        self.sub
            .shmem()
            .write_words(handle, Self::MSG_HEADER_WORDS, &words)?;

        self.sub.tick(
            from_pe,
            cost::SEND_BASE + cost::SEND_PER_WORD * words.len() as u64,
        );
        // Topology surcharge: substrates with real links (the hypercube)
        // bill every forwarding PE for the route here; the shared-bus
        // FLEX/32 charges nothing. Hops feed the link metrics.
        let hops = self.sub.charge_link(from_pe, entry.pe, words.len());
        self.metrics
            .record_link(from_pe.number(), entry.pe.number(), hops);
        RunStats::bump(&self.stats.messages_sent);
        RunStats::add(&self.stats.message_words, words.len() as u64);
        let sent_ticks = self.sub.pe(from_pe).clock.now();
        // The MSG-SEND's parent is the last fault-layer event of this
        // send (retry chain tail or link delay); its seq becomes the
        // causal `cause` of the matching MSG-ACCEPT on the receiver.
        let send_seq = self.tracer.emit_causal(
            TraceEventKind::MsgSend,
            from,
            from_pe.number(),
            sent_ticks,
            format!("{mtype} -> {to}"),
            fault_parent,
            None,
        );

        match entry.inq.push(
            mtype.to_string(),
            from,
            handle,
            from_pe.number(),
            sent_ticks,
            send_seq,
        ) {
            PushOutcome::Delivered => {
                if duplicate {
                    self.push_duplicate(
                        from, from_pe, to, &entry, mtype, &words, sent_ticks, send_seq,
                    )?;
                }
                Ok(())
            }
            PushOutcome::Closed(msg) => {
                self.pool_free(from_pe, msg.handle, ShmTag::Message)?;
                if !system
                    && self.sub.faults_armed()
                    && self.sub.pe(entry.pe).fault.is_failed()
                {
                    // The queue closed because its PE died, not because the
                    // task ran to completion — report it as a fault.
                    return self.deliver_fault_notice(
                        from,
                        from_pe,
                        to,
                        entry.pe.number(),
                        mtype,
                        send_seq,
                    );
                }
                Err(PiscesError::NoSuchTask(to))
            }
        }
    }

    /// Pre-send fault interposition: retry/notice for a dead destination
    /// PE, then the plan's drop/duplicate/delay link faults. Cold — only
    /// reached when a fault plan is armed.
    #[cold]
    fn send_faulty_pre(
        self: &Arc<Self>,
        from: TaskId,
        from_pe: PeId,
        to: TaskId,
        dest_pe: PeId,
        mtype: &str,
        system: bool,
    ) -> Result<SendFault> {
        let Some(inj) = self.sub.faults() else {
            return Ok(SendFault::Proceed {
                duplicate: false,
                parent: None,
            });
        };
        // System traffic (controller bookkeeping, TERM$, SHUTDOWN$) models
        // the surviving runtime and is neither retried nor perturbed.
        if system {
            return Ok(SendFault::Proceed {
                duplicate: false,
                parent: None,
            });
        }
        // Program-order chain through the fault layer: each retry's parent
        // is the previous retry, and a surviving send (or the FAULT$
        // notice) cites the chain tail.
        let mut chain: Option<u64> = None;
        if self.sub.pe(dest_pe).fault.is_failed() {
            for attempt in 1..=SEND_RETRIES {
                self.sub.tick(from_pe, RETRY_BACKOFF_TICKS);
                RunStats::bump(&self.stats.send_retries);
                let seq = self.tracer.emit_causal(
                    TraceEventKind::MsgRetry,
                    from,
                    from_pe.number(),
                    self.sub.pe(from_pe).clock.now(),
                    format!(
                        "{mtype} -> {to}: PE{} down, retry {attempt}/{}",
                        dest_pe.number(),
                        SEND_RETRIES
                    ),
                    chain,
                    None,
                );
                chain = seq.or(chain);
                if !self.sub.pe(dest_pe).fault.is_failed() {
                    break;
                }
            }
            if self.sub.pe(dest_pe).fault.is_failed() {
                self.deliver_fault_notice(from, from_pe, to, dest_pe.number(), mtype, chain)?;
                return Ok(SendFault::Handled);
            }
        }
        match inj.message_action() {
            Some(MessageFault::Drop) => {
                // The sender still pays the base send cost; the packet
                // vanishes on the link without touching shared memory.
                self.sub.tick(from_pe, cost::SEND_BASE);
                RunStats::bump(&self.stats.messages_dropped);
                self.tracer.emit_causal(
                    TraceEventKind::MsgDrop,
                    from,
                    from_pe.number(),
                    self.sub.pe(from_pe).clock.now(),
                    format!("{mtype} -> {to} dropped on the link"),
                    chain,
                    None,
                );
                Ok(SendFault::Handled)
            }
            Some(MessageFault::Duplicate) => Ok(SendFault::Proceed {
                duplicate: true,
                parent: chain,
            }),
            Some(MessageFault::Delay(ticks)) => {
                self.sub.tick(from_pe, ticks);
                let seq = self.tracer.emit_causal(
                    TraceEventKind::MsgDelay,
                    from,
                    from_pe.number(),
                    self.sub.pe(from_pe).clock.now(),
                    format!("{mtype} -> {to} delayed {ticks} ticks on the link"),
                    chain,
                    None,
                );
                Ok(SendFault::Proceed {
                    duplicate: false,
                    parent: seq.or(chain),
                })
            }
            None => Ok(SendFault::Proceed {
                duplicate: false,
                parent: chain,
            }),
        }
    }

    /// Push a second, independently allocated copy of a message whose
    /// plan entry said "duplicate" — each copy is freed by its own accept.
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn push_duplicate(
        self: &Arc<Self>,
        from: TaskId,
        from_pe: PeId,
        to: TaskId,
        entry: &TaskEntry,
        mtype: &str,
        words: &[u64],
        sent_ticks: u64,
        send_seq: Option<u64>,
    ) -> Result<()> {
        let handle = self.pool_alloc(
            from_pe,
            (Self::MSG_HEADER_WORDS + words.len()) * 8,
            ShmTag::Message,
        )?;
        self.sub.shmem().store(handle, 0, from.pack())?;
        self.sub.shmem().store(handle, 1, words.len() as u64)?;
        self.sub
            .shmem()
            .write_words(handle, Self::MSG_HEADER_WORDS, words)?;
        RunStats::bump(&self.stats.messages_duplicated);
        // The duplicate is caused by the original MSG-SEND; the copy's
        // accept cites the MSG-DUP (falling back to the send when the
        // MsgDup kind is disabled).
        let dup_seq = self.tracer.emit_causal(
            TraceEventKind::MsgDup,
            from,
            from_pe.number(),
            sent_ticks,
            format!("{mtype} -> {to} duplicated on the link"),
            None,
            send_seq,
        );
        match entry.inq.push(
            mtype.to_string(),
            from,
            handle,
            from_pe.number(),
            sent_ticks,
            dup_seq.or(send_seq),
        ) {
            PushOutcome::Delivered => Ok(()),
            PushOutcome::Closed(msg) => {
                // Receiver terminated between the two pushes; losing the
                // duplicate is not an error.
                self.pool_free(from_pe, msg.handle, ShmTag::Message)?;
                Ok(())
            }
        }
    }

    /// Deliver a [`sysmsg::FAULT`] notice to `from`'s own in-queue after a
    /// send to `to` on fail-stopped `pe` exhausted its retries. The notice
    /// arrives with sender = the dead task, so an ACCEPT can match on it;
    /// interpretation is receiver-controlled. Senders without an in-queue
    /// (the USER pseudo-task) get the error directly.
    #[cold]
    fn deliver_fault_notice(
        self: &Arc<Self>,
        from: TaskId,
        from_pe: PeId,
        to: TaskId,
        pe: u16,
        mtype: &str,
        parent: Option<u64>,
    ) -> Result<()> {
        let event = self.sub.faults().and_then(|i| i.event_for_pe(pe));
        let sender_entry = match self.entry_of(from) {
            Ok(e) => e,
            Err(_) => return Err(PiscesError::PeFailed { pe, event }),
        };
        let desc = event
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "fail-stop".to_string());
        let notice = [
            Value::Str(mtype.to_string()),
            Value::TaskId(to),
            Value::Int(i64::from(pe)),
            Value::Str(desc.clone()),
        ];
        let words = encode_values(&notice);
        let handle = self.pool_alloc(
            from_pe,
            (Self::MSG_HEADER_WORDS + words.len()) * 8,
            ShmTag::Message,
        )?;
        self.sub.shmem().store(handle, 0, to.pack())?;
        self.sub.shmem().store(handle, 1, words.len() as u64)?;
        self.sub
            .shmem()
            .write_words(handle, Self::MSG_HEADER_WORDS, &words)?;
        let now = self.sub.pe(from_pe).clock.now();
        RunStats::bump(&self.stats.fault_notices);
        // The notice extends the retry chain (parent); the FAULT$ message
        // it injects carries the notice's seq so the eventual ACCEPT of
        // FAULT$ cites it as cause.
        let notice_seq = self.tracer.emit_causal(
            TraceEventKind::FaultNotice,
            from,
            from_pe.number(),
            now,
            format!("{mtype} -> {to} undeliverable: {desc}"),
            parent,
            None,
        );
        match sender_entry
            .inq
            .push(sysmsg::FAULT.to_string(), to, handle, pe, now, notice_seq)
        {
            PushOutcome::Delivered => Ok(()),
            PushOutcome::Closed(msg) => {
                self.pool_free(from_pe, msg.handle, ShmTag::Message)?;
                Err(PiscesError::PeFailed { pe, event })
            }
        }
    }

    /// Fill in the injector's fault event on a bare [`PiscesError::PeFailed`].
    pub(crate) fn attach_fault_event(&self, e: PiscesError) -> PiscesError {
        match e {
            PiscesError::PeFailed { pe, event: None } => {
                let event = self.sub.faults().and_then(|i| i.event_for_pe(pe));
                PiscesError::PeFailed { pe, event }
            }
            other => other,
        }
    }

    /// Arm a fault plan on the substrate and register an observer that
    /// feeds every fired PE/memory fault into the trace sinks. Link faults
    /// (drop/duplicate/delay) are traced at the send site instead, where
    /// the affected message is known.
    pub fn arm_faults(self: &Arc<Self>, plan: FaultPlan) -> Arc<FaultInjector> {
        let inj = self.sub.arm_faults(plan);
        let weak = Arc::downgrade(self);
        inj.set_observer(Box::new(move |ev: &FaultEvent| {
            let Some(p) = weak.upgrade() else { return };
            let (kind, pe) = match ev.action {
                FaultAction::FailPe { pe, .. } => (TraceEventKind::PeFail, pe),
                FaultAction::SlowPe { pe, .. } => (TraceEventKind::PeSlow, pe),
                FaultAction::FailAlloc { .. } => (TraceEventKind::AllocFault, 0),
                _ => return,
            };
            let ticks = PeId::new(pe.max(1))
                .ok()
                .map(|id| p.sub.pe(id).clock.now())
                .unwrap_or(0);
            p.tracer.emit(kind, USER_ID, pe, ticks, ev.to_string());
            // A chaos fault is an anomaly: trigger the flight recorder
            // (no-op unless armed; the dump is once-only).
            p.flight_dump(&format!("chaos fault: {ev}"));
        }));
        inj
    }

    /// Disarm the fault plan and heal every PE (recovery-then-rerun).
    pub fn disarm_faults(&self) {
        self.sub.disarm_faults();
    }

    /// Decode a stored message's argument packets and release its
    /// shared-memory block ("explicit allocation/deallocation as messages
    /// are sent and accepted"). `pe` is the PE doing the accept; the block
    /// returns to that PE's pool magazine for the next send to reuse.
    pub(crate) fn open_message(
        &self,
        stored: &crate::message::StoredMessage,
        pe: PeId,
    ) -> Result<Vec<Value>> {
        // Header word 1 holds the packet length; the block itself may be
        // larger (pool allocations round up to a size class).
        let total = stored.handle.words();
        let packet_words = self.sub.shmem().load(stored.handle, 1)? as usize;
        let arg_words = packet_words.min(total.saturating_sub(Self::MSG_HEADER_WORDS));
        let mut buf = vec![0u64; arg_words];
        self.sub
            .shmem()
            .read_words(stored.handle, Self::MSG_HEADER_WORDS, &mut buf)?;
        let vals = decode_values(&buf)?;
        self.pool_free(pe, stored.handle, ShmTag::Message)?;
        Ok(vals)
    }

    /// Release a stored message without decoding (DELETE MESSAGES, task
    /// termination). `pe` names the pool magazine the block returns to.
    pub(crate) fn discard_message(&self, stored: &crate::message::StoredMessage, pe: PeId) {
        let _ = self.pool_free(pe, stored.handle, ShmTag::Message);
        RunStats::bump(&self.stats.messages_deleted);
    }

    /// Broadcast to every user task in `cluster` (or in all clusters when
    /// `None`), excluding the sender and the controllers.
    pub(crate) fn broadcast(
        self: &Arc<Self>,
        from: TaskId,
        from_pe: PeId,
        cluster: Option<u8>,
        mtype: &str,
        args: &[Value],
    ) -> Result<usize> {
        if let Some(c) = cluster {
            // Validate the cluster exists before fanning out.
            self.tcontr(c)?;
        }
        let targets: Vec<TaskId> = {
            let st = self.state.lock();
            st.tasks
                .values()
                .filter(|t| !t.is_controller)
                .filter(|t| t.id != from)
                .filter(|t| cluster.is_none_or(|c| t.id.cluster == c))
                .map(|t| t.id)
                .collect()
        };
        let mut delivered = 0;
        for to in targets {
            match self.send_raw(from, from_pe, to, mtype, args, false) {
                Ok(()) => delivered += 1,
                // A task terminating mid-broadcast is not an error.
                Err(PiscesError::NoSuchTask(_)) => {}
                Err(e) => return Err(e),
            }
        }
        RunStats::add(&self.stats.broadcast_deliveries, delivered as u64);
        Ok(delivered)
    }

    // ------------------------------------------------------------------
    // Task initiation and termination
    // ------------------------------------------------------------------

    /// Resolve an INITIATE placement to a concrete cluster number.
    pub(crate) fn resolve_where(&self, own: u8, w: crate::context::Where) -> Result<u8> {
        use crate::context::Where;
        let st = self.state.lock();
        let pick = |iter: &mut dyn Iterator<Item = &ClusterState>| -> Option<u8> {
            iter.max_by_key(|c| (c.available(), std::cmp::Reverse(c.cfg.number)))
                .map(|c| c.cfg.number)
        };
        match w {
            Where::Cluster(n) => {
                if st.clusters.contains_key(&n) {
                    Ok(n)
                } else {
                    Err(PiscesError::NoSuchCluster(n))
                }
            }
            Where::Same => Ok(own),
            Where::Any => pick(&mut st.clusters.values())
                .ok_or_else(|| PiscesError::Internal("no clusters".into())),
            Where::Other => {
                let mut others = st.clusters.values().filter(|c| c.cfg.number != own);
                pick(&mut others).ok_or_else(|| {
                    PiscesError::BadConfiguration(
                        "ON OTHER INITIATE requires at least two clusters".into(),
                    )
                })
            }
        }
    }

    /// Track an INITIATE request in flight to a controller (for
    /// quiescence detection and placement accounting).
    pub(crate) fn note_init_sent(&self, cluster: u8) {
        let mut st = self.state.lock();
        st.inflight_inits += 1;
        if let Some(c) = st.clusters.get_mut(&cluster) {
            c.routed_inits += 1;
        }
    }

    pub(crate) fn note_init_handled(&self, cluster: u8) {
        let mut st = self.state.lock();
        st.inflight_inits = st.inflight_inits.saturating_sub(1);
        if let Some(c) = st.clusters.get_mut(&cluster) {
            c.routed_inits = c.routed_inits.saturating_sub(1);
        }
        drop(st);
        self.state_changed.notify_all();
    }

    /// The user initiates a top-level task (paper, Section 6: "The user
    /// initiates a top-level task. This task typically initiates other
    /// tasks.") — an INIT$ message from the USER pseudo-task to the
    /// cluster's task controller.
    pub fn initiate_top_level(
        self: &Arc<Self>,
        cluster: u8,
        tasktype: &str,
        args: Vec<Value>,
    ) -> Result<()> {
        if self.is_down() {
            return Err(PiscesError::MachineDown);
        }
        self.body_of(tasktype)?; // fail fast on unknown tasktype
        let controller = self.tcontr(cluster)?;
        let mut full = vec![Value::Str(tasktype.to_string())];
        full.extend(args);
        self.note_init_sent(cluster);
        let r = self.send_raw(
            USER_ID,
            PeId::new(1).expect("PE 1 exists"),
            controller,
            sysmsg::INIT,
            &full,
            false,
        );
        if r.is_err() {
            self.note_init_handled(cluster);
        }
        RunStats::bump(&self.stats.tasks_initiated);
        r
    }

    /// Spawn a user task into `(cluster, slot_idx)`. Called by the task
    /// controller with the slot already reserved.
    pub(crate) fn spawn_user_task(
        self: &Arc<Self>,
        id: TaskId,
        tasktype: String,
        args: Vec<Value>,
        parent: TaskId,
        cause: Option<u64>,
    ) -> Result<()> {
        let body = self.body_of(&tasktype)?;
        let cfg = self.config.cluster(id.cluster)?;
        let pe = PeId::new(cfg.primary_pe)?;
        let pid = self.sub.procs(pe).spawn(&tasktype);
        self.sub.tick(pe, cost::TASK_SPAWN);

        let entry = Arc::new(TaskEntry::new(
            id,
            tasktype.clone(),
            pe,
            pid,
            parent,
            false,
            None,
            self.config.msg_backend,
        ));
        {
            let mut st = self.state.lock();
            st.tasks.insert(id, entry.clone());
            st.live_user_tasks += 1;
        }
        // TASK-INIT is caused by the controller's acceptance of the INIT$
        // request; its seq anchors the task's program-order chain (the
        // TASK-TERM cites it as parent).
        let init_seq = self.tracer.emit_causal(
            TraceEventKind::TaskInit,
            id,
            pe.number(),
            self.sub.pe(pe).clock.now(),
            format!("{tasktype} parent={parent}"),
            None,
            cause,
        );
        entry.set_init_event(init_seq);

        let p = self.clone();
        let pin = self.config.pin_pes;
        let first_task_pe = self.sub.topology().first_task_pe;
        let handle = std::thread::Builder::new()
            .name(format!("pisces-{id}"))
            .spawn(move || {
                if pin {
                    pin_pe_thread(pe, first_task_pe);
                }
                let ctx = TaskCtx::new(p.clone(), entry.clone(), args);
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (body)(&ctx)));
                let result = match outcome {
                    Ok(r) => r,
                    Err(_) => Err(PiscesError::Internal("task body panicked".into())),
                };
                p.finish_task(&entry, result);
            })
            .map_err(|e| PiscesError::Internal(format!("thread spawn failed: {e}")))?;
        self.threads.lock().push(handle);
        Ok(())
    }

    /// Spawn a controller task (operating system) in its dedicated slot.
    fn spawn_controller(
        self: &Arc<Self>,
        id: TaskId,
        cluster: u8,
        name: &str,
        main: fn(&Arc<Pisces>, &Arc<TaskEntry>),
    ) -> Result<()> {
        let cfg = self.config.cluster(cluster)?;
        let pe = PeId::new(cfg.primary_pe)?;
        let pid = self.sub.procs(pe).spawn(name);
        let entry = Arc::new(TaskEntry::new(
            id,
            name.to_string(),
            pe,
            pid,
            USER_ID,
            true,
            None,
            self.config.msg_backend,
        ));
        self.state.lock().tasks.insert(id, entry.clone());
        let p = self.clone();
        let pin = self.config.pin_pes;
        let first_task_pe = self.sub.topology().first_task_pe;
        let handle = std::thread::Builder::new()
            .name(format!("pisces-ctrl-{id}"))
            .spawn(move || {
                if pin {
                    pin_pe_thread(pe, first_task_pe);
                }
                main(&p, &entry);
                // Controller exit: reap the process and remove the entry.
                p.sub.procs(entry.pe).exit(entry.pid);
                for m in entry.inq.close_and_drain() {
                    p.discard_message(&m, entry.pe);
                }
                p.state.lock().tasks.remove(&entry.id);
                p.state_changed.notify_all();
            })
            .map_err(|e| PiscesError::Internal(format!("thread spawn failed: {e}")))?;
        self.threads.lock().push(handle);
        Ok(())
    }

    /// Tear down a finished user task: release its messages, SHARED
    /// COMMON blocks, lock variables, and registered arrays; free its
    /// slot via a TERM$ message to its cluster's task controller.
    fn finish_task(self: &Arc<Self>, entry: &Arc<TaskEntry>, result: Result<()>) {
        for m in entry.inq.close_and_drain() {
            self.discard_message(&m, entry.pe);
        }
        for (_, (h, _)) in entry.shared_commons.lock().drain() {
            let _ = self.pool_free(entry.pe, h, ShmTag::SharedCommon);
        }
        for (_, h) in entry.locks.lock().drain() {
            let _ = self.pool_free(entry.pe, h, ShmTag::SharedCommon);
        }
        self.free_task_arrays(entry.id);

        self.sub.tick(entry.pe, cost::TASK_TERM);
        let info = match &result {
            Ok(()) => "ok".to_string(),
            Err(e) => {
                // Abnormal termination is surfaced on the PE console even
                // with tracing off — the 1987 user saw it on the terminal.
                self.sub.pe(entry.pe).console.write_line(format!(
                    "task {} ({}) terminated abnormally: {e}",
                    entry.id, entry.tasktype
                ));
                format!("error: {e}")
            }
        };
        self.tracer.emit_causal(
            TraceEventKind::TaskTerm,
            entry.id,
            entry.pe.number(),
            self.sub.pe(entry.pe).clock.now(),
            info,
            entry.init_event(),
            None,
        );
        RunStats::bump(&self.stats.tasks_completed);
        self.sub.procs(entry.pe).exit(entry.pid);
        self.tracer.clear_task(entry.id);

        {
            let mut st = self.state.lock();
            st.tasks.remove(&entry.id);
            st.live_user_tasks = st.live_user_tasks.saturating_sub(1);
        }
        self.state_changed.notify_all();

        // Tell the cluster's task controller so the slot can be reused.
        if let Ok(controller) = self.tcontr(entry.id.cluster) {
            let _ = self.send_raw(
                entry.id,
                entry.pe,
                controller,
                sysmsg::TERM,
                &[Value::TaskId(entry.id)],
                true,
            );
        }
    }

    /// Controller-side slot allocation: reserve a free slot and mint a
    /// taskid, or `None` when the cluster is full.
    pub(crate) fn try_reserve_slot(&self, cluster: u8) -> Option<TaskId> {
        let mut st = self.state.lock();
        let c = st.clusters.get_mut(&cluster)?;
        let idx = c.slots.iter().position(|s| s.is_none())?;
        c.slot_unique[idx] += 1;
        let id = TaskId::new(cluster, FIRST_USER_SLOT + idx as u8, c.slot_unique[idx]);
        c.slots[idx] = Some(id);
        Some(id)
    }

    /// Controller-side slot release on TERM$; pops the next parked
    /// initiate request, if any. A popped request is counted as
    /// "dispatching" until [`Pisces::note_dispatch_done`], so quiescence
    /// cannot be observed while it is in the controller's hands.
    pub(crate) fn release_slot(&self, id: TaskId) -> Option<PendingInit> {
        let mut st = self.state.lock();
        let c = st.clusters.get_mut(&id.cluster)?;
        let idx = (id.slot - FIRST_USER_SLOT) as usize;
        if c.slots.get(idx).copied().flatten() == Some(id) {
            c.slots[idx] = None;
        }
        let next = c.pending.pop_front();
        if next.is_some() {
            st.dispatching += 1;
        }
        drop(st);
        self.state_changed.notify_all();
        next
    }

    /// A request popped by [`Pisces::release_slot`] has been spawned or
    /// re-parked.
    pub(crate) fn note_dispatch_done(&self) {
        let mut st = self.state.lock();
        st.dispatching = st.dispatching.saturating_sub(1);
        drop(st);
        self.state_changed.notify_all();
    }

    /// Controller-side parking of an initiate request.
    pub(crate) fn park_init(&self, cluster: u8, req: PendingInit) {
        let mut st = self.state.lock();
        if let Some(c) = st.clusters.get_mut(&cluster) {
            c.pending.push_back(req);
        }
        RunStats::bump(&self.stats.initiates_queued);
    }

    // ------------------------------------------------------------------
    // Run control
    // ------------------------------------------------------------------

    /// Wait until no user task is live, no initiate request is in flight
    /// or parked, or the timeout expires. Returns `true` on quiescence.
    pub fn wait_quiescent(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            let quiet = st.live_user_tasks == 0
                && st.inflight_inits == 0
                && st.dispatching == 0
                && st.clusters.values().all(|c| c.pending.is_empty());
            if quiet {
                return true;
            }
            if self.state_changed.wait_until(&mut st, deadline).timed_out() {
                return false;
            }
        }
    }

    /// Kill a task (menu option 2): sets its kill flag; the task observes
    /// it at its next runtime call.
    pub fn kill_task(&self, id: TaskId) -> Result<()> {
        let entry = self.entry_of(id)?;
        if entry.is_controller {
            return Err(PiscesError::Internal(
                "controllers cannot be killed from the menu".into(),
            ));
        }
        entry.request_kill();
        Ok(())
    }

    /// Shut the machine down: kill user tasks, stop controllers, join all
    /// threads, free the system tables. Idempotent.
    pub fn shutdown(self: &Arc<Self>) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kill every live user task and wake anything blocked.
        let entries: Vec<Arc<TaskEntry>> = {
            let st = self.state.lock();
            st.tasks.values().cloned().collect()
        };
        for e in &entries {
            if !e.is_controller {
                e.request_kill();
            }
        }
        // Give tasks a moment to unwind, then stop the controllers.
        self.wait_quiescent(Duration::from_secs(10));
        let controllers: Vec<TaskId> = {
            let st = self.state.lock();
            st.tasks
                .values()
                .filter(|t| t.is_controller)
                .map(|t| t.id)
                .collect()
        };
        for c in controllers {
            let _ = self.send_raw(
                USER_ID,
                PeId::new(1).expect("PE 1 exists"),
                c,
                sysmsg::SHUTDOWN,
                &[],
                true,
            );
        }
        // Join everything.
        let handles: Vec<_> = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
        // Free remaining registered arrays and the system tables.
        for (_, a) in self.arrays.lock().drain() {
            let _ = self.sub.shmem().free(a.handle);
        }
        let tables: Vec<ShmHandle> = {
            let mut st = self.state.lock();
            let mut v: Vec<ShmHandle> = st.clusters.values().map(|c| c.table).collect();
            st.clusters.clear();
            v.extend(self.sys_allocs.lock().drain(..));
            v
        };
        for h in tables {
            let _ = self.sub.shmem().free(h);
        }
        // Return every magazine-cached block to the arena so the final
        // storage report reflects what is truly live.
        self.sub.pool().flush(self.sub.shmem());
        // Push buffered trace output (e.g. a JSONL file sink) to disk so
        // off-line analysis sees the complete run.
        self.tracer.flush();
    }

    // ------------------------------------------------------------------
    // Service mode: hot reuse between jobs
    // ------------------------------------------------------------------

    /// Open a job scope: subsequent stats accrue to `(tenant, job)` until
    /// [`Pisces::finish_job`]. The telemetry endpoint labels its
    /// `pisces_job_active` gauge with the scope so scrapes taken while a
    /// hot machine works through a stream of jobs stay attributable.
    pub fn begin_job(&self, tenant: &str, job: u64) {
        let mut j = self.jobs.lock();
        j.started += 1;
        j.current = Some((
            JobScope {
                tenant: tenant.to_string(),
                job,
            },
            self.stats.snapshot(),
        ));
    }

    /// Close the open job scope and return the stats delta it accrued
    /// (machine counters are cumulative; the delta is this job's share).
    /// Without an open scope this returns the boot-to-now snapshot.
    pub fn finish_job(&self, ok: bool) -> crate::stats::StatsSnapshot {
        let mut j = self.jobs.lock();
        let Some((scope, baseline)) = j.current.take() else {
            return self.stats.snapshot();
        };
        j.finished += 1;
        if !ok {
            j.failed += 1;
        }
        *j.per_tenant_finished.entry(scope.tenant).or_insert(0) += 1;
        self.stats.snapshot().diff(&baseline)
    }

    /// The job scope currently open, if any.
    pub fn current_job(&self) -> Option<JobScope> {
        self.jobs.lock().current.as_ref().map(|(s, _)| s.clone())
    }

    /// Cumulative job counters since boot.
    pub fn job_counters(&self) -> JobCounters {
        let j = self.jobs.lock();
        JobCounters {
            started: j.started,
            finished: j.finished,
            failed: j.failed,
            per_tenant_finished: j
                .per_tenant_finished
                .iter()
                .map(|(t, n)| (t.clone(), *n))
                .collect(),
        }
    }

    /// Restore a quiescent machine to its just-booted state so the next
    /// job starts clean — the service-mode alternative to
    /// [`Pisces::shutdown`], which is terminal.
    ///
    /// Checks (and where possible repairs) everything a job can leave
    /// behind: busy slots and parked initiates, undrained controller
    /// in-queues (a TERM$ can still be in flight when quiescence is first
    /// observed), leaked window arrays, registered tasktypes (cleared for
    /// tenant isolation), console capture buffers, the trace rings, and —
    /// the Section 13 measurement — shared-memory bytes in use, which
    /// must settle back to the post-boot level once magazine-cached
    /// blocks are discounted. Returns `Err` with a description when the
    /// machine is still dirty after a bounded settle wait; callers should
    /// then retire the machine and boot a fresh one.
    pub fn reset_for_next_job(&self) -> Result<()> {
        if self.is_down() {
            return Err(PiscesError::MachineDown);
        }
        let deadline = Instant::now() + Duration::from_secs(5);

        // Machine state: no user tasks, no in-flight or parked initiates,
        // every user slot free. TERM$ processing can lag the quiescence
        // edge, so poll rather than insist on the first observation.
        loop {
            let (user_tasks, busy_slots, parked, inflight, dispatching, live) = {
                let st = self.state.lock();
                (
                    st.tasks.values().filter(|t| !t.is_controller).count(),
                    st.clusters
                        .values()
                        .map(|c| c.slots.iter().flatten().count())
                        .sum::<usize>(),
                    st.clusters.values().map(|c| c.pending.len()).sum::<usize>(),
                    st.inflight_inits,
                    st.dispatching,
                    st.live_user_tasks,
                )
            };
            if user_tasks == 0
                && busy_slots == 0
                && parked == 0
                && inflight == 0
                && dispatching == 0
                && live == 0
            {
                break;
            }
            if Instant::now() >= deadline {
                return Err(PiscesError::Internal(format!(
                    "reset on a dirty machine: {user_tasks} user task(s), \
                     {busy_slots} busy slot(s), {parked} parked initiate(s), \
                     {inflight} in flight"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        // Controller in-queues must have drained: a leftover TERM$ (or a
        // stray user message to the terminal) would leak its message
        // block into the next job's accounting.
        let controllers: Vec<TaskId> = {
            let st = self.state.lock();
            st.clusters
                .values()
                .flat_map(|c| std::iter::once(c.controller).chain(c.user_controller))
                .collect()
        };
        loop {
            let queued: usize = controllers
                .iter()
                .map(|&c| self.queue_snapshot(c).map(|q| q.len()).unwrap_or(0))
                .sum();
            if queued == 0 {
                break;
            }
            if Instant::now() >= deadline {
                return Err(PiscesError::Internal(format!(
                    "reset on a dirty machine: {queued} message(s) still queued \
                     at the controllers"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        // Window arrays a task failed to free on termination: repair by
        // freeing them now (their owners are gone).
        let leaked: Vec<(ArrayId, ShmHandle)> = {
            let mut arrays = self.arrays.lock();
            arrays.drain().map(|(id, a)| (id, a.handle)).collect()
        };
        for (_, handle) in &leaked {
            let _ = self.sub.shmem().free(*handle);
        }
        self.file_arrays.lock().clear();

        // Tenant isolation: the next job registers its own tasktypes and
        // must not see (or shadow-collide with) the previous tenant's.
        self.tasktypes.write().clear();

        // Fresh capture surfaces for the next job.
        for &pe_n in &self.config.pes_in_use() {
            if let Ok(pe) = PeId::new(pe_n) {
                self.sub.pe(pe).console.clear();
            }
        }
        self.tracer.clear();

        // Storage settle: live bytes (arena in-use minus magazine-cached
        // blocks, which are recovered storage) must return to the
        // post-boot baseline.
        let baseline = self.boot_shm_in_use.load(Ordering::SeqCst);
        let mut flushed_pool = false;
        loop {
            let live_bytes = self.storage_report().shm.in_use;
            if live_bytes == baseline {
                break;
            }
            if Instant::now() >= deadline {
                if !flushed_pool {
                    // Last repair attempt: return every cached block to
                    // the arena and re-measure without the discount.
                    self.sub.pool().flush(self.sub.shmem());
                    flushed_pool = true;
                    continue;
                }
                return Err(PiscesError::Internal(format!(
                    "reset on a dirty machine: {live_bytes} live shared-memory \
                     bytes, boot baseline {baseline}"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        // The arena and the magazines must agree with each other.
        if let Err(e) = self.sub.shmem().validate() {
            debug_assert!(false, "arena invariants violated after reset: {e}");
            return Err(PiscesError::Internal(format!(
                "arena invariants violated after reset: {e}"
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Windows (Section 8)
    // ------------------------------------------------------------------

    /// Register a task-owned array for window access; returns a window
    /// over the whole array.
    pub(crate) fn register_array(
        &self,
        owner: &TaskEntry,
        data: &[f64],
        rows: usize,
        cols: usize,
    ) -> Result<Window> {
        if rows * cols != data.len() || data.is_empty() {
            return Err(WindowError::BadShape {
                elements: data.len(),
                rows,
                cols,
            }
            .into());
        }
        let handle = self.sub.shmem().alloc(data.len() * 8, ShmTag::WindowArray)?;
        let words: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
        self.sub.shmem().write_words(handle, 0, &words)?;
        let id = ArrayId {
            owner: owner.id,
            seq: owner.next_seq(),
        };
        self.arrays.lock().insert(id, ArrayEntry { handle, cols });
        self.sub.tick(owner.pe, cost::WINDOW_REGISTER);
        Ok(Window::new(id, (rows, cols), 0..rows, 0..cols)?)
    }

    /// Create an array on secondary storage, owned by the file controller.
    /// Layout: two header words (rows, cols) then row-major f64 bits.
    pub(crate) fn create_file_array(
        &self,
        path: &str,
        data: &[f64],
        rows: usize,
        cols: usize,
    ) -> Result<Window> {
        if rows * cols != data.len() || data.is_empty() {
            return Err(WindowError::BadShape {
                elements: data.len(),
                rows,
                cols,
            }
            .into());
        }
        let mut bytes = Vec::with_capacity(16 + data.len() * 8);
        bytes.extend_from_slice(&(rows as u64).to_le_bytes());
        bytes.extend_from_slice(&(cols as u64).to_le_bytes());
        for v in data {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.sub.fs().write(path, &bytes)?;
        let id = ArrayId {
            owner: FILE_CTRL_ID,
            seq: self.next_file_seq.fetch_add(1, Ordering::Relaxed),
        };
        self.file_arrays.lock().insert(
            id,
            FileArrayEntry {
                path: path.to_string(),
                rows,
                cols,
                lock: Arc::new(RwLock::new(())),
            },
        );
        Ok(Window::new(id, (rows, cols), 0..rows, 0..cols)?)
    }

    /// Open an existing file array (e.g. written by an earlier run).
    pub(crate) fn open_file_array(&self, path: &str) -> Result<Window> {
        if let Some((id, e)) = self
            .file_arrays
            .lock()
            .iter()
            .find(|(_, e)| e.path == path)
            .map(|(id, e)| (*id, (e.rows, e.cols)))
        {
            return Ok(Window::new(id, e, 0..e.0, 0..e.1)?);
        }
        let header = self.sub.fs().read_at(path, 0, 16)?;
        let rows = u64::from_le_bytes(header[0..8].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let id = ArrayId {
            owner: FILE_CTRL_ID,
            seq: self.next_file_seq.fetch_add(1, Ordering::Relaxed),
        };
        self.file_arrays.lock().insert(
            id,
            FileArrayEntry {
                path: path.to_string(),
                rows,
                cols,
                lock: Arc::new(RwLock::new(())),
            },
        );
        Ok(Window::new(id, (rows, cols), 0..rows, 0..cols)?)
    }

    pub(crate) fn charge_window_transfer(&self, requester_pe: PeId, owner: TaskId, words: u64) {
        let t = cost::WINDOW_BASE + cost::WINDOW_PER_WORD * words;
        self.sub.tick(requester_pe, t);
        // The owner's PE also does the copy work (its runtime services the
        // request); file arrays are served by Unix PE 1.
        let owner_pe = if owner == FILE_CTRL_ID {
            PeId::new(1).expect("PE 1 exists")
        } else if let Ok(e) = self.entry_of(owner) {
            e.pe
        } else {
            return;
        };
        if owner_pe != requester_pe {
            self.sub.tick(owner_pe, t);
            // Bulk data crosses the machine's links too: the substrate
            // bills its per-hop transport cost for the payload.
            let hops = self.sub.charge_link(owner_pe, requester_pe, words as usize);
            self.metrics
                .record_link(owner_pe.number(), requester_pe.number(), hops);
        }
        RunStats::add(&self.stats.window_words, words);
    }

    pub(crate) fn file_array_meta(&self, w: &Window) -> Result<(String, usize, Arc<RwLock<()>>)> {
        let fa = self.file_arrays.lock();
        let e = fa
            .get(&w.array())
            .ok_or(PiscesError::Window(WindowError::ArrayGone(w.array())))?;
        Ok((e.path.clone(), e.cols, e.lock.clone()))
    }

    fn free_task_arrays(&self, owner: TaskId) {
        let mut arrays = self.arrays.lock();
        let dead: Vec<ArrayId> = arrays
            .keys()
            .filter(|id| id.owner == owner)
            .copied()
            .collect();
        for id in dead {
            if let Some(a) = arrays.remove(&id) {
                let _ = self.sub.shmem().free(a.handle);
            }
        }
    }

    // ------------------------------------------------------------------
    // Displays and reports (execution environment back-end)
    // ------------------------------------------------------------------

    /// All tasks (controllers included), for DISPLAY RUNNING TASKS.
    pub fn snapshot_tasks(&self) -> Vec<TaskDisplay> {
        let st = self.state.lock();
        let mut v: Vec<TaskDisplay> = st
            .tasks
            .values()
            .map(|t| TaskDisplay {
                id: t.id,
                tasktype: t.tasktype.clone(),
                pe: t.pe.number(),
                is_controller: t.is_controller,
                state: *t.run_state.lock(),
                queued_messages: t.inq.len(),
                in_force: t.in_force.load(Ordering::Relaxed),
                timed_wait: t.timed_wait.load(Ordering::Relaxed),
            })
            .collect();
        v.sort_by_key(|d| d.id);
        v
    }

    /// In-queue snapshot of one task, for DISPLAY MESSAGE QUEUE.
    pub fn queue_snapshot(&self, id: TaskId) -> Result<Vec<(String, TaskId, usize)>> {
        Ok(self.entry_of(id)?.inq.snapshot())
    }

    /// Delete queued messages of a type from a task's in-queue (menu
    /// option 4), releasing their shared-memory blocks. Returns how many.
    pub fn delete_messages(&self, id: TaskId, mtype: &str) -> Result<usize> {
        let entry = self.entry_of(id)?;
        let removed = entry.inq.delete_type(mtype);
        let n = removed.len();
        for m in removed {
            self.discard_message(&m, entry.pe);
        }
        Ok(n)
    }

    /// Send a message into the machine from the user terminal (menu
    /// option 3, SEND A MESSAGE).
    pub fn user_send(self: &Arc<Self>, to: TaskId, mtype: &str, args: Vec<Value>) -> Result<()> {
        self.send_raw(
            USER_ID,
            PeId::new(1).expect("PE 1 exists"),
            to,
            mtype,
            &args,
            false,
        )
    }

    /// Per-PE loading, for DISPLAY PE LOADING.
    pub fn pe_loading(&self) -> Vec<PeLoad> {
        self.config
            .pes_in_use()
            .into_iter()
            .map(|n| {
                let pe = PeId::new(n).expect("config validated");
                let p = self.sub.pe(pe);
                let procs = self.sub.procs(pe);
                PeLoad {
                    pe: n,
                    live: procs.live(),
                    ready: procs.ready(),
                    ticks: p.clock.now(),
                    cpu_acquisitions: p.cpu.acquisitions(),
                    cpu_contended: p.cpu.contended(),
                }
            })
            .collect()
    }

    /// The Section 13 storage measurement: shared-memory usage by purpose
    /// plus per-PE local memory usage. Blocks cached in the allocation
    /// pool's magazines are *recovered* storage — free for reuse, not
    /// holding live data — so they are subtracted from the per-tag and
    /// in-use figures (the paper measures storage in use, and a recycled
    /// message block is not in use by any message).
    pub fn storage_report(&self) -> StorageReport {
        let mut shm = self.sub.shmem().report();
        for tag in ShmTag::ALL {
            let cached = self.sub.pool().cached_bytes_for(tag) as usize;
            if cached > 0 {
                if let Some(b) = shm.by_tag.get_mut(&tag) {
                    *b = b.saturating_sub(cached);
                }
                shm.in_use = shm.in_use.saturating_sub(cached);
            }
        }
        StorageReport {
            shm,
            local: self
                .config
                .pes_in_use()
                .into_iter()
                .map(|n| {
                    let pe = self.sub.pe(PeId::new(n).expect("config validated"));
                    (n, pe.local.used(), pe.local.capacity())
                })
                .collect(),
        }
    }

    /// Free-text dump of the whole system state (menu option 7).
    pub fn dump_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let st = self.state.lock();
        let _ = writeln!(s, "PISCES 2 SYSTEM STATE DUMP");
        let _ = writeln!(
            s,
            "  {} cluster(s), {} task(s) live, {} initiate(s) in flight",
            st.clusters.len(),
            st.tasks.len(),
            st.inflight_inits
        );
        for c in st.clusters.values() {
            let _ = writeln!(
                s,
                "  cluster {} primary=PE{} secondaries={:?} slots={} pending={}",
                c.cfg.number,
                c.cfg.primary_pe,
                c.cfg.secondary_pes,
                c.cfg.slots,
                c.pending.len()
            );
            for (i, slot) in c.slots.iter().enumerate() {
                let _ = match slot {
                    Some(id) => writeln!(s, "    slot {}: {id}", FIRST_USER_SLOT as usize + i),
                    None => writeln!(s, "    slot {}: <not in use>", FIRST_USER_SLOT as usize + i),
                };
            }
        }
        drop(st);
        let r = self.sub.shmem().report();
        let _ = writeln!(
            s,
            "  shared memory: {} / {} bytes in use (high water {})",
            r.in_use, r.capacity, r.high_water
        );
        for tag in ShmTag::ALL {
            let _ = writeln!(s, "    {:<14} {:>8} B", tag.label(), r.tag_bytes(tag));
        }
        let p = self.sub.pool().report();
        let _ = writeln!(
            s,
            "  allocation pool: hits={} misses={} hit_rate={:.1}% cached={} blocks ({} B)",
            p.hits,
            p.misses,
            p.hit_rate(),
            p.cached_blocks,
            p.cached_bytes
        );
        s
    }
}
