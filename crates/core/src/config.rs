//! Virtual-machine configuration: the mapping of clusters onto hardware.
//!
//! "In PISCES 2 the programmer controls the hardware resources that are
//! allocated to the execution of user tasks in each cluster. … A particular
//! mapping is called a *configuration*." (paper, Section 9)
//!
//! In creating a configuration the programmer chooses:
//!
//! 1. the substrate — which simulated machine to run on (see
//!    [`SubstrateSpec`]);
//! 2. how many clusters to use and their numbers;
//! 3. the "primary" PE for each cluster — all user tasks of the
//!    cluster run on this PE;
//! 4. the "secondary" PEs that run force members for the cluster (any
//!    subset of the machine's task PEs; subsets of different clusters may
//!    overlap);
//! 5. the number of slots in each cluster available to run user tasks.
//!
//! Validation is substrate-driven: primaries and secondaries must name
//! task-capable PEs *of the configured machine's topology* — on the
//! historical FLEX/32 that is PEs 3–20 (PEs 1 and 2 run only Unix), on a
//! dimension-7 hypercube it is PEs 1–128.
//!
//! The configuration *environment* (menus, saving to files, load-file
//! construction) lives in the `pisces-config` crate; this module defines the
//! configuration data itself plus validation, because the runtime boots
//! from it.

use crate::error::{PiscesError, Result};
use crate::msgqueue::MsgBackend;
use crate::substrate::{SubstrateSpec, Topology};
use crate::telemetry::TelemetrySettings;
use crate::trace::TraceSettings;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Highest cluster number a configuration may use. Cluster numbers are
/// packed into task ids as a byte; the count of *usable* clusters is
/// additionally bounded by the substrate's task-PE count (each cluster
/// needs a distinct primary).
pub const MAX_CLUSTERS: u8 = 255;

/// Cap on user slots per cluster (the FLEX table sizes were finite; the
/// paper leaves the bound to the implementation).
pub const MAX_SLOTS: u8 = 16;

/// One cluster of the virtual machine and its hardware mapping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Cluster number, 1–255 (need not be contiguous).
    pub number: u8,
    /// Primary PE: all the cluster's user tasks run here.
    pub primary_pe: u16,
    /// Secondary PEs that run force members for this cluster. Empty means
    /// a FORCESPLIT in this cluster "will cause no parallel splitting".
    pub secondary_pes: Vec<u16>,
    /// Number of slots available to run *user* tasks (controllers run in
    /// additional dedicated slots, as in Figure 1 of the paper).
    pub slots: u8,
    /// Whether a user terminal is directly accessible from this cluster
    /// (if so, a user controller task is started here).
    pub has_terminal: bool,
}

impl ClusterConfig {
    /// A cluster with no secondaries and no terminal.
    pub fn new(number: u8, primary_pe: u16, slots: u8) -> Self {
        Self {
            number,
            primary_pe,
            secondary_pes: Vec::new(),
            slots,
            has_terminal: false,
        }
    }

    /// Builder: set the secondary (force) PEs.
    pub fn with_secondaries(mut self, pes: impl IntoIterator<Item = u16>) -> Self {
        self.secondary_pes = pes.into_iter().collect();
        self
    }

    /// Builder: mark a user terminal as attached to this cluster.
    pub fn with_terminal(mut self) -> Self {
        self.has_terminal = true;
        self
    }

    /// Size of the force created by a FORCESPLIT in this cluster: the
    /// original task continues as the primary member and one new member
    /// starts on each secondary PE.
    pub fn force_size(&self) -> usize {
        1 + self.secondary_pes.len()
    }
}

/// A complete configuration: the virtual machine → hardware mapping for one
/// run, plus run controls (time limit, trace settings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Which simulated machine to boot on. Defaults to the historical
    /// 20-PE FLEX/32, so configurations saved before the substrate
    /// redesign load unchanged.
    #[serde(default)]
    pub substrate: SubstrateSpec,
    /// The clusters in use.
    pub clusters: Vec<ClusterConfig>,
    /// Execution time limit in ticks of any single PE clock
    /// (the configuration environment "includes an execution time limit").
    pub time_limit_ticks: Option<u64>,
    /// Initial trace settings for the run.
    pub trace: TraceSettings,
    /// Live-telemetry settings (metrics endpoint, profiler, flight
    /// recorder). Defaults to fully inert.
    #[serde(default)]
    pub telemetry: TelemetrySettings,
    /// In-queue implementation every task in this machine uses. Defaults
    /// to the mutex reference backend, or the `PISCES_MSG_BACKEND`
    /// environment variable when set (so an unchanged test suite can be
    /// re-run per backend).
    #[serde(default)]
    pub msg_backend: MsgBackend,
    /// Pin each simulated-PE thread to a fixed core (primary-PE task
    /// threads and secondary-PE force members), so backend comparisons
    /// measure the queue rather than OS scheduling noise. Best-effort:
    /// silently a no-op on platforms without `sched_setaffinity`.
    #[serde(default)]
    pub pin_pes: bool,
}

/// Step-by-step constructor for [`MachineConfig`], the preferred way to
/// describe a machine:
///
/// ```
/// use pisces_core::prelude::*;
///
/// let config = MachineConfig::builder()
///     .substrate(SubstrateSpec::Flex32 { pes: 20 })
///     .cluster(ClusterConfig::new(1, 3, 4).with_terminal())
///     .cluster(ClusterConfig::new(2, 4, 4).with_secondaries(5..=8))
///     .time_limit_ticks(1_000_000)
///     .build();
/// assert_eq!(config.clusters.len(), 2);
/// ```
///
/// `build` does not validate — [`MachineConfig::validate`] runs when the
/// machine boots, and tests exercise deliberately invalid shapes — so
/// the builder never fails.
#[derive(Debug, Clone, Default)]
pub struct MachineConfigBuilder {
    substrate: SubstrateSpec,
    clusters: Vec<ClusterConfig>,
    time_limit_ticks: Option<u64>,
    trace: TraceSettings,
    telemetry: TelemetrySettings,
    msg_backend: MsgBackend,
    pin_pes: bool,
}

impl MachineConfigBuilder {
    /// Choose the substrate the machine boots on.
    pub fn substrate(mut self, s: SubstrateSpec) -> Self {
        self.substrate = s;
        self
    }

    /// Add one cluster.
    pub fn cluster(mut self, c: ClusterConfig) -> Self {
        self.clusters.push(c);
        self
    }

    /// Add a batch of clusters.
    pub fn clusters(mut self, cs: impl IntoIterator<Item = ClusterConfig>) -> Self {
        self.clusters.extend(cs);
        self
    }

    /// Set the execution time limit (ticks of any single PE clock).
    pub fn time_limit_ticks(mut self, ticks: u64) -> Self {
        self.time_limit_ticks = Some(ticks);
        self
    }

    /// Set the initial trace settings for the run.
    pub fn trace(mut self, t: TraceSettings) -> Self {
        self.trace = t;
        self
    }

    /// Replace the telemetry settings wholesale.
    pub fn telemetry(mut self, t: TelemetrySettings) -> Self {
        self.telemetry = t;
        self
    }

    /// Serve OpenMetrics over HTTP on `127.0.0.1:port` while the machine
    /// runs (0 picks a free port, reported by `Pisces::telemetry_addr`).
    pub fn telemetry_port(mut self, port: u16) -> Self {
        self.telemetry.port = Some(port);
        self
    }

    /// Arm the flight recorder: keep a bounded rolling trace window and
    /// dump it (JSONL + Perfetto + metrics snapshot) into `dir` when the
    /// watchdog or a chaos fault fires, or at machine drop.
    pub fn flight_dir(mut self, dir: impl Into<String>) -> Self {
        self.telemetry.flight_dir = Some(dir.into());
        self
    }

    /// Arm the virtual-clock sampling profiler.
    pub fn profile(mut self, on: bool) -> Self {
        self.telemetry.profile = on;
        self
    }

    /// Select the in-queue backend for every task in the machine (see
    /// [`MsgBackend`]).
    pub fn msg_backend(mut self, b: MsgBackend) -> Self {
        self.msg_backend = b;
        self
    }

    /// Pin simulated-PE threads to fixed cores (best-effort; no-op on
    /// platforms without `sched_setaffinity`).
    pub fn pin_pes(mut self, on: bool) -> Self {
        self.pin_pes = on;
        self
    }

    /// Finish: produce the configuration.
    pub fn build(self) -> MachineConfig {
        MachineConfig {
            substrate: self.substrate,
            clusters: self.clusters,
            time_limit_ticks: self.time_limit_ticks,
            trace: self.trace,
            telemetry: self.telemetry,
            msg_backend: self.msg_backend,
            pin_pes: self.pin_pes,
        }
    }
}

impl MachineConfig {
    /// Start building a configuration. See [`MachineConfigBuilder`].
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder::default()
    }

    /// A simple n-cluster configuration on the default substrate:
    /// cluster `i` on the machine's `i`-th task PE, `slots` user slots
    /// each, terminal on cluster 1, no secondaries.
    pub fn simple(n_clusters: u8, slots: u8) -> Self {
        Self::simple_on(SubstrateSpec::default(), n_clusters, slots)
    }

    /// [`MachineConfig::simple`], on an explicit substrate. Cluster `i`'s
    /// primary is the `i`-th task-capable PE of the substrate's topology,
    /// so the same call shapes a valid machine on either backend.
    pub fn simple_on(substrate: SubstrateSpec, n_clusters: u8, slots: u8) -> Self {
        let first = substrate.topology().first_task_pe;
        Self::builder()
            .substrate(substrate)
            .clusters((1..=n_clusters).map(|i| {
                let c = ClusterConfig::new(i, first + u16::from(i) - 1, slots);
                if i == 1 {
                    c.with_terminal()
                } else {
                    c
                }
            }))
            .build()
    }

    /// The worked example of Section 9 of the paper:
    ///
    /// * clusters 1–4 mapped to PEs 3–6, four slots each;
    /// * PEs 7–15 run forces for both clusters 3 and 4;
    /// * PEs 16–20 run forces for cluster 2;
    /// * no secondary PEs for cluster 1 (FORCESPLIT there does not split).
    pub fn section9_example() -> Self {
        Self::builder()
            .cluster(ClusterConfig::new(1, 3, 4).with_terminal())
            .cluster(ClusterConfig::new(2, 4, 4).with_secondaries(16..=20))
            .cluster(ClusterConfig::new(3, 5, 4).with_secondaries(7..=15))
            .cluster(ClusterConfig::new(4, 6, 4).with_secondaries(7..=15))
            .build()
    }

    /// Find a cluster by number.
    pub fn cluster(&self, number: u8) -> Result<&ClusterConfig> {
        self.clusters
            .iter()
            .find(|c| c.number == number)
            .ok_or(PiscesError::NoSuchCluster(number))
    }

    /// All distinct PEs this configuration touches (primaries and
    /// secondaries), sorted.
    pub fn pes_in_use(&self) -> Vec<u16> {
        let mut set = BTreeSet::new();
        for c in &self.clusters {
            set.insert(c.primary_pe);
            set.extend(c.secondary_pes.iter().copied());
        }
        set.into_iter().collect()
    }

    /// The paper's multiprogramming bound for a PE: if a PE is a secondary
    /// PE for one or more clusters, "the maximum number of simultaneous
    /// tasks that might be running on one of these PEs is equal to the sum
    /// of the slots allocated" in those clusters (Section 9), plus the
    /// cluster slots if the PE is also a primary.
    pub fn max_multiprogramming(&self, pe: u16) -> usize {
        self.clusters
            .iter()
            .map(|c| {
                let mut n = 0;
                if c.primary_pe == pe {
                    n += c.slots as usize;
                }
                if c.secondary_pes.contains(&pe) {
                    n += c.slots as usize;
                }
                n
            })
            .sum()
    }

    /// Validate the configuration against the configured substrate's
    /// topology.
    pub fn validate(&self) -> Result<()> {
        self.validate_on(&self.substrate.topology())
    }

    /// Validate against an explicit topology (used when booting onto a
    /// pre-built machine, whose shape wins over the spec).
    pub fn validate_on(&self, topo: &Topology) -> Result<()> {
        let bad = |reason: String| Err(PiscesError::BadConfiguration(reason));
        if self.clusters.is_empty() {
            return bad("a configuration needs at least one cluster".into());
        }
        if self.clusters.len() > topo.task_pes() as usize {
            return bad(format!(
                "{} clusters configured; a {} machine with {} task PEs supports at most that \
                 many (each cluster needs a distinct primary PE)",
                self.clusters.len(),
                topo.name,
                topo.task_pes()
            ));
        }
        let mut numbers = BTreeSet::new();
        let mut primaries = BTreeSet::new();
        for c in &self.clusters {
            if c.number == 0 {
                return bad(format!(
                    "cluster number {} outside 1-{MAX_CLUSTERS}",
                    c.number
                ));
            }
            if !numbers.insert(c.number) {
                return bad(format!("duplicate cluster number {}", c.number));
            }
            if !topo.is_task_pe(c.primary_pe) {
                return bad(format!(
                    "cluster {} primary PE {} is not a task PE of the {} machine \
                     (task PEs are {}-{})",
                    c.number, c.primary_pe, topo.name, topo.first_task_pe, topo.num_pes
                ));
            }
            if !primaries.insert(c.primary_pe) {
                return bad(format!(
                    "PE {} is the primary PE of two clusters",
                    c.primary_pe
                ));
            }
            let mut secs = BTreeSet::new();
            for &pe in &c.secondary_pes {
                if !topo.is_task_pe(pe) {
                    return bad(format!(
                        "cluster {} secondary PE {pe} is not a task PE of the {} machine",
                        c.number, topo.name
                    ));
                }
                if !secs.insert(pe) {
                    return bad(format!(
                        "cluster {} lists secondary PE {pe} twice",
                        c.number
                    ));
                }
                if pe == c.primary_pe {
                    return bad(format!(
                        "cluster {} uses PE {pe} as both primary and its own secondary",
                        c.number
                    ));
                }
            }
            if c.slots == 0 || c.slots > MAX_SLOTS {
                return bad(format!(
                    "cluster {} has {} slots; must be 1-{MAX_SLOTS}",
                    c.number, c.slots
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_config_validates() {
        MachineConfig::simple(4, 4).validate().unwrap();
        MachineConfig::simple(18, 1).validate().unwrap();
    }

    #[test]
    fn simple_on_places_clusters_from_the_topology() {
        let flex = MachineConfig::simple_on(SubstrateSpec::Flex32 { pes: 20 }, 2, 4);
        assert_eq!(flex.cluster(1).unwrap().primary_pe, 3);
        let cube = MachineConfig::simple_on(SubstrateSpec::Hypercube { dim: 3 }, 2, 4);
        assert_eq!(cube.cluster(1).unwrap().primary_pe, 1);
        assert_eq!(cube.cluster(2).unwrap().primary_pe, 2);
        cube.validate().unwrap();
    }

    #[test]
    fn section9_example_matches_paper() {
        let c = MachineConfig::section9_example();
        c.validate().unwrap();
        assert_eq!(c.clusters.len(), 4);
        assert_eq!(c.cluster(3).unwrap().force_size(), 10); // 9 secondaries + primary
        assert_eq!(c.cluster(1).unwrap().force_size(), 1); // no splitting
                                                           // "The maximum number of simultaneous tasks that might be running
                                                           // on one of these PEs is equal to the sum of the slots allocated in
                                                           // both clusters, 4+4=8 here."
        assert_eq!(c.max_multiprogramming(7), 8);
        assert_eq!(c.max_multiprogramming(16), 4);
        // Primary PE of cluster 2 runs its own 4 slots only.
        assert_eq!(c.max_multiprogramming(4), 4);
        assert_eq!(c.pes_in_use(), (3..=20).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_unix_pes_on_the_flex() {
        let flex = SubstrateSpec::Flex32 { pes: 20 };
        let c = MachineConfig::builder()
            .substrate(flex)
            .clusters([ClusterConfig::new(1, 2, 4)])
            .build();
        assert!(matches!(
            c.validate(),
            Err(PiscesError::BadConfiguration(_))
        ));
        let c = MachineConfig::builder()
            .substrate(flex)
            .clusters([ClusterConfig::new(1, 3, 4).with_secondaries([1])])
            .build();
        assert!(c.validate().is_err());
    }

    #[test]
    fn hypercube_validation_accepts_pe_1_and_enforces_node_count() {
        // PE 1 is a task PE on a cube (no Unix front end)…
        let c = MachineConfig::builder()
            .substrate(SubstrateSpec::Hypercube { dim: 3 })
            .clusters([ClusterConfig::new(1, 1, 4).with_secondaries(2..=8)])
            .build();
        c.validate().unwrap();
        // …but PE 9 does not exist on a dimension-3 cube.
        let c = MachineConfig::builder()
            .substrate(SubstrateSpec::Hypercube { dim: 3 })
            .clusters([ClusterConfig::new(1, 9, 4)])
            .build();
        assert!(c.validate().is_err());
    }

    #[test]
    fn scaled_flex_accepts_high_pes() {
        let c = MachineConfig::builder()
            .substrate(SubstrateSpec::Flex32 { pes: 256 })
            .clusters([ClusterConfig::new(1, 200, 4).with_secondaries(201..=256)])
            .build();
        c.validate().unwrap();
        // The same shape is invalid on the historical 20-PE machine.
        let c = MachineConfig::builder()
            .clusters([ClusterConfig::new(1, 200, 4)])
            .build();
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_cluster_numbers_and_primaries() {
        let c = MachineConfig::builder().clusters([
            ClusterConfig::new(1, 3, 4),
            ClusterConfig::new(1, 4, 4),
        ]).build();
        assert!(c.validate().is_err());
        let c = MachineConfig::builder().clusters([
            ClusterConfig::new(1, 3, 4),
            ClusterConfig::new(2, 3, 4),
        ]).build();
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_slots() {
        let c = MachineConfig::builder().clusters([ClusterConfig::new(1, 3, 0)]).build();
        assert!(c.validate().is_err());
        let c = MachineConfig::builder().clusters([ClusterConfig::new(1, 3, MAX_SLOTS + 1)]).build();
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_more_clusters_than_task_pes() {
        // 18 clusters fit the 20-PE FLEX (18 task PEs); 19 cannot.
        let mk = |n: u8| {
            MachineConfig::builder()
                .substrate(SubstrateSpec::Flex32 { pes: 20 })
                .clusters((1..=n).map(|i| ClusterConfig::new(i, 2 + u16::from(i), 1)))
                .build()
        };
        mk(18).validate().unwrap();
        assert!(mk(19).validate().is_err());
    }

    #[test]
    fn rejects_primary_as_own_secondary_but_allows_overlap() {
        let own = MachineConfig::builder().clusters([ClusterConfig::new(1, 3, 4).with_secondaries([3, 4])]).build();
        assert!(own.validate().is_err());
        // Secondary sets of different clusters may overlap, and may include
        // another cluster's primary.
        let overlap = MachineConfig::builder().clusters([
            ClusterConfig::new(1, 3, 4).with_secondaries([5, 6]),
            ClusterConfig::new(2, 4, 4).with_secondaries([5, 6, 3]),
        ]).build();
        overlap.validate().unwrap();
        assert_eq!(overlap.max_multiprogramming(5), 8);
        assert_eq!(overlap.max_multiprogramming(3), 8); // primary of 1 + secondary of 2
    }

    #[test]
    fn empty_config_rejected() {
        assert!(MachineConfig::builder().build().validate().is_err());
    }

    #[test]
    fn cluster_lookup() {
        let c = MachineConfig::simple_on(SubstrateSpec::Flex32 { pes: 20 }, 2, 4);
        assert_eq!(c.cluster(2).unwrap().primary_pe, 4);
        assert!(matches!(c.cluster(9), Err(PiscesError::NoSuchCluster(9))));
    }

    #[test]
    fn builder_sets_every_field() {
        let c = MachineConfig::builder()
            .substrate(SubstrateSpec::Flex32 { pes: 32 })
            .cluster(ClusterConfig::new(1, 3, 4).with_terminal())
            .clusters([ClusterConfig::new(2, 4, 2)])
            .time_limit_ticks(9_999)
            .trace(TraceSettings::all())
            .telemetry_port(9100)
            .flight_dir("/tmp/flight")
            .profile(true)
            .msg_backend(MsgBackend::Mpsc)
            .pin_pes(true)
            .build();
        c.validate().unwrap();
        assert_eq!(c.substrate, SubstrateSpec::Flex32 { pes: 32 });
        assert_eq!(c.clusters.len(), 2);
        assert_eq!(c.time_limit_ticks, Some(9_999));
        assert_eq!(c.telemetry.port, Some(9100));
        assert_eq!(c.telemetry.flight_dir.as_deref(), Some("/tmp/flight"));
        assert!(c.telemetry.profile);
        assert!(c.telemetry.armed());
        assert_eq!(c.msg_backend, MsgBackend::Mpsc);
        assert!(c.pin_pes);
        // A clusters-only build agrees with the builder's defaults for
        // the fields it does not set.
        let plain = MachineConfig::builder().clusters(c.clusters.clone()).build();
        assert_eq!(plain.substrate, SubstrateSpec::default());
        assert_eq!(plain.clusters, c.clusters);
        assert_eq!(plain.time_limit_ticks, None);
        assert!(!plain.telemetry.armed());
        // The unset backend follows MsgBackend::default(), which honours
        // PISCES_MSG_BACKEND so CI can re-run the suite per backend.
        assert_eq!(plain.msg_backend, MsgBackend::default());
        assert!(!plain.pin_pes);
    }

    #[test]
    fn serde_roundtrip() {
        let c = MachineConfig::section9_example();
        let s = serde_json::to_string(&c).unwrap();
        let back: MachineConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }
}
