//! Task identifiers.
//!
//! "Every task is given a unique taskid when it is initiated. The taskid
//! consists of ⟨cluster number, slot number, unique number⟩ where the unique
//! number distinguishes tasks that have run at different times in the same
//! slot." (paper, Section 6)
//!
//! Taskids are *data values* "just like an integer": they can be stored in
//! variables and arrays (of type TASKID) and passed in messages. This is the
//! mechanism by which the communication topology grows beyond the initial
//! root-directed tree.

use serde::{Deserialize, Serialize};

/// A PISCES task identifier: ⟨cluster, slot, unique⟩.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId {
    /// Cluster number the task runs in (1–18).
    pub cluster: u8,
    /// Slot number within the cluster.
    pub slot: u8,
    /// Distinguishes successive occupants of the same slot.
    pub unique: u32,
}

impl TaskId {
    /// Construct a taskid.
    pub fn new(cluster: u8, slot: u8, unique: u32) -> Self {
        Self {
            cluster,
            slot,
            unique,
        }
    }

    /// Pack into a single 64-bit word (used when a TASKID value travels in
    /// a message packet through shared memory).
    pub fn pack(self) -> u64 {
        ((self.cluster as u64) << 48) | ((self.slot as u64) << 40) | self.unique as u64
    }

    /// Unpack from a 64-bit word.
    pub fn unpack(w: u64) -> Self {
        Self {
            cluster: (w >> 48) as u8,
            slot: (w >> 40) as u8,
            unique: (w & 0xffff_ffff) as u32,
        }
    }
}

impl std::fmt::Display for TaskId {
    /// Format: `c<cluster>.s<slot>#<unique>`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}.s{}#{}", self.cluster, self.slot, self.unique)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let id = TaskId::new(18, 7, 0xdead_beef);
        assert_eq!(TaskId::unpack(id.pack()), id);
    }

    #[test]
    fn distinct_slot_occupants_differ() {
        let a = TaskId::new(1, 1, 1);
        let b = TaskId::new(1, 1, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn display_format() {
        assert_eq!(TaskId::new(2, 3, 4).to_string(), "c2.s3#4");
    }
}
