//! Message and parameter values.
//!
//! Pisces Fortran messages carry argument lists. The interesting property
//! (paper, Section 6) is that *taskids* and *windows* are first-class data
//! values: "A taskid is a data value (just like an integer). Taskid's can be
//! stored in variables and arrays…, and passed as arguments in messages or
//! parameter lists." Windows likewise are "data values that may be passed in
//! messages and stored in variables (of type WINDOW)" (Section 8).
//!
//! Values are encoded into 64-bit words when they travel in message packets,
//! because message storage lives in the FLEX shared memory (Section 11) and
//! our model of that memory is word-granular.

use crate::error::{PiscesError, Result};
use crate::taskid::TaskId;
use crate::window::Window;

/// A single Pisces value: the Fortran scalar types plus TASKID and WINDOW,
/// and numeric arrays.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Fortran INTEGER.
    Int(i64),
    /// Fortran REAL / DOUBLE PRECISION.
    Real(f64),
    /// Fortran LOGICAL.
    Logical(bool),
    /// Fortran CHARACTER*(*).
    Str(String),
    /// Pisces TASKID.
    TaskId(TaskId),
    /// Pisces WINDOW.
    Window(Window),
    /// INTEGER array (row-major if it represents a matrix).
    IntArray(Vec<i64>),
    /// REAL array (row-major if it represents a matrix).
    RealArray(Vec<f64>),
}

impl Value {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "INTEGER",
            Value::Real(_) => "REAL",
            Value::Logical(_) => "LOGICAL",
            Value::Str(_) => "CHARACTER",
            Value::TaskId(_) => "TASKID",
            Value::Window(_) => "WINDOW",
            Value::IntArray(_) => "INTEGER array",
            Value::RealArray(_) => "REAL array",
        }
    }

    fn mismatch(&self, expected: &str) -> PiscesError {
        PiscesError::ArgMismatch {
            expected: expected.to_string(),
            got: self.type_name().to_string(),
        }
    }

    /// Extract an INTEGER.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(other.mismatch("INTEGER")),
        }
    }

    /// Extract a REAL (an INTEGER widens, as in Fortran assignment).
    pub fn as_real(&self) -> Result<f64> {
        match self {
            Value::Real(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(other.mismatch("REAL")),
        }
    }

    /// Extract a LOGICAL.
    pub fn as_logical(&self) -> Result<bool> {
        match self {
            Value::Logical(v) => Ok(*v),
            other => Err(other.mismatch("LOGICAL")),
        }
    }

    /// Extract a CHARACTER string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.mismatch("CHARACTER")),
        }
    }

    /// Extract a TASKID.
    pub fn as_taskid(&self) -> Result<TaskId> {
        match self {
            Value::TaskId(t) => Ok(*t),
            other => Err(other.mismatch("TASKID")),
        }
    }

    /// Extract a WINDOW.
    pub fn as_window(&self) -> Result<&Window> {
        match self {
            Value::Window(w) => Ok(w),
            other => Err(other.mismatch("WINDOW")),
        }
    }

    /// Extract an INTEGER array.
    pub fn as_int_array(&self) -> Result<&[i64]> {
        match self {
            Value::IntArray(v) => Ok(v),
            other => Err(other.mismatch("INTEGER array")),
        }
    }

    /// Extract a REAL array.
    pub fn as_real_array(&self) -> Result<&[f64]> {
        match self {
            Value::RealArray(v) => Ok(v),
            other => Err(other.mismatch("REAL array")),
        }
    }

    /// Number of 64-bit words this value occupies in a message packet.
    pub fn packet_words(&self) -> usize {
        match self {
            Value::Int(_) | Value::Real(_) | Value::Logical(_) | Value::TaskId(_) => 2,
            Value::Str(s) => 2 + s.len().div_ceil(8),
            Value::Window(_) => 1 + Window::PACKED_WORDS,
            Value::IntArray(v) => 2 + v.len(),
            Value::RealArray(v) => 2 + v.len(),
        }
    }
}

macro_rules! value_from {
    ($ty:ty, $variant:ident) => {
        impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v.into())
            }
        }
    };
}
value_from!(i64, Int);
value_from!(i32, Int);
value_from!(f64, Real);
value_from!(bool, Logical);
value_from!(String, Str);
value_from!(&str, Str);
value_from!(TaskId, TaskId);
value_from!(Window, Window);
value_from!(Vec<i64>, IntArray);
value_from!(Vec<f64>, RealArray);

/// Convenience for building argument lists: `args![1, 2.5, "x", taskid]`.
#[macro_export]
macro_rules! args {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*]
    };
}

const TAG_INT: u64 = 1;
const TAG_REAL: u64 = 2;
const TAG_LOGICAL: u64 = 3;
const TAG_STR: u64 = 4;
const TAG_TASKID: u64 = 5;
const TAG_WINDOW: u64 = 6;
const TAG_INT_ARRAY: u64 = 7;
const TAG_REAL_ARRAY: u64 = 8;

/// Encode an argument list into packet words: `[count, value, value, …]`.
pub fn encode_values(values: &[Value]) -> Vec<u64> {
    let total: usize = 1 + values.iter().map(Value::packet_words).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.push(values.len() as u64);
    for v in values {
        match v {
            Value::Int(i) => {
                out.push(TAG_INT);
                out.push(*i as u64);
            }
            Value::Real(r) => {
                out.push(TAG_REAL);
                out.push(r.to_bits());
            }
            Value::Logical(b) => {
                out.push(TAG_LOGICAL);
                out.push(*b as u64);
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.push(s.len() as u64);
                let bytes = s.as_bytes();
                for chunk in bytes.chunks(8) {
                    let mut w = [0u8; 8];
                    w[..chunk.len()].copy_from_slice(chunk);
                    out.push(u64::from_le_bytes(w));
                }
            }
            Value::TaskId(t) => {
                out.push(TAG_TASKID);
                out.push(t.pack());
            }
            Value::Window(w) => {
                out.push(TAG_WINDOW);
                out.extend_from_slice(&w.pack());
            }
            Value::IntArray(a) => {
                out.push(TAG_INT_ARRAY);
                out.push(a.len() as u64);
                out.extend(a.iter().map(|&i| i as u64));
            }
            Value::RealArray(a) => {
                out.push(TAG_REAL_ARRAY);
                out.push(a.len() as u64);
                out.extend(a.iter().map(|r| r.to_bits()));
            }
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

fn decode_err(what: &str) -> PiscesError {
    PiscesError::Internal(format!("corrupt message packet: {what}"))
}

/// Decode an argument list from packet words.
pub fn decode_values(words: &[u64]) -> Result<Vec<Value>> {
    let mut it = words.iter().copied();
    let count = it.next().ok_or_else(|| decode_err("empty packet"))? as usize;
    let mut take = |n: usize, buf: &mut Vec<u64>| -> Result<()> {
        for _ in 0..n {
            buf.push(it.next().ok_or_else(|| decode_err("truncated packet"))?);
        }
        Ok(())
    };
    let mut out = Vec::with_capacity(count);
    let mut buf = Vec::new();
    for _ in 0..count {
        buf.clear();
        take(1, &mut buf)?;
        let tag = buf[0];
        buf.clear();
        let v = match tag {
            TAG_INT => {
                take(1, &mut buf)?;
                Value::Int(buf[0] as i64)
            }
            TAG_REAL => {
                take(1, &mut buf)?;
                Value::Real(f64::from_bits(buf[0]))
            }
            TAG_LOGICAL => {
                take(1, &mut buf)?;
                Value::Logical(buf[0] != 0)
            }
            TAG_STR => {
                take(1, &mut buf)?;
                let len = buf[0] as usize;
                buf.clear();
                take(len.div_ceil(8), &mut buf)?;
                let mut bytes = Vec::with_capacity(len);
                for w in &buf {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                bytes.truncate(len);
                Value::Str(String::from_utf8(bytes).map_err(|_| decode_err("bad utf-8 in string"))?)
            }
            TAG_TASKID => {
                take(1, &mut buf)?;
                Value::TaskId(TaskId::unpack(buf[0]))
            }
            TAG_WINDOW => {
                take(Window::PACKED_WORDS, &mut buf)?;
                Value::Window(Window::unpack(&buf).map_err(|e| decode_err(&e.to_string()))?)
            }
            TAG_INT_ARRAY => {
                take(1, &mut buf)?;
                let len = buf[0] as usize;
                buf.clear();
                take(len, &mut buf)?;
                Value::IntArray(buf.iter().map(|&w| w as i64).collect())
            }
            TAG_REAL_ARRAY => {
                take(1, &mut buf)?;
                let len = buf[0] as usize;
                buf.clear();
                take(len, &mut buf)?;
                Value::RealArray(buf.iter().map(|&w| f64::from_bits(w)).collect())
            }
            other => return Err(decode_err(&format!("unknown tag {other}"))),
        };
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{ArrayId, Window};

    fn sample_window() -> Window {
        Window::new(
            ArrayId {
                owner: TaskId::new(1, 2, 3),
                seq: 7,
            },
            (20, 30),
            2..10,
            5..25,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let vals = vec![
            Value::Int(-42),
            Value::Real(std::f64::consts::PI),
            Value::Logical(true),
            Value::Str("hello, FLEX/32".into()),
            Value::TaskId(TaskId::new(4, 3, 99)),
            Value::Window(sample_window()),
            Value::IntArray(vec![-1, 0, 1, i64::MAX]),
            Value::RealArray(vec![0.0, -2.5, f64::MIN_POSITIVE]),
        ];
        let words = encode_values(&vals);
        let back = decode_values(&words).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn roundtrip_empty_list() {
        let words = encode_values(&[]);
        assert_eq!(words, vec![0]);
        assert_eq!(decode_values(&words).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn roundtrip_string_lengths_around_word_boundary() {
        for len in 0..20 {
            let s: String = "abcdefgh".chars().cycle().take(len).collect();
            let vals = vec![Value::Str(s.clone())];
            let back = decode_values(&encode_values(&vals)).unwrap();
            assert_eq!(back[0].as_str().unwrap(), s);
        }
    }

    #[test]
    fn packet_words_matches_encoding() {
        let vals = vec![
            Value::Int(1),
            Value::Str("exactly8".into()),
            Value::RealArray(vec![1.0; 5]),
            Value::Window(sample_window()),
        ];
        let words = encode_values(&vals);
        let expected: usize = 1 + vals.iter().map(Value::packet_words).sum::<usize>();
        assert_eq!(words.len(), expected);
    }

    #[test]
    fn truncated_packet_is_rejected() {
        let vals = vec![Value::IntArray(vec![1, 2, 3])];
        let mut words = encode_values(&vals);
        words.truncate(words.len() - 1);
        assert!(decode_values(&words).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(decode_values(&[1, 999, 0]).is_err());
    }

    #[test]
    fn accessor_mismatch_errors() {
        let v = Value::Int(1);
        assert!(v.as_str().is_err());
        assert!(v.as_taskid().is_err());
        assert_eq!(v.as_real().unwrap(), 1.0, "integer widens to real");
        let r = Value::Real(1.5);
        assert!(r.as_int().is_err(), "no implicit narrowing");
    }

    #[test]
    fn args_macro_builds_values() {
        let t = TaskId::new(1, 1, 1);
        let a = args![1i64, 2.5, "s", t, true];
        assert_eq!(a.len(), 5);
        assert_eq!(a[0], Value::Int(1));
        assert_eq!(a[3], Value::TaskId(t));
    }
}
