//! Job-lifecycle spans derived from JOB$ trace records.
//!
//! The job service (`crates/server`) emits one [`TraceEventKind::JobLifecycle`]
//! record per lifecycle transition: `submit`, `admitted` (or `rejected`),
//! `queued`, `scheduled`, `running`, and a terminal `done`/`failed`/`drained`.
//! The span id is the job id (`job=<id>` in the record's `info`), the
//! tenant rides along as `tenant=<name>`, and every record carries a
//! wall-clock microsecond timestamp `t_us=<µs>` relative to service start
//! so spans can be laid out on a real timeline even though the machine's
//! own clocks are virtual. Successive events of one job chain through the
//! record's `parent` edge, so the span is also a causal chain in the
//! happens-before DAG.
//!
//! This module reconstructs those records into [`JobSpan`]s, renders the
//! SPANS section of `pisces report`, and emits Perfetto complete-slices so
//! the service timeline lands in the same trace viewer as the per-PE
//! causal export (service = one process, tenant = one track).

use crate::trace::{TraceEventKind, TraceRecord};
use std::collections::BTreeMap;

/// One lifecycle transition inside a job span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// The submission arrived at the service.
    Submit,
    /// Admission control accepted it into the queue.
    Admitted,
    /// Admission control refused it (terminal).
    Rejected,
    /// Waiting in the fair-scheduler queue.
    Queued,
    /// The dispatcher picked it as the next job.
    Scheduled,
    /// The program is loaded and executing on the machine.
    Running,
    /// Finished ok (terminal).
    Done,
    /// Finished with an error or wedged (terminal).
    Failed,
    /// A drain refused it before it ever ran (terminal).
    Drained,
}

impl SpanPhase {
    /// All phases in lifecycle order.
    pub const ALL: [SpanPhase; 9] = [
        SpanPhase::Submit,
        SpanPhase::Admitted,
        SpanPhase::Rejected,
        SpanPhase::Queued,
        SpanPhase::Scheduled,
        SpanPhase::Running,
        SpanPhase::Done,
        SpanPhase::Failed,
        SpanPhase::Drained,
    ];

    /// The token used in `info` (first word of a JOB$ record).
    pub fn token(self) -> &'static str {
        match self {
            SpanPhase::Submit => "submit",
            SpanPhase::Admitted => "admitted",
            SpanPhase::Rejected => "rejected",
            SpanPhase::Queued => "queued",
            SpanPhase::Scheduled => "scheduled",
            SpanPhase::Running => "running",
            SpanPhase::Done => "done",
            SpanPhase::Failed => "failed",
            SpanPhase::Drained => "drained",
        }
    }

    /// Parse the `info` token back into a phase.
    pub fn from_token(s: &str) -> Option<SpanPhase> {
        SpanPhase::ALL.into_iter().find(|p| p.token() == s)
    }

    /// A terminal phase closes the span.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanPhase::Rejected | SpanPhase::Done | SpanPhase::Failed | SpanPhase::Drained
        )
    }
}

/// One JOB$ record, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which transition this was.
    pub phase: SpanPhase,
    /// Trace sequence number of the record.
    pub seq: u64,
    /// Wall-clock microseconds since service start.
    pub t_us: u64,
}

/// The reconstructed lifecycle of one job.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobSpan {
    /// The job id — also the span id.
    pub job: u64,
    /// Tenant that submitted the job.
    pub tenant: String,
    /// Transitions in emission order.
    pub events: Vec<SpanEvent>,
    /// Queue wait reported by the service at the terminal event (ms).
    pub queued_ms: Option<u64>,
    /// Run time reported by the service at the terminal event (ms).
    pub run_ms: Option<u64>,
    /// `ok=...` from the terminal event, when present.
    pub ok: Option<bool>,
}

impl JobSpan {
    /// The event for a given phase, if it was recorded.
    pub fn event(&self, phase: SpanPhase) -> Option<&SpanEvent> {
        self.events.iter().find(|e| e.phase == phase)
    }

    /// The terminal event, if the span closed.
    pub fn terminal(&self) -> Option<&SpanEvent> {
        self.events.iter().rev().find(|e| e.phase.is_terminal())
    }

    /// A complete span starts with `submit` and ends in a terminal phase.
    pub fn is_complete(&self) -> bool {
        self.event(SpanPhase::Submit).is_some() && self.terminal().is_some()
    }

    /// End-to-end submit→terminal latency in microseconds.
    pub fn total_us(&self) -> Option<u64> {
        let submit = self.event(SpanPhase::Submit)?;
        let term = self.terminal()?;
        Some(term.t_us.saturating_sub(submit.t_us))
    }
}

/// Parse the `key=value` fields of a JOB$ / ALERT$ `info` string. The
/// first whitespace-separated token (the phase / alert verb) is returned
/// under the key `""`.
pub fn parse_info(info: &str) -> BTreeMap<&str, &str> {
    let mut out = BTreeMap::new();
    for (i, tok) in info.split_whitespace().enumerate() {
        match tok.split_once('=') {
            Some((k, v)) => {
                out.insert(k, v);
            }
            None if i == 0 => {
                out.insert("", tok);
            }
            None => {}
        }
    }
    out
}

/// Reconstruct job spans from a record window. Non-JOB$ records are
/// ignored; malformed JOB$ records (no parseable `job=`) are skipped.
/// Spans come back ordered by job id.
pub fn spans_from_records(records: &[TraceRecord]) -> Vec<JobSpan> {
    let mut by_job: BTreeMap<u64, JobSpan> = BTreeMap::new();
    for r in records {
        if r.kind != TraceEventKind::JobLifecycle {
            continue;
        }
        let fields = parse_info(&r.info);
        let Some(phase) = fields.get("").and_then(|t| SpanPhase::from_token(t)) else {
            continue;
        };
        let Some(job) = fields.get("job").and_then(|v| v.parse::<u64>().ok()) else {
            continue;
        };
        let t_us = fields
            .get("t_us")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        let span = by_job.entry(job).or_insert_with(|| JobSpan {
            job,
            ..JobSpan::default()
        });
        if let Some(t) = fields.get("tenant") {
            if span.tenant.is_empty() {
                span.tenant = (*t).to_string();
            }
        }
        if let Some(q) = fields.get("queued_ms").and_then(|v| v.parse().ok()) {
            span.queued_ms = Some(q);
        }
        if let Some(rms) = fields.get("run_ms").and_then(|v| v.parse().ok()) {
            span.run_ms = Some(rms);
        }
        if let Some(ok) = fields.get("ok").and_then(|v| v.parse().ok()) {
            span.ok = Some(ok);
        }
        span.events.push(SpanEvent {
            phase,
            seq: r.seq,
            t_us,
        });
    }
    let mut spans: Vec<JobSpan> = by_job.into_values().collect();
    for s in &mut spans {
        s.events.sort_by_key(|e| e.seq);
    }
    spans
}

/// ALERT$ records in the window, decoded as
/// `(verb, tenant, slo, info-fields-as-string)`.
pub fn alerts_from_records(records: &[TraceRecord]) -> Vec<(String, String, String, String)> {
    records
        .iter()
        .filter(|r| r.kind == TraceEventKind::SloAlert)
        .map(|r| {
            let f = parse_info(&r.info);
            (
                f.get("").copied().unwrap_or("fired").to_string(),
                f.get("tenant").copied().unwrap_or("?").to_string(),
                f.get("slo").copied().unwrap_or("?").to_string(),
                r.info.clone(),
            )
        })
        .collect()
}

/// Render the SPANS section of `pisces report`: one line per job showing
/// the phase chain, queue wait and run time, plus an alert appendix when
/// the window holds ALERT$ records. Empty string when the window has no
/// JOB$ records at all (single-run traces stay unchanged).
pub fn render_spans(records: &[TraceRecord], width: usize) -> String {
    let spans = spans_from_records(records);
    let alerts = alerts_from_records(records);
    if spans.is_empty() && alerts.is_empty() {
        return String::new();
    }
    let width = width.max(40);
    let mut out = String::new();
    out.push_str(&format!("{:-^width$}\n", " SPANS "));
    out.push_str(&format!(
        "  {} job span(s), {} complete\n",
        spans.len(),
        spans.iter().filter(|s| s.is_complete()).count()
    ));
    for s in &spans {
        let chain: Vec<&str> = s.events.iter().map(|e| e.phase.token()).collect();
        let timing = match (s.queued_ms, s.run_ms) {
            (Some(q), Some(r)) => format!("  wait {q}ms run {r}ms"),
            (Some(q), None) => format!("  wait {q}ms"),
            _ => String::new(),
        };
        let total = s
            .total_us()
            .map(|us| format!("  total {:.1}ms", us as f64 / 1000.0))
            .unwrap_or_default();
        out.push_str(&format!(
            "  job {:>4}  {:<10} {}{timing}{total}\n",
            s.job,
            s.tenant,
            chain.join("\u{2192}")
        ));
    }
    if !alerts.is_empty() {
        out.push_str(&format!("  {} SLO alert(s):\n", alerts.len()));
        for (verb, tenant, slo, info) in &alerts {
            let _ = (verb, tenant, slo);
            out.push_str(&format!("    ALERT$ {info}\n"));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Perfetto trace events for the job spans: the service is one process
/// (pid 0), each tenant is one thread track, and every span becomes a
/// complete slice (`ph:"X"`) from submit to its terminal event, with the
/// queued/running sub-phases nested inside it. Returned as serialized
/// JSON objects ready to splice into a `traceEvents` array alongside the
/// causal export.
pub fn spans_to_perfetto_events(records: &[TraceRecord]) -> Vec<String> {
    let spans = spans_from_records(records);
    if spans.is_empty() {
        return Vec::new();
    }
    const PID: &str = "\"pid\":\"service\"";
    let mut out = Vec::new();
    let mut tenants: Vec<&str> = spans.iter().map(|s| s.tenant.as_str()).collect();
    tenants.sort_unstable();
    tenants.dedup();
    out.push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":\"service\",\
         \"args\":{\"name\":\"pisces job service\"}}"
            .to_string(),
    );
    for t in &tenants {
        out.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",{PID},\"tid\":\"{0}\",\
             \"args\":{{\"name\":\"tenant {0}\"}}}}",
            json_escape(t)
        ));
    }
    for s in &spans {
        let tid = json_escape(&s.tenant);
        let Some(submit) = s.event(SpanPhase::Submit) else {
            continue;
        };
        let end = s.terminal().map(|e| e.t_us).unwrap_or(submit.t_us);
        let dur = end.saturating_sub(submit.t_us).max(1);
        let outcome = s
            .terminal()
            .map(|e| e.phase.token())
            .unwrap_or("open");
        out.push(format!(
            "{{\"ph\":\"X\",\"name\":\"job {id}\",\"cat\":\"span\",{PID},\"tid\":\"{tid}\",\
             \"ts\":{ts},\"dur\":{dur},\"args\":{{\"tenant\":\"{tid}\",\"outcome\":\"{outcome}\",\
             \"queued_ms\":{q},\"run_ms\":{r}}}}}",
            id = s.job,
            ts = submit.t_us,
            q = s.queued_ms.unwrap_or(0),
            r = s.run_ms.unwrap_or(0),
        ));
        // Nested sub-phases: queued (admitted→scheduled) and running
        // (running→terminal).
        let sub = |from: SpanPhase, until: u64, name: &str| -> Option<String> {
            let e = s.event(from)?;
            let dur = until.saturating_sub(e.t_us).max(1);
            Some(format!(
                "{{\"ph\":\"X\",\"name\":\"{name} (job {id})\",\"cat\":\"span.phase\",{PID},\
                 \"tid\":\"{tid}\",\"ts\":{ts},\"dur\":{dur}}}",
                id = s.job,
                ts = e.t_us,
            ))
        };
        let sched_at = s.event(SpanPhase::Scheduled).map(|e| e.t_us).unwrap_or(end);
        if let Some(ev) = sub(SpanPhase::Admitted, sched_at, "queued") {
            out.push(ev);
        }
        if let Some(ev) = sub(SpanPhase::Running, end, "running") {
            out.push(ev);
        }
    }
    // Alerts become instants on the service process track.
    for r in records {
        if r.kind == TraceEventKind::SloAlert {
            let f = parse_info(&r.info);
            let t_us = f.get("t_us").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            out.push(format!(
                "{{\"ph\":\"i\",\"name\":\"ALERT$ {tenant}/{slo}\",\"cat\":\"slo\",{PID},\
                 \"tid\":\"{tenant}\",\"ts\":{t_us},\"s\":\"p\"}}",
                tenant = json_escape(f.get("tenant").copied().unwrap_or("?")),
                slo = json_escape(f.get("slo").copied().unwrap_or("?")),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskid::TaskId;

    fn rec(seq: u64, kind: TraceEventKind, info: &str) -> TraceRecord {
        TraceRecord {
            seq,
            kind,
            task: TaskId::new(1, 1, 1),
            pe: 0,
            ticks: 0,
            info: info.into(),
            parent: if seq == 0 { None } else { Some(seq - 1) },
            cause: None,
        }
    }

    fn full_chain(job: u64, tenant: &str, base: u64) -> Vec<TraceRecord> {
        [
            ("submit", 0u64),
            ("admitted", 10),
            ("queued", 11),
            ("scheduled", 500),
            ("running", 520),
        ]
        .iter()
        .enumerate()
        .map(|(i, (ph, dt))| {
            rec(
                base + i as u64,
                TraceEventKind::JobLifecycle,
                &format!("{ph} job={job} tenant={tenant} t_us={}", base * 100 + dt),
            )
        })
        .chain(std::iter::once(rec(
            base + 5,
            TraceEventKind::JobLifecycle,
            &format!(
                "done job={job} tenant={tenant} t_us={} queued_ms=1 run_ms=2 ok=true",
                base * 100 + 2000
            ),
        )))
        .collect()
    }

    #[test]
    fn reconstructs_complete_span() {
        let recs = full_chain(7, "alpha", 0);
        let spans = spans_from_records(&recs);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.job, 7);
        assert_eq!(s.tenant, "alpha");
        assert!(s.is_complete());
        assert_eq!(s.events.len(), 6);
        assert_eq!(s.events[0].phase, SpanPhase::Submit);
        assert_eq!(s.terminal().unwrap().phase, SpanPhase::Done);
        assert_eq!(s.queued_ms, Some(1));
        assert_eq!(s.run_ms, Some(2));
        assert_eq!(s.ok, Some(true));
        assert_eq!(s.total_us(), Some(2000));
    }

    #[test]
    fn interleaved_jobs_separate_and_sort() {
        let mut recs = full_chain(2, "b", 10);
        recs.extend(full_chain(1, "a", 20));
        // Interleave by seq: mix the two chains.
        recs.sort_by_key(|r| r.seq);
        let spans = spans_from_records(&recs);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].job, 1);
        assert_eq!(spans[1].job, 2);
        assert!(spans.iter().all(|s| s.is_complete()));
    }

    #[test]
    fn incomplete_and_malformed_records() {
        let recs = vec![
            rec(0, TraceEventKind::JobLifecycle, "submit job=9 tenant=x t_us=5"),
            rec(1, TraceEventKind::JobLifecycle, "admitted job=9 t_us=6"),
            // No job id: skipped.
            rec(2, TraceEventKind::JobLifecycle, "submit tenant=y t_us=7"),
            // Unknown phase: skipped.
            rec(3, TraceEventKind::JobLifecycle, "warp job=9 t_us=8"),
            // Other kinds never contribute.
            rec(4, TraceEventKind::MsgSend, "PING"),
        ];
        let spans = spans_from_records(&recs);
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].is_complete());
        assert_eq!(spans[0].events.len(), 2);
        assert_eq!(spans[0].total_us(), None);
    }

    #[test]
    fn rejected_is_terminal() {
        let recs = vec![
            rec(0, TraceEventKind::JobLifecycle, "submit job=3 tenant=t t_us=1"),
            rec(1, TraceEventKind::JobLifecycle, "rejected job=3 tenant=t t_us=4"),
        ];
        let spans = spans_from_records(&recs);
        assert!(spans[0].is_complete());
        assert_eq!(spans[0].total_us(), Some(3));
    }

    #[test]
    fn render_section_lists_jobs_and_alerts() {
        let mut recs = full_chain(1, "alpha", 0);
        recs.push(rec(
            99,
            TraceEventKind::SloAlert,
            "fired tenant=alpha slo=submit_p99 burn_short=3.2 burn_long=2.1 t_us=9000",
        ));
        let text = render_spans(&recs, 72);
        assert!(text.contains("SPANS"));
        assert!(text.contains("1 job span(s), 1 complete"));
        assert!(text.contains("job    1"));
        assert!(text.contains("submit\u{2192}admitted"));
        assert!(text.contains("ALERT$"));
        assert!(text.contains("slo=submit_p99"));
        // Windows without JOB$/ALERT$ records render nothing.
        assert_eq!(render_spans(&[rec(0, TraceEventKind::MsgSend, "x")], 72), "");
    }

    #[test]
    fn perfetto_slices_per_job_and_tenant_tracks() {
        let mut recs = full_chain(1, "alpha", 0);
        recs.extend(full_chain(2, "beta", 10));
        recs.push(rec(
            50,
            TraceEventKind::SloAlert,
            "fired tenant=beta slo=error_rate t_us=1234",
        ));
        let evs = spans_to_perfetto_events(&recs);
        let joined = format!("[{}]", evs.join(","));
        // Hand-built JSON must stay parseable.
        let parsed: serde_json::Value = serde_json::from_str(&joined).unwrap();
        assert!(parsed.as_array().unwrap().len() >= 7);
        assert!(joined.contains("\"job 1\""));
        assert!(joined.contains("\"job 2\""));
        assert!(joined.contains("tenant alpha"));
        assert!(joined.contains("ALERT$ beta/error_rate"));
        assert!(evs
            .iter()
            .any(|e| e.contains("\"ph\":\"X\"") && e.contains("\"dur\"")));
    }

    #[test]
    fn parse_info_splits_fields() {
        let f = parse_info("done job=4 tenant=a ok=true note");
        assert_eq!(f.get(""), Some(&"done"));
        assert_eq!(f.get("job"), Some(&"4"));
        assert_eq!(f.get("ok"), Some(&"true"));
        assert!(!f.contains_key("note"));
    }
}
